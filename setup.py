"""Legacy shim so `pip install -e .` works offline (no wheel package).

All metadata lives in pyproject.toml; this file only enables the
`--no-use-pep517` editable-install path on environments without `wheel`.
"""

from setuptools import setup

setup()
