"""A1 — ablations of the design choices DESIGN.md calls out.

Four knobs, each isolated:

1. iota budget with vs without the separator theorem's k^{1/d} factor
   (the E10 finding);
2. centerpoint method: iterated Radon (analysed) vs coordinate median
   (cheap heuristic);
3. unit-time sample size for the centerpoint;
4. base-case size m0 (leaf brute force vs deeper recursion).
"""

from __future__ import annotations

import numpy as np

from repro.core import FastDnCConfig, parallel_nearest_neighborhood
from repro.pvm import Machine
from repro.separators import MTTVSeparatorSampler, point_split
from repro.workloads import clustered, uniform_cube

from common import bench_seed, table_bench, write_table

N = 4096


@table_bench
def test_a1_k_aware_iota_budget():
    """Ablate the k^{1/d} factor in the punt threshold (E10's finding)."""
    rows = []
    for k in (4, 8, 16):
        pts = uniform_cube(N, 2, bench_seed(60 + k))
        aware = parallel_nearest_neighborhood(
            pts, k, machine=Machine(), seed=bench_seed(1), config=FastDnCConfig()
        )
        # simulate a k-blind budget by shrinking iota_factor by k^{1/d}
        blind = parallel_nearest_neighborhood(
            pts, k, machine=Machine(), seed=bench_seed(1),
            config=FastDnCConfig(iota_factor=3.0 / k ** 0.5,
                                 active_factor=4.0 / k ** 0.5),
        )
        rows.append(
            (k, f"{aware.cost.depth:.0f}", aware.stats.punts,
             f"{blind.cost.depth:.0f}", blind.stats.punts)
        )
    write_table(
        "a1_k_budget",
        "A1  iota budget with (aware) vs without (blind) the k^{1/d} factor",
        ["k", "aware depth", "aware punts", "blind depth", "blind punts"],
        rows,
    )


@table_bench
def test_a1_centerpoint_method():
    """Radon-point centerpoints vs coordinatewise medians."""
    rows = []
    for name, gen in (("uniform", uniform_cube), ("clustered", clustered)):
        pts = gen(N, 2, bench_seed(71))
        for method in ("radon", "median"):
            sampler = MTTVSeparatorSampler(pts, seed=bench_seed(2), centerpoint=method)
            ratios = [point_split(sampler.draw(), pts).split_ratio for _ in range(30)]
            rows.append(
                (name, method, f"{np.median(ratios):.3f}", f"{np.max(ratios):.3f}",
                 f"{np.mean(np.array(ratios) <= 0.8) * 100:.0f}%")
            )
    write_table(
        "a1_centerpoint",
        "A1b  split quality by centerpoint method (30 draws)",
        ["workload", "method", "median split", "worst split", "<= 0.8"],
        rows,
    )


@table_bench
def test_a1_sample_size():
    """Unit-time sample size: how small can the centerpoint sample be?"""
    rows = []
    pts = uniform_cube(N, 2, bench_seed(72))
    for size in (16, 32, 64, 128, None):
        sampler = MTTVSeparatorSampler(pts, seed=bench_seed(3), sample_size=size)
        ratios = [point_split(sampler.draw(), pts).split_ratio for _ in range(30)]
        rows.append(
            (size if size else "all", f"{np.median(ratios):.3f}",
             f"{np.max(ratios):.3f}", f"{np.mean(np.array(ratios) <= 0.8) * 100:.0f}%")
        )
    write_table(
        "a1_sample_size",
        "A1c  split quality vs centerpoint sample size (n=4096, d=2)",
        ["sample", "median split", "worst split", "<= 0.8"],
        rows,
    )


@table_bench
def test_a1_base_case_size():
    """m0: bigger leaves trade depth against quadratic leaf work."""
    rows = []
    pts = uniform_cube(N, 2, bench_seed(73))
    for m0 in (16, 32, 64, 128, 256):
        res = parallel_nearest_neighborhood(
            pts, 1, machine=Machine(), seed=bench_seed(4), config=FastDnCConfig(base_case_size=m0)
        )
        rows.append(
            (m0, f"{res.cost.depth:.0f}", f"{res.cost.work / N:.0f}",
             res.stats.base_cases, res.stats.punts)
        )
    write_table(
        "a1_base_case",
        "A1d  base-case size m0: depth vs work trade (n=4096, d=2, k=1)",
        ["m0", "depth", "work/n", "base cases", "punts"],
        rows,
    )


def test_bench_radon_vs_median_centerpoint(benchmark):
    pts = uniform_cube(N, 2, bench_seed(74))
    benchmark(lambda: MTTVSeparatorSampler(pts, seed=bench_seed(5), centerpoint="radon"))
