"""A8 — Network front-end: adaptive batching windows vs fixed settings.

The batching window is a latency/throughput dial with no correct fixed
setting: window=0 answers an idle stream instantly but collapses under
load (every request pays the full per-batch machinery alone), while a
fixed ceiling batches well under load but taxes every idle-stream
request the whole window.  The adaptive controller
(:class:`repro.net.adaptive.AdaptiveWindow`) moves the dial with the
arrival-rate EWMA, and this experiment measures whether that wins *both*
regimes over real HTTP:

- build one n = 100k index, serve it through :class:`NetServer` on a
  loopback socket (``ServerThread``), one fresh server per window
  policy: **adaptive**, **ceiling** (fixed ``max_wait_ms``), **zero**
  (``max_wait_ms = 0``);
- drive each with the seeded open-loop generator
  (:func:`repro.net.loadgen.run_load`, fixed arrivals) at a low, a
  moderate and an overload QPS level, measuring latency from each
  request's *scheduled* arrival.

Acceptance (ISSUE 8): at the low level adaptive p99 must be >= 1.3x
lower than the fixed ceiling's (idle requests shouldn't pay the window),
and at the overload level adaptive sustained QPS must be >= 1.3x higher
than window=0's (load should batch).  Exactness is not at stake —
every served answer is bit-identical to the direct batcher path
(tests/test_net_server.py pins the loopback-equivalence contract) — so
the latency/throughput frontier is the entire story.  Single-core
honest-reporting note: client and server share the host, so overload
latencies include client-side queueing, as they would for a co-located
sidecar.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.api import build_index
from repro.net import NetConfig, NetServer, ServerThread, TenantManager, run_load
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

N = 100_000
D = 2
K = 1
CEILING_MS = 20.0
MAX_BATCH = 256
QPS_LOW, QPS_MID, QPS_HIGH = 50.0, 1000.0, 2000.0
# (qps, seconds): the low level runs longer so its p99 rests on 200
# samples; one solo execution is ~4ms on this host, so 50/s keeps the
# core unsaturated (the regime where the window tax is the whole story)
LEVELS = [(QPS_LOW, 4.0), (QPS_MID, 2.0), (QPS_HIGH, 2.0)]

_MIN_LOW_QPS_P99_RATIO = 1.3  # ceiling p99 / adaptive p99 at QPS_LOW
_MIN_OVERLOAD_QPS_RATIO = 1.3  # adaptive / zero sustained QPS at QPS_HIGH

POLICIES = {
    "adaptive": dict(adaptive=True, max_wait_ms=CEILING_MS),
    "ceiling": dict(adaptive=False, max_wait_ms=CEILING_MS),
    "zero": dict(adaptive=False, max_wait_ms=0.0),
}


def _run_policy(mutable, policy_kwargs, levels, seed):
    """One fresh loopback server per policy; sweep it, return results."""
    machine = Machine()
    config = NetConfig(port=0, max_batch=MAX_BATCH, **policy_kwargs)
    manager = TenantManager(config=config)
    manager.add("default", mutable, machine=machine)
    server = NetServer(manager, config=config)
    results = []
    with ServerThread(server) as thread:
        # warm the serving path (first-batch setup, allocator, caches)
        # before measuring — every policy gets the identical warmup
        asyncio.run(run_load(
            "127.0.0.1", thread.port, qps=100.0, duration_s=0.5,
            points=mutable.points, k=K, arrivals="fixed", seed=seed + 1,
        ))
        for qps, duration_s in levels:
            results.append(asyncio.run(run_load(
                "127.0.0.1", thread.port, qps=qps, duration_s=duration_s,
                points=mutable.points, k=K, arrivals="fixed", seed=seed,
            )))
    return machine, results, thread.drain_summary


@table_bench
def test_a8_net_table():
    pts = uniform_cube(N, D, bench_seed(81))
    t0 = time.perf_counter()
    mutable = build_index(pts, K, seed=bench_seed(82), engine="frontier").mutable
    build_s = time.perf_counter() - t0

    by_policy = {}
    rows = []
    for policy, kwargs in POLICIES.items():
        machine, results, summary = _run_policy(
            mutable, kwargs, LEVELS, seed=bench_seed(83))
        assert summary["clean"], f"{policy}: drain dropped requests"
        by_policy[policy] = results
        for r in results:
            record_bench_run(
                "a8_net", machine,
                params={"n": N, "d": D, "k": K, "policy": policy,
                        "qps": r.qps_target, "max_batch": MAX_BATCH,
                        "ceiling_ms": CEILING_MS},
                extra=r.to_dict(),
            )
            rows.append((policy, f"{r.qps_target:.0f}", r.sent, r.ok,
                         r.rejected, f"{r.achieved_qps:,.0f}",
                         f"{r.p50_ms:.2f}", f"{r.p95_ms:.2f}",
                         f"{r.p99_ms:.2f}"))

    low = {p: rs[0] for p, rs in by_policy.items()}
    high = {p: rs[-1] for p, rs in by_policy.items()}
    p99_ratio = low["ceiling"].p99_ms / low["adaptive"].p99_ms
    qps_ratio = high["adaptive"].achieved_qps / high["zero"].achieved_qps
    assert p99_ratio >= _MIN_LOW_QPS_P99_RATIO, (
        f"adaptive must cut low-QPS p99 >= {_MIN_LOW_QPS_P99_RATIO}x vs the "
        f"fixed ceiling, got {p99_ratio:.2f}x "
        f"({low['ceiling'].p99_ms:.2f}ms vs {low['adaptive'].p99_ms:.2f}ms)"
    )
    assert qps_ratio >= _MIN_OVERLOAD_QPS_RATIO, (
        f"adaptive must sustain >= {_MIN_OVERLOAD_QPS_RATIO}x the QPS of "
        f"window=0 under overload, got {qps_ratio:.2f}x "
        f"({high['adaptive'].achieved_qps:,.0f} vs "
        f"{high['zero'].achieved_qps:,.0f})"
    )
    rows.append(("note", "", "", "", "", "", "", "",
                 f"build {build_s:.2f}s; low-QPS p99 adaptive vs ceiling "
                 f"{p99_ratio:.2f}x >= {_MIN_LOW_QPS_P99_RATIO}x; overload "
                 f"QPS adaptive vs zero {qps_ratio:.2f}x >= "
                 f"{_MIN_OVERLOAD_QPS_RATIO}x"))

    write_table(
        "a8_net",
        "A8  network front-end: batching-window policy vs load "
        f"(knn over HTTP, d={D}, k={K}, n={N:,}; open-loop fixed arrivals, "
        f"{LEVELS[0][1]:g}s low / {LEVELS[-1][1]:g}s overload levels; "
        "latency measured from scheduled arrival; "
        f"ceiling {CEILING_MS:g}ms, max_batch {MAX_BATCH})",
        ["policy", "qps", "sent", "ok", "429", "ach QPS",
         "p50 ms", "p95 ms", "p99 ms"],
        rows,
    )
