"""Shared helpers for the experiment benchmarks.

Each ``bench_eN_*.py`` module regenerates one experiment of DESIGN.md §5:
it times representative kernels through pytest-benchmark AND writes the
experiment's table (the thing EXPERIMENTS.md quotes) to
``benchmarks/results/``, so a plain ``pytest benchmarks/ --benchmark-only``
leaves the full set of measured tables on disk.

Seeding: every benchmark derives its RNG seeds through :func:`bench_seed`,
which offsets the documented ``REPRO_BENCH_SEED`` environment variable
(default ``0``).  ``REPRO_BENCH_SEED=0`` reproduces the checked-in tables;
any other value re-runs the whole suite on a fresh random universe.

Observability: machine-bearing benchmarks call :func:`record_bench_run`
after a run, which appends the run's per-phase (depth, work) breakdown and
a **compact** metrics summary (full counters and gauges; series reduced to
``{count, min, max, mean}``) to ``benchmarks/results/<name>_obs.json`` and
the repo-level ``BENCH_obs.json``.  The raw, unsummarized metric series
can grow to tens of thousands of lines per experiment, so full dumps are
opt-in: run with ``--trace-full`` (or ``REPRO_TRACE_FULL=1``) and each
record is additionally appended, unsummarized, to the gitignored
``*_obs_full.json`` siblings of those files.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, Optional, Sequence

#: Environment variable redirecting benchmark outputs (tables, obs JSON)
#: to another directory — CI perf jobs point this at a scratch dir so the
#: committed ``benchmarks/results/`` baselines are never clobbered and the
#: fresh run can be diffed against them (``check_bench_regression.py
#: --wall-trend``).
RESULTS_DIR_ENV = "REPRO_BENCH_RESULTS_DIR"

RESULTS_DIR = os.environ.get(RESULTS_DIR_ENV) or os.path.join(
    os.path.dirname(__file__), "results"
)

#: Environment variable holding the benchmark base seed (default "0").
BENCH_SEED_ENV = "REPRO_BENCH_SEED"

#: Repo-level rollup of every recorded benchmark run.  Redirected next to
#: the per-experiment files when ``REPRO_BENCH_RESULTS_DIR`` is set, so a
#: redirected run leaves the checked-in rollup untouched too.
BENCH_OBS_PATH = (
    os.path.join(os.environ[RESULTS_DIR_ENV], "BENCH_obs.json")
    if os.environ.get(RESULTS_DIR_ENV)
    else os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_obs.json")
)

#: Environment variable that enables full (unsummarized) obs dumps; the
#: pytest ``--trace-full`` flag sets it (see ``benchmarks/conftest.py``).
TRACE_FULL_ENV = "REPRO_TRACE_FULL"


def trace_full_enabled() -> bool:
    """Whether full obs dumps are requested (``--trace-full`` / env var)."""
    return os.environ.get(TRACE_FULL_ENV, "").strip() not in ("", "0", "false")


def bench_seed(offset: int = 0) -> int:
    """The benchmark RNG seed: ``REPRO_BENCH_SEED`` (default 0) + offset.

    Benchmarks pass distinct offsets where they previously used distinct
    literal constants, so the default seeds are unchanged while one env
    var reseeds the entire suite.
    """
    return int(os.environ.get(BENCH_SEED_ENV, "0")) + offset


def record_bench_run(
    name: str,
    machine: Any,
    *,
    params: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
    wall_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Record one machine-bearing benchmark run's observability data.

    Writes/extends two files:

    - ``benchmarks/results/<name>_obs.json`` — a list of run records, each
      with the aggregate (depth, work), the per-phase section breakdown
      (``machine.sections``) and a compact summary of the machine's
      metrics registry (see :func:`compact_metrics`);
    - repo-level ``BENCH_obs.json`` — the same records across *all*
      experiments, keyed by experiment name.

    With :func:`trace_full_enabled`, the unsummarized record (raw metric
    series included) is additionally appended to the gitignored
    ``<name>_obs_full.json`` / ``BENCH_obs_full.json`` siblings.

    ``wall_seconds`` (optional) records the run's host wall-clock, which
    ``scripts/check_bench_regression.py`` compares under a relative
    tolerance (ledger fields are compared exactly).

    Returns the (compact) record that was appended.
    """
    total = machine.total
    record: Dict[str, Any] = {
        "experiment": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "base_seed": bench_seed(0),
        "params": dict(params or {}),
        "total": {"depth": total.depth, "work": total.work},
        "phases": {
            phase: {"depth": cost.depth, "work": cost.work}
            for phase, cost in sorted(machine.sections.items())
        },
    }
    if wall_seconds is not None:
        record["wall_seconds"] = float(wall_seconds)
    if extra:
        record.update(extra)
    full_metrics = machine.metrics.to_dict()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if trace_full_enabled():
        full_record = dict(record, metrics=full_metrics)
        _append_json_list(
            os.path.join(RESULTS_DIR, f"{name}_obs_full.json"), full_record
        )
        _append_json_list(
            BENCH_OBS_PATH.replace("BENCH_obs.json", "BENCH_obs_full.json"),
            full_record,
        )
    record["metrics"] = compact_metrics(full_metrics)
    per_file = os.path.join(RESULTS_DIR, f"{name}_obs.json")
    _append_json_list(per_file, record)
    _append_json_list(BENCH_OBS_PATH, record)
    return record


def compact_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Summarize a ``Metrics.to_dict()`` payload for committed results.

    Counters and gauges are small and pass through unchanged; each metric
    *series* (which grows with every node of every run) is reduced to
    ``{"count": N}`` plus ``min``/``max``/``mean`` when the samples are
    plain numbers (structured samples — e.g. ``(m, iota)`` pairs — keep
    only the count).
    """
    series = {}
    for key, values in metrics.get("series", {}).items():
        summary: Dict[str, Any] = {"count": len(values)}
        if values and all(isinstance(v, (int, float)) for v in values):
            summary["min"] = min(values)
            summary["max"] = max(values)
            summary["mean"] = sum(values) / len(values)
        series[key] = summary
    return {
        "counters": dict(metrics.get("counters", {})),
        "gauges": dict(metrics.get("gauges", {})),
        "series": series,
    }


def _append_json_list(path: str, record: Dict[str, Any]) -> None:
    """Append ``record`` to the JSON list stored at ``path``."""
    records = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if isinstance(loaded, list):
                records = loaded
        except (OSError, ValueError):  # unreadable/corrupt: start fresh
            records = []
    records.append(record)
    with open(path, "w") as fh:
        json.dump(records, fh, indent=1)
        fh.write("\n")


def write_table(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format rows as a fixed-width table, save to results/<name>.txt, return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print("\n" + text)
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def table_bench(fn):
    """Run a table-producing experiment as a single-round benchmark.

    Table sweeps must also execute under ``pytest benchmarks/
    --benchmark-only`` (the project's prescribed command), so they are
    registered as one-round pedantic benchmarks: timed once, table written
    to results/.  NOTE: deliberately not ``functools.wraps`` — pytest
    unwraps ``__wrapped__`` when inspecting fixtures, which would hide the
    ``benchmark`` parameter and mark the test as a skippable non-benchmark.
    """

    def wrapper(benchmark):
        benchmark.pedantic(fn, rounds=1, iterations=1)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


def write_chart(name: str, chart: str) -> None:
    """Append an ASCII chart to an experiment's results file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "a") as fh:
        fh.write("\n" + chart + "\n")
    print("\n" + chart)
