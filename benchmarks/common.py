"""Shared helpers for the experiment benchmarks.

Each ``bench_eN_*.py`` module regenerates one experiment of DESIGN.md §5:
it times representative kernels through pytest-benchmark AND writes the
experiment's table (the thing EXPERIMENTS.md quotes) to
``benchmarks/results/``, so a plain ``pytest benchmarks/ --benchmark-only``
leaves the full set of measured tables on disk.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_table(name: str, title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format rows as a fixed-width table, save to results/<name>.txt, return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print("\n" + text)
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def table_bench(fn):
    """Run a table-producing experiment as a single-round benchmark.

    Table sweeps must also execute under ``pytest benchmarks/
    --benchmark-only`` (the project's prescribed command), so they are
    registered as one-round pedantic benchmarks: timed once, table written
    to results/.  NOTE: deliberately not ``functools.wraps`` — pytest
    unwraps ``__wrapped__`` when inspecting fixtures, which would hide the
    ``benchmark`` parameter and mark the test as a skippable non-benchmark.
    """

    def wrapper(benchmark):
        benchmark.pedantic(fn, rounds=1, iterations=1)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


def write_chart(name: str, chart: str) -> None:
    """Append an ASCII chart to an experiment's results file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "a") as fh:
        fh.write("\n" + chart + "\n")
    print("\n" + chart)
