"""A9 — Request observability: does the server-side view tell the truth?

PR 9 gives the network front-end per-request observability: log-linear
latency histograms (``net.request_ms``), per-request timelines in a
flight recorder behind ``/debug/requests`` / ``/debug/slow``, and SLO
burn-rate gauges.  Those numbers are only useful if they agree with
what a *client* actually experiences — a histogram whose p95 drifts
from client truth steers capacity planning wrong, and a flight recorder
whose "slowest" entries lack the queued/execute split cannot answer the
one question it exists for (is the tail the window or the work?).

The experiment: build one n = 100k index, serve it on a loopback socket
with a fixed batching window (the regime where server- and client-side
tails are honestly comparable: the window, not client-side queueing,
dominates), drive it with the seeded open-loop generator, and compare
the server's drain-time histogram percentiles against the client's
measured latencies for the identical request stream.

Acceptance (ISSUE 9):

- the server-side ``net.request_ms`` p95 is within **15%** of the
  loadgen client's p95 (the histogram's log-linear buckets plus the
  admit-to-serialize measurement window must not distort the tail);
- ``/debug/slow`` returns the K slowest requests, every one carrying
  the queued vs execute breakdown, in worst-first order;
- the trace round-trip is intact: every response echoed its seeded
  ``X-Request-Id`` (``id_mismatches == 0``) and the drain is clean.
"""

from __future__ import annotations

import asyncio
import time

from repro.api import build_index
from repro.net import (
    NetConfig,
    NetServer,
    ServerThread,
    TenantManager,
    http_request,
    run_load,
)
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

N = 100_000
D = 2
K = 1
MAX_BATCH = 256
WAIT_MS = 10.0  # fixed window: the tail is the window, on both sides
QPS = 150.0
DURATION_S = 4.0
SLOW_K = 16

_MAX_P95_GAP = 0.15  # |server p95 - client p95| / client p95


@table_bench
def test_a9_obs_rt_table():
    pts = uniform_cube(N, D, bench_seed(91))
    t0 = time.perf_counter()
    mutable = build_index(pts, K, seed=bench_seed(92), engine="frontier").mutable
    build_s = time.perf_counter() - t0

    machine = Machine()
    config = NetConfig(
        port=0, max_batch=MAX_BATCH, adaptive=False, max_wait_ms=WAIT_MS,
        slo_p95_ms=50.0, recorder_slow_k=SLOW_K,
    )
    manager = TenantManager(config=config)
    manager.add("default", mutable, machine=machine)
    server = NetServer(manager, config=config)

    with ServerThread(server) as thread:
        result = asyncio.run(run_load(
            "127.0.0.1", thread.port, qps=QPS, duration_s=DURATION_S,
            points=mutable.points, k=K, arrivals="fixed", seed=bench_seed(93),
        ))
        status, slow_body, _ = asyncio.run(http_request(
            "127.0.0.1", thread.port, f"/debug/slow?limit={SLOW_K}",
            method="GET"))
        assert status == 200
    summary = thread.drain_summary

    # trace round-trip + clean run: the comparison below is meaningless
    # unless both sides saw the identical request stream
    assert result.id_mismatches == 0, (
        f"{result.id_mismatches} responses lost their X-Request-Id")
    assert result.errors == 0 and result.rejected == 0
    assert result.ok == result.sent
    assert summary["clean"], "drain dropped requests"
    rq = summary["request_ms"]
    assert rq["count"] == result.ok, (
        f"server histogram saw {rq['count']} requests, client sent {result.ok}")

    gap = abs(rq["p95"] - result.p95_ms) / result.p95_ms
    assert gap <= _MAX_P95_GAP, (
        f"server-side p95 {rq['p95']:.2f}ms drifts {gap:.1%} from client "
        f"p95 {result.p95_ms:.2f}ms (budget {_MAX_P95_GAP:.0%})"
    )

    slowest = slow_body["slowest"]
    assert len(slowest) == SLOW_K, (
        f"/debug/slow returned {len(slowest)} entries, expected {SLOW_K}")
    totals = [entry["total_ms"] for entry in slowest]
    assert totals == sorted(totals, reverse=True), "slowest not worst-first"
    for entry in slowest:
        assert entry["queued_ms"] is not None, entry["request_id"]
        assert entry["execute_ms"] is not None, entry["request_id"]
        # the split accounts for the total (serialize overhead aside)
        assert entry["total_ms"] >= entry["execute_ms"] - 1e-6

    record_bench_run(
        "a9_obs_rt", machine,
        params={"n": N, "d": D, "k": K, "qps": QPS, "duration_s": DURATION_S,
                "max_batch": MAX_BATCH, "wait_ms": WAIT_MS, "slow_k": SLOW_K},
        extra={
            "client": result.to_dict(),
            "server_request_ms": rq,
            "p95_gap_fraction": gap,
            "slowest_total_ms": totals[0],
            "slowest_queued_ms": slowest[0]["queued_ms"],
            "slowest_execute_ms": slowest[0]["execute_ms"],
        },
    )

    rows = [
        ("client", result.ok, f"{result.p50_ms:.2f}", f"{result.p95_ms:.2f}",
         f"{result.p99_ms:.2f}",
         f"{max(result.latencies_ms):.2f}" if result.latencies_ms else "-"),
        ("server", rq["count"], f"{rq['p50']:.2f}", f"{rq['p95']:.2f}",
         f"{rq['p99']:.2f}", f"{rq['max']:.2f}"),
        ("note", "", "", "", "",
         f"build {build_s:.2f}s; p95 gap {gap:.1%} <= {_MAX_P95_GAP:.0%}; "
         f"slowest {totals[0]:.2f}ms = queued {slowest[0]['queued_ms']:.2f}ms "
         f"+ exec {slowest[0]['execute_ms']:.2f}ms; id_mismatches 0"),
    ]
    write_table(
        "a9_obs_rt",
        "A9  request observability: server-side histogram vs client truth "
        f"(knn over HTTP, d={D}, k={K}, n={N:,}; open-loop fixed arrivals "
        f"{QPS:g} qps x {DURATION_S:g}s, fixed window {WAIT_MS:g}ms, "
        f"max_batch {MAX_BATCH}; server side = net.request_ms log-linear "
        "histogram at drain)",
        ["side", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        rows,
    )
