"""A4 — Multiprocess frontier engine: wall-clock across worker counts.

The ``frontier-mp`` engine fans each frontier level's batches out to OS
worker processes over shared-memory buffers; it is bitwise equivalent to
the serial ``frontier`` engine on a shared seed for any worker count
(tests/test_parallel_engine.py).  This experiment measures what that
fan-out costs and buys in host wall-clock time for the fast algorithm at
n in {20k, 100k, 500k}, sweeping worker counts.

Honest-reporting note: parallel speedup is bounded by the host's real
core count, which the committed table records per row (``cores``).  On a
single-core host every frontier-mp configuration pays the process fan-out
and shared-memory round-trips with no hardware parallelism to recoup
them, so frontier-mp is *expected* to trail the serial frontier engine
there; the acceptance bar is therefore equivalence plus bounded overhead,
with speedup > 1 only claimable when ``cores > 1``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import FastDnCConfig, parallel_nearest_neighborhood
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

SIZES = [20_000, 100_000, 500_000]
WORKER_COUNTS = [1, 2, 4]

# single-core hosts cap the mp overhead budget instead of demanding speedup
_MAX_SINGLE_CORE_SLOWDOWN = 25.0


def _timed_run(points, k, engine, workers=None):
    machine = Machine()
    t0 = time.perf_counter()
    res = parallel_nearest_neighborhood(
        points, k, machine=machine, seed=bench_seed(4),
        config=FastDnCConfig(engine=engine, workers=workers),
    )
    return time.perf_counter() - t0, res, machine


@table_bench
def test_a4_parallel_engine_table():
    cores = os.cpu_count() or 1
    rows = []
    worst_ratio = 0.0
    for n in SIZES:
        pts = uniform_cube(n, 2, bench_seed(n + 5))
        t_rec, rec, _ = _timed_run(pts, 1, "recursive")
        t_fro, fro, _ = _timed_run(pts, 1, "frontier")
        assert np.array_equal(
            rec.system.neighbor_indices, fro.system.neighbor_indices
        )
        rows.append((n, cores, "recursive", "-", f"{t_rec:.3f}",
                     f"{t_rec / t_fro:.2f}x", "reference"))
        rows.append((n, cores, "frontier", "-", f"{t_fro:.3f}",
                     "1.00x", "bitwise-equal"))
        for workers in WORKER_COUNTS:
            t_mp, mp_res, m_mp = _timed_run(pts, 1, "frontier-mp", workers)
            assert np.array_equal(
                fro.system.neighbor_indices, mp_res.system.neighbor_indices
            )
            assert fro.cost.depth == mp_res.cost.depth
            assert fro.cost.work == mp_res.cost.work
            ratio = t_mp / t_fro
            worst_ratio = max(worst_ratio, ratio)
            util = m_mp.metrics.gauges.get("parallel.utilization", 0.0)
            record_bench_run(
                "a4_parallel_engine", m_mp,
                params={"n": n, "d": 2, "k": 1, "engine": "frontier-mp",
                        "workers": workers, "host_cores": cores},
                extra={"wall_recursive_s": t_rec, "wall_frontier_s": t_fro,
                       "wall_mp_s": t_mp, "vs_frontier": ratio,
                       "utilization": util},
            )
            rows.append((n, cores, "frontier-mp", workers, f"{t_mp:.3f}",
                         f"{t_fro / t_mp:.2f}x", f"util {util:.2f}"))
    if cores > 1:
        note = (f"host has {cores} cores: frontier-mp should beat frontier "
                f"at n >= 100k")
    else:
        note = (f"host has 1 core: no hardware parallelism; overhead ratio "
                f"<= {_MAX_SINGLE_CORE_SLOWDOWN:.0f}x "
                f"(worst measured {worst_ratio:.2f}x)")
        assert worst_ratio <= _MAX_SINGLE_CORE_SLOWDOWN, (
            f"frontier-mp overhead {worst_ratio:.2f}x exceeds the "
            f"single-core budget"
        )
    rows.append(("note", "", "", "", "", "", note))
    write_table(
        "a4_parallel_engine",
        "A4  frontier vs frontier-mp wall-clock (fast DnC, d=2, k=1; "
        "speedup column is frontier_s / engine_s)",
        ["n", "cores", "engine", "workers", "wall s", "speedup", "notes"],
        rows,
    )
