"""A4 — Coarse-grained frontier-mp: wall-clock across worker counts.

The ``frontier-mp`` engine runs the frontier recursion on the master only
until the planner yields ~3x-workers balanced subtrees, then ships each
subtree *once* to a resident worker that solves it to completion locally
(no per-level round trips).  It is bitwise equivalent to the serial
``frontier`` engine on a shared seed for any worker count
(tests/test_parallel_engine.py); this experiment measures what the
two-phase execution costs and buys in host wall-clock time.

Methodology: each (n, engine, workers) cell is the **median of
``REPRO_A4_REPEATS`` runs** (default 5) so a single scheduler hiccup
cannot flip the CI gate.  Environment knobs (all optional):

- ``REPRO_A4_SIZES``     comma-separated n values (default
  ``100000,500000``; CI uses a smaller size to stay inside the job
  budget, nightly runs the full sweep);
- ``REPRO_A4_REPEATS``   runs per cell (default ``5``);
- ``REPRO_A4_MIN_SPEEDUP``  the multi-core acceptance floor (default
  ``1.5``): on hosts with >= 4 cores, frontier-mp at 4 workers must
  beat serial frontier by at least this factor at the largest n —
  a hard assertion, not a warning.

Honest-reporting note: parallel speedup is bounded by the host's real
core count, which the committed table records per row (``cores``).  On a
single-core host every frontier-mp configuration pays the dispatch and
shared-memory copies with no hardware parallelism to recoup them, so the
acceptance bar there is equivalence plus bounded overhead
(``_MAX_SINGLE_CORE_SLOWDOWN``); the >= 1.5x floor is enforced where it
is physically meaningful, i.e. on the multi-core CI runner.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro.core import FastDnCConfig, parallel_nearest_neighborhood
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

WORKER_COUNTS = [1, 2, 4]

#: single-core hosts cap the mp overhead budget instead of demanding speedup
_MAX_SINGLE_CORE_SLOWDOWN = 25.0


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_A4_SIZES", "100000,500000")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _repeats() -> int:
    return max(1, int(os.environ.get("REPRO_A4_REPEATS", "5")))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_A4_MIN_SPEEDUP", "1.5"))


def _timed_run(points, k, engine, workers=None):
    machine = Machine()
    t0 = time.perf_counter()
    res = parallel_nearest_neighborhood(
        points, k, machine=machine, seed=bench_seed(4),
        config=FastDnCConfig(engine=engine, workers=workers),
    )
    return time.perf_counter() - t0, res, machine


def _median_run(points, k, engine, workers=None, repeats=1):
    """Median wall time over ``repeats`` runs; result/machine of the last."""
    walls = []
    res = machine = None
    for _ in range(repeats):
        wall, res, machine = _timed_run(points, k, engine, workers)
        walls.append(wall)
    return statistics.median(walls), res, machine


@table_bench
def test_a4_parallel_engine_table():
    cores = os.cpu_count() or 1
    sizes = _sizes()
    repeats = _repeats()
    min_speedup = _min_speedup()
    rows = []
    worst_ratio = 0.0  # mp wall / serial wall (overhead, single-core bar)
    gate_speedups = {}  # n -> speedup of the 4-worker cell
    for n in sizes:
        pts = uniform_cube(n, 2, bench_seed(n + 5))
        t_fro, fro, _ = _median_run(pts, 1, "frontier", repeats=repeats)
        rows.append((n, cores, "frontier", "-", f"{t_fro:.3f}",
                     "1.00x", "serial reference"))
        for workers in WORKER_COUNTS:
            t_mp, mp_res, m_mp = _median_run(
                pts, 1, "frontier-mp", workers, repeats=repeats
            )
            assert np.array_equal(
                fro.system.neighbor_indices, mp_res.system.neighbor_indices
            )
            assert fro.cost.depth == mp_res.cost.depth
            assert fro.cost.work == mp_res.cost.work
            ratio = t_mp / t_fro
            worst_ratio = max(worst_ratio, ratio)
            if workers == 4:
                gate_speedups[n] = 1.0 / ratio
            gauges = m_mp.metrics.gauges
            util = gauges.get("parallel.utilization", 0.0)
            record_bench_run(
                "a4_parallel_engine", m_mp,
                params={"n": n, "d": 2, "k": 1, "engine": "frontier-mp",
                        "workers": workers, "host_cores": cores},
                extra={"wall_frontier_s": t_fro, "wall_mp_s": t_mp,
                       "vs_frontier": ratio, "utilization": util,
                       "repeats": repeats,
                       "subtrees": gauges.get("parallel.subtrees", 0.0),
                       "copyin_s": gauges.get("parallel.copyin_seconds", 0.0),
                       "dispatch_s": gauges.get(
                           "parallel.dispatch_seconds", 0.0),
                       "collect_s": gauges.get(
                           "parallel.collect_seconds", 0.0)},
                wall_seconds=t_mp,
            )
            rows.append((n, cores, "frontier-mp", workers, f"{t_mp:.3f}",
                         f"{t_fro / t_mp:.2f}x", f"util {util:.2f}"))
    if cores >= 4:
        n_gate = max(sizes)
        speedup = gate_speedups.get(n_gate, 0.0)
        note = (f"host has {cores} cores: gate speedup {speedup:.2f}x at "
                f"n={n_gate} w=4 (floor {min_speedup:.2f}x)")
        rows.append(("note", "", "", "", "", "", note))
        write_table(
            "a4_parallel_engine",
            "A4  frontier vs frontier-mp wall-clock (fast DnC, d=2, k=1; "
            f"median of {repeats}; speedup = frontier_s / engine_s)",
            ["n", "cores", "engine", "workers", "wall s", "speedup", "notes"],
            rows,
        )
        assert speedup >= min_speedup, (
            f"frontier-mp with 4 workers achieved {speedup:.2f}x over serial "
            f"frontier at n={n_gate} on a {cores}-core host; the acceptance "
            f"floor is {min_speedup:.2f}x"
        )
        return
    note = (f"host has {cores} core(s) (<4): speedup floor not applicable; "
            f"overhead ratio <= {_MAX_SINGLE_CORE_SLOWDOWN:.0f}x "
            f"(worst measured {worst_ratio:.2f}x)")
    rows.append(("note", "", "", "", "", "", note))
    write_table(
        "a4_parallel_engine",
        "A4  frontier vs frontier-mp wall-clock (fast DnC, d=2, k=1; "
        f"median of {repeats}; speedup = frontier_s / engine_s)",
        ["n", "cores", "engine", "workers", "wall s", "speedup", "notes"],
        rows,
    )
    assert worst_ratio <= _MAX_SINGLE_CORE_SLOWDOWN, (
        f"frontier-mp overhead {worst_ratio:.2f}x exceeds the "
        f"single-core budget"
    )
