"""E10 — k and d scaling of the fast algorithm.

Claims: the algorithm "can be easily generalized to handle k > 1" with an
extra O(log log k) factor on the correction depth, and works for any
fixed d (constants grow with d through the separator exponent
(d-1)/d and the kissing number).  We sweep both and check exactness at
every cell.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import brute_force_knn
from repro.core import parallel_nearest_neighborhood
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, table_bench, write_table

N = 4096


@table_bench
def test_e10_k_sweep():
    rows = []
    for k in (1, 2, 4, 8, 16):
        pts = uniform_cube(N, 2, 20 + k)
        res = parallel_nearest_neighborhood(pts, k, machine=Machine(), seed=bench_seed(1))
        assert res.system.same_distances(brute_force_knn(pts, k))
        loglogk = 1.0 if k == 1 else 1.0 + math.log2(math.log2(k) + 2.0)
        rows.append(
            (k, f"{res.cost.depth:.0f}", f"{res.cost.work / N:.0f}",
             f"{loglogk:.2f}", res.stats.punts, "exact")
        )
    write_table(
        "e10_k_sweep",
        f"E10  fast DnC vs k (n={N}, d=2): depth ~ O(log n log log k)",
        ["k", "depth", "work/n", "loglog-k factor", "punts", "vs brute"],
        rows,
    )


@table_bench
def test_e10_d_sweep():
    rows = []
    for d in (2, 3, 4, 5):
        pts = uniform_cube(N if d < 5 else 2048, d, 30 + d)
        res = parallel_nearest_neighborhood(pts, 1, machine=Machine(), seed=bench_seed(2))
        assert res.system.same_distances(brute_force_knn(pts, 1))
        n = pts.shape[0]
        iota_max = max(i for _, i in res.stats.straddler_fraction) if res.stats.straddler_fraction else 0
        rows.append(
            (d, n, f"{res.cost.depth:.0f}", f"{res.cost.work / n:.0f}",
             res.stats.separator_attempts, iota_max, "exact")
        )
    write_table(
        "e10_d_sweep",
        "E10b  fast DnC vs dimension (k=1): constants grow with d, shape holds",
        ["d", "n", "depth", "work/n", "separator draws", "max iota", "vs brute"],
        rows,
    )


@pytest.mark.parametrize("k", [1, 8])
def test_bench_k(benchmark, k):
    pts = uniform_cube(2048, 2, 40)
    benchmark(lambda: parallel_nearest_neighborhood(pts, k, seed=bench_seed(3)))
