"""A5 — Serving layer: batched throughput vs a per-query loop.

Single-point requests pay the full vectorized-descent machinery for one
row; the :class:`~repro.serve.batcher.Batcher` amortizes it across up to
``max_batch`` rows.  This experiment builds one index (the offline fast
algorithm with ``engine="frontier"``) at n = 100k, then serves the same
query workload three ways and compares sustained throughput:

- **per-query**: one ``ServingIndex.execute`` call per point — the
  baseline a naive service would run;
- **batched**: the batcher with ``max_batch`` in {256, 1024, 4096};
- **cached**: a second identical pass through a warm LRU result cache.

The acceptance bar (ISSUE 5) is >= 5x batched-over-per-query throughput
at batch >= 1024 — exactness is free (every path is bit-identical to the
per-point reference; tests/test_serve*.py pin it), so throughput is the
entire story.  A smaller covering-mode table and a ``ServingPool`` row
ride along; mp speedup follows the A4 honest-reporting note (bounded by
host cores, overhead-only on single-core hosts).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.pvm import Machine
from repro.serve import Batcher, ResultCache, ServingIndex, ServingPool
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

N_KNN = 100_000
M_QUERIES = 8192
K = 2
BATCH_SIZES = [256, 1024, 4096]

N_COVERING = 20_000
M_COVERING = 2048

_MIN_BATCHED_SPEEDUP = 5.0


def _throughput(n_requests: int, wall_s: float) -> float:
    return n_requests / wall_s if wall_s > 0 else float("inf")


def _percentiles(lat_ms):
    """(p50, p99) of a latency sample in milliseconds."""
    arr = np.asarray(lat_ms, dtype=np.float64)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _serve_batched(index, queries, kind, max_batch, cache=None, pool=None):
    """One pass of the workload through a Batcher; returns
    ``(wall_s, stats, lat_ms)`` with per-ticket submit-to-fulfill
    latencies in milliseconds."""
    batcher = Batcher(
        index, kind=kind, k=K, max_batch=max_batch, cache=cache, pool=pool
    )
    t0 = time.perf_counter()
    tickets = [batcher.submit(row) for row in queries]
    batcher.flush()
    wall = time.perf_counter() - t0
    lat_ms = np.array([t.latency_s for t in tickets]) * 1e3
    if pool is None:
        batcher.close()
    return wall, batcher.stats, lat_ms


@table_bench
def test_a5_serving_table():
    cores = os.cpu_count() or 1
    machine = Machine()
    pts = uniform_cube(N_KNN, 2, bench_seed(51))
    queries = uniform_cube(M_QUERIES, 2, bench_seed(52))

    t0 = time.perf_counter()
    index = ServingIndex.build(
        pts, K, machine=machine, seed=bench_seed(53), engine="frontier"
    )
    build_s = time.perf_counter() - t0

    rows = []

    # baseline: the naive per-query service loop
    sample = queries[:512]  # the loop is slow; extrapolate from a sample
    base_lat = []
    for q in sample:
        t0 = time.perf_counter()
        index.execute("knn", q[None, :], K)
        base_lat.append((time.perf_counter() - t0) * 1e3)
    per_query_qps = _throughput(sample.shape[0], sum(base_lat) / 1e3)
    p50, p99 = _percentiles(base_lat)
    rows.append((N_KNN, "per-query", "-", sample.shape[0],
                 f"{per_query_qps:,.0f}", "1.00x", f"{p50:.3f}", f"{p99:.3f}",
                 "baseline (512-pt sample)"))

    best_speedup = 0.0
    for max_batch in BATCH_SIZES:
        wall, stats, lat_ms = _serve_batched(index, queries, "knn", max_batch)
        qps = _throughput(M_QUERIES, wall)
        speedup = qps / per_query_qps
        best_speedup = max(best_speedup, speedup) if max_batch >= 1024 else best_speedup
        p50, p99 = _percentiles(lat_ms)
        record_bench_run(
            "a5_serving", machine,
            params={"n": N_KNN, "d": 2, "k": K, "mode": "batched",
                    "max_batch": max_batch, "host_cores": cores},
            extra={"queries": M_QUERIES, "wall_s": wall, "qps": qps,
                   "vs_per_query": speedup, "build_s": build_s,
                   "batches": stats.batches, "p50_ms": p50, "p99_ms": p99},
        )
        rows.append((N_KNN, "batched", max_batch, M_QUERIES,
                     f"{qps:,.0f}", f"{speedup:.2f}x", f"{p50:.3f}",
                     f"{p99:.3f}", f"{stats.batches} batches"))

    # warm-cache pass: identical workload, every request a hit
    cache = ResultCache(capacity=M_QUERIES)
    _serve_batched(index, queries, "knn", 1024, cache=cache)
    wall, stats, lat_ms = _serve_batched(index, queries, "knn", 1024, cache=cache)
    qps = _throughput(M_QUERIES, wall)
    p50, p99 = _percentiles(lat_ms)
    rows.append((N_KNN, "cached", 1024, M_QUERIES, f"{qps:,.0f}",
                 f"{qps / per_query_qps:.2f}x", f"{p50:.3f}", f"{p99:.3f}",
                 f"{stats.cache_hits}/{M_QUERIES} hits"))

    # multiprocess serving (honest-reporting: bounded by host cores)
    with ServingPool(index, workers=min(4, cores), machine=machine) as pool:
        wall, stats, lat_ms = _serve_batched(index, queries, "knn", 4096, pool=pool)
    qps = _throughput(M_QUERIES, wall)
    p50, p99 = _percentiles(lat_ms)
    record_bench_run(
        "a5_serving", machine,
        params={"n": N_KNN, "d": 2, "k": K, "mode": "pool",
                "workers": min(4, cores), "host_cores": cores},
        extra={"queries": M_QUERIES, "wall_s": wall, "qps": qps,
               "vs_per_query": qps / per_query_qps, "p50_ms": p50, "p99_ms": p99},
    )
    rows.append((N_KNN, "pool", 4096, M_QUERIES, f"{qps:,.0f}",
                 f"{qps / per_query_qps:.2f}x", f"{p50:.3f}", f"{p99:.3f}",
                 f"{min(4, cores)} workers, {cores} cores"))

    assert best_speedup >= _MIN_BATCHED_SPEEDUP, (
        f"batched serving at max_batch >= 1024 must be >= "
        f"{_MIN_BATCHED_SPEEDUP:.0f}x the per-query loop, got "
        f"{best_speedup:.2f}x"
    )
    rows.append(("note", "", "", "", "", "", "", "",
                 f"build {build_s:.2f}s; batched >= 1024 acceptance "
                 f"{best_speedup:.2f}x >= {_MIN_BATCHED_SPEEDUP:.0f}x"))

    write_table(
        "a5_serving",
        "A5  serving throughput, per-query loop vs batched vs cached "
        f"(knn, d=2, k={K}, n={N_KNN:,}; QPS = queries / wall second; "
        "p50/p99 = submit-to-fulfill latency)",
        ["n", "mode", "max_batch", "queries", "QPS", "speedup",
         "p50 ms", "p99 ms", "notes"],
        rows,
    )


@table_bench
def test_a5_serving_covering_table():
    machine = Machine()
    pts = uniform_cube(N_COVERING, 2, bench_seed(54))
    queries = uniform_cube(M_COVERING, 2, bench_seed(55))
    index = ServingIndex.build(
        pts, 1, machine=machine, seed=bench_seed(56), engine="frontier",
        with_structure=True,
    )

    sample = queries[:256]
    base_lat = []
    for q in sample:
        t0 = time.perf_counter()
        index.structure.query(q)
        base_lat.append((time.perf_counter() - t0) * 1e3)
    per_query_qps = _throughput(sample.shape[0], sum(base_lat) / 1e3)
    p50, p99 = _percentiles(base_lat)

    rows = [(N_COVERING, "per-query", "-", sample.shape[0],
             f"{per_query_qps:,.0f}", "1.00x", f"{p50:.3f}", f"{p99:.3f}",
             "baseline (256-pt sample)")]
    for max_batch in (256, 1024):
        wall, stats, lat_ms = _serve_batched(index, queries, "covering", max_batch)
        qps = _throughput(M_COVERING, wall)
        p50, p99 = _percentiles(lat_ms)
        record_bench_run(
            "a5_serving", machine,
            params={"n": N_COVERING, "d": 2, "k": 1, "mode": "covering",
                    "max_batch": max_batch},
            extra={"queries": M_COVERING, "wall_s": wall, "qps": qps,
                   "vs_per_query": qps / per_query_qps,
                   "p50_ms": p50, "p99_ms": p99},
        )
        rows.append((N_COVERING, "covering", max_batch, M_COVERING,
                     f"{qps:,.0f}", f"{qps / per_query_qps:.2f}x",
                     f"{p50:.3f}", f"{p99:.3f}", f"{stats.batches} batches"))

    write_table(
        "a5_serving_covering",
        "A5b covering-mode serving throughput (Sec. 3 structure, d=2, "
        f"k=1, n={N_COVERING:,}; p50/p99 = submit-to-fulfill latency)",
        ["n", "mode", "max_batch", "queries", "QPS", "speedup",
         "p50 ms", "p99 ms", "notes"],
        rows,
    )
