"""E8 — hyperplane cuts cross Omega(n) balls; spheres cross O(n^{(d-1)/d}).

The paper's Section 1 motivation, quantified: on adversarial inputs a
fixed-direction median hyperplane (Bentley's cut) crosses a constant
fraction of the 1-NN balls, while the MTTV sphere's crossings scale
sublinearly.  Also reports the downstream effect: total correction work
of the two divide-and-conquer algorithms on the same inputs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import power_law_fit
from repro.baselines import brute_force_knn
from repro.core import parallel_nearest_neighborhood, simple_parallel_dnc
from repro.pvm import Machine
from repro.separators import MTTVSeparatorSampler, ball_split, median_hyperplane
from repro.workloads import plane_hugger, slab_pairs, uniform_cube

from common import bench_seed, table_bench, write_table


def crossings(pts: np.ndarray, k: int = 1, draws: int = 15) -> tuple[int, float]:
    balls = brute_force_knn(pts, k).to_ball_system()
    plane_iota = balls.intersection_number(median_hyperplane(pts, axis=0))
    sampler = MTTVSeparatorSampler(pts, seed=bench_seed(3))
    sphere = float(np.median([
        ball_split(sampler.draw(), balls).intersection_number for _ in range(draws)
    ]))
    return plane_iota, sphere


@table_bench
def test_e8_crossing_scaling():
    rows = []
    for name, gen in (("slab_pairs", slab_pairs), ("plane_hugger", plane_hugger), ("uniform", uniform_cube)):
        plane_counts, sphere_counts, ns = [], [], [512, 1024, 2048, 4096]
        for n in ns:
            p, s = crossings(gen(n, 2, n))
            plane_counts.append(max(p, 1))
            sphere_counts.append(max(s, 1.0))
            rows.append((name, n, p, f"{s:.0f}", f"{p / max(s, 1):.0f}x"))
        pfit = power_law_fit(ns, plane_counts)
        sfit = power_law_fit(ns, sphere_counts)
        rows.append((name, "fit", f"n^{pfit.exponent:.2f}", f"n^{sfit.exponent:.2f}", ""))
    write_table(
        "e8_crossings",
        "E8  1-NN ball crossings: fixed-direction median hyperplane vs MTTV sphere"
        " (theory: Omega(n) vs O(sqrt n) on adversarial inputs)",
        ["workload", "n", "hyperplane", "sphere (med)", "gap"],
        rows,
    )


@table_bench
def test_e8_downstream_cost():
    """The crossings translate into correction work and depth."""
    rows = []
    for n in (1024, 4096):
        pts = slab_pairs(n, 2, n + 1)
        fast = parallel_nearest_neighborhood(pts, 1, machine=Machine(), seed=bench_seed(5))
        simple = simple_parallel_dnc(pts, 1, machine=Machine(), seed=bench_seed(5))
        assert fast.system.same_distances(simple.system)
        rows.append(
            (n, f"{fast.cost.depth:.0f}", f"{simple.cost.depth:.0f}",
             f"{fast.cost.work / n:.0f}", f"{simple.cost.work / n:.0f}")
        )
    write_table(
        "e8_downstream",
        "E8b  end-to-end on slab_pairs: sphere DnC vs hyperplane DnC (both exact)",
        ["n", "fast depth", "simple depth", "fast work/n", "simple work/n"],
        rows,
    )


def test_bench_crossing_measurement(benchmark):
    pts = slab_pairs(2048, 2, 7)
    balls = brute_force_knn(pts, 1).to_ball_system()
    plane = median_hyperplane(pts, axis=0)
    benchmark(lambda: balls.intersection_number(plane))
