"""A6 — Online updates: absorb vs full rebuild, and zero-downtime swaps.

The online index (:class:`~repro.core.online.MutableIndex`) buffers
inserts/deletes and, on ``commit()``, rebuilds only the subtrees whose
leaves the mutations touch, replaying every untouched subtree from its
recorded snapshot.  The guarantee is *bit-identical equivalence*: the
absorbed index — neighbors, tree, cost ledger, metrics — matches a
from-scratch build over the same points, so speed is the entire story
(every row below re-verifies equivalence via
:func:`~repro.core.online.equivalence_report`).

Two experiments:

- **absorb vs rebuild** (n = 120k): one commit per churn level, absorb
  wall time against a timed from-scratch rebuild of the same version.
  The acceptance bar (ISSUE 6) is >= 5x at <= 1% churn with n >= 100k.
- **hot swap** (n = 30k): a live :class:`~repro.serve.mp.ServingPool`
  stream with two mid-stream ``Batcher.swap_index`` calls.  Zero
  downtime means every ticket is fulfilled and each is answered by
  exactly the version that accepted it; the only cost is the swap stall
  (flush + shm re-export + worker re-seed), reported in ms.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.online import MutableIndex, equivalence_report
from repro.pvm import Machine
from repro.serve import Batcher, ServingPool
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

N_ABSORB = 120_000
K = 2
#: One commit per level: (inserted + deleted) points per commit.
CHURN_BATCHES = [12, 120, 1200]

N_SWAP = 30_000
M_SWAP_QUERIES = 4096
SWAP_WORKERS = 2

_MIN_ABSORB_SPEEDUP = 5.0


@table_bench
def test_a6_online_absorb_table():
    machine = Machine()
    pts = uniform_cube(N_ABSORB, 2, bench_seed(61))
    t0 = time.perf_counter()
    index = MutableIndex(
        pts, K, seed=bench_seed(62), churn_threshold=0.05, machine=machine
    )
    build_s = time.perf_counter() - t0

    rng = np.random.default_rng(bench_seed(63))
    rows = []
    best_speedup = 0.0
    for batch in CHURN_BATCHES:
        n_ins = batch // 2
        index.insert(rng.random((n_ins, 2)))
        index.delete(rng.choice(index.n, size=batch - n_ins, replace=False))
        info = index.commit()

        t0 = time.perf_counter()
        reference = index.fresh_like()
        rebuild_s = time.perf_counter() - t0
        problems = equivalence_report(index, reference)
        assert not problems, f"absorb diverged at batch={batch}: {problems}"

        speedup = rebuild_s / info.wall_s if info.wall_s > 0 else float("inf")
        if info.churn <= 0.01:
            best_speedup = max(best_speedup, speedup)
        record_bench_run(
            "a6_online", index.machine,
            params={"n": info.n, "d": 2, "k": K, "mode": "absorb",
                    "batch": batch, "version": info.version},
            extra={"churn": info.churn, "punted": info.punted,
                   "reused_fraction": info.reused_fraction,
                   "touched_leaves": info.touched_leaves,
                   "absorb_s": info.wall_s, "rebuild_s": rebuild_s,
                   "speedup": speedup, "equivalent": True},
            wall_seconds=info.wall_s,
        )
        rows.append((
            info.n, info.version, batch, f"{info.churn:.4%}",
            "rebuild" if info.punted else "absorb",
            f"{info.reused_fraction:.1%}", info.touched_leaves,
            f"{info.wall_s:.3f}", f"{rebuild_s:.3f}", f"{speedup:.2f}x",
            "exact",
        ))

    assert best_speedup >= _MIN_ABSORB_SPEEDUP, (
        f"absorb at <= 1% churn (n={N_ABSORB:,}) must be >= "
        f"{_MIN_ABSORB_SPEEDUP:.0f}x a full rebuild, got {best_speedup:.2f}x"
    )
    stats = index.update_stats
    rows.append(("note", "", "", "", "", "", "",
                 "", "", "",
                 f"initial build {build_s:.2f}s; {stats.commits} commits "
                 f"({stats.absorbed} absorbed, {stats.punts} punts); "
                 f"acceptance {best_speedup:.2f}x >= "
                 f"{_MIN_ABSORB_SPEEDUP:.0f}x at <= 1% churn"))

    write_table(
        "a6_online",
        "A6  online commits, absorb vs from-scratch rebuild (d=2, "
        f"k={K}, n={N_ABSORB:,}; every row re-verified bit-identical)",
        ["n", "ver", "batch", "churn", "path", "reused", "leaves",
         "absorb_s", "rebuild_s", "speedup", "equiv"],
        rows,
    )


@table_bench
def test_a6_online_hotswap_table():
    cores = os.cpu_count() or 1
    machine = Machine()
    pts = uniform_cube(N_SWAP, 2, bench_seed(64))
    mutable = MutableIndex(
        pts, K, seed=bench_seed(65), churn_threshold=0.05, machine=machine
    )
    queries = uniform_cube(M_SWAP_QUERIES, 2, bench_seed(66))
    rng = np.random.default_rng(bench_seed(67))

    snapshots = {0: mutable.snapshot()}
    swap_at = {M_SWAP_QUERIES // 3, 2 * M_SWAP_QUERIES // 3}
    workers = min(SWAP_WORKERS, cores)
    tickets, versions, swap_ms = [], [], []
    with ServingPool(snapshots[0], workers=workers, machine=machine) as pool:
        batcher = Batcher(
            snapshots[0], kind="knn", k=K, max_batch=256, pool=pool
        )
        t0 = time.perf_counter()
        for i, row in enumerate(queries):
            if i in swap_at:
                mutable.insert(rng.random((16, 2)))
                mutable.delete(rng.choice(mutable.n, size=8, replace=False))
                mutable.commit()
                snap = mutable.snapshot()
                t_swap = time.perf_counter()
                batcher.swap_index(snap)
                swap_ms.append((time.perf_counter() - t_swap) * 1e3)
                snapshots[snap.version] = snap
            tickets.append(batcher.submit(row))
            versions.append(batcher.index.version)
        batcher.flush()
        wall = time.perf_counter() - t0
        unfulfilled = sum(1 for t in tickets if not t.done)

        # no torn reads: each ticket's answer is its accepting version's
        per_version = {v: [] for v in snapshots}
        for i, v in enumerate(versions):
            per_version[v].append(i)
        for v, idxs in per_version.items():
            want = snapshots[v].execute("knn", queries[idxs], K)
            for j, i in enumerate(idxs):
                np.testing.assert_array_equal(tickets[i].value[0], want[0][j])

    assert unfulfilled == 0, f"{unfulfilled} tickets dropped across swaps"
    qps = M_SWAP_QUERIES / wall if wall > 0 else float("inf")
    record_bench_run(
        "a6_online", machine,
        params={"n": N_SWAP, "d": 2, "k": K, "mode": "hotswap",
                "workers": workers, "host_cores": cores},
        extra={"queries": M_SWAP_QUERIES, "swaps": len(swap_ms),
               "swap_stall_ms": swap_ms, "unfulfilled": unfulfilled,
               "qps": qps, "wall_s": wall},
        wall_seconds=wall,
    )
    rows = [
        (N_SWAP, v, len(per_version[v]),
         f"{swap_ms[i - 1]:.1f}" if i > 0 else "-",
         "0 dropped")
        for i, v in enumerate(sorted(per_version))
    ]
    rows.append(("note", "", "", "",
                 f"{workers} workers, {cores} cores; {qps:,.0f} QPS "
                 f"sustained across {len(swap_ms)} swaps; all answers "
                 "match their accepting version"))
    write_table(
        "a6_online_swap",
        "A6b zero-downtime hot swap under a live ServingPool stream "
        f"(knn, d=2, k={K}, n={N_SWAP:,}, {M_SWAP_QUERIES} queries)",
        ["n", "version", "requests", "swap_stall_ms", "notes"],
        rows,
    )
