"""A2 — the O(log log k) question (§6.2's closing remark).

The paper: "for k > 1 ... the k closest points can be computed in random
O(log log k) time ... It is an interesting question whether this extra
factor can be eliminated."  We compare the three selection engines in the
scan-vector model — full radix sort, quickselect-by-scans, Floyd–Rivest
two-pass sampling — on depth as n and k grow, quantifying how much the
sampling selection buys and how close to constant-depth it gets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pvm import Machine
from repro.pvm.sorting import (
    floyd_rivest_select,
    parallel_k_smallest,
    randomized_select,
    split_radix_sort,
)

from common import table_bench, write_table


@table_bench
def test_a2_selection_depth_vs_n():
    rows = []
    rng = np.random.default_rng(0)
    for n in (1_000, 10_000, 100_000):
        arr = rng.random(n)
        k = n // 2
        m_q = Machine()
        randomized_select(m_q, arr, k)
        m_fr = Machine()
        floyd_rivest_select(m_fr, arr, k)
        m_sort = Machine()
        split_radix_sort(m_sort, (arr * 2**20).astype(np.int64), bits=20)
        rows.append(
            (n, f"{m_sort.total.depth:.0f}", f"{m_q.total.depth:.0f}",
             f"{m_fr.total.depth:.0f}",
             f"{m_q.total.work / n:.1f}", f"{m_fr.total.work / n:.2f}")
        )
    write_table(
        "a2_selection_depth",
        "A2  median selection depth: radix sort vs quickselect vs Floyd-Rivest",
        ["n", "sort depth", "quickselect depth", "FR depth", "qs work/n", "FR work/n"],
        rows,
    )


@table_bench
def test_a2_k_smallest_depth_vs_k():
    rows = []
    rng = np.random.default_rng(1)
    n = 50_000
    arr = rng.random(n)
    for k in (1, 4, 16, 64, 256):
        m = Machine()
        parallel_k_smallest(m, arr, k)
        rows.append((k, f"{m.total.depth:.0f}", f"{m.total.work / n:.2f}"))
    write_table(
        "a2_k_smallest",
        f"A2b  k smallest of n={n}: depth vs k (the log log k question)",
        ["k", "depth", "work/n"],
        rows,
    )


@pytest.mark.parametrize("algo", ["quickselect", "floyd_rivest"])
def test_bench_selection(benchmark, algo):
    arr = np.random.default_rng(2).random(100_000)
    fn = {
        "quickselect": lambda: randomized_select(Machine(), arr, 50_000),
        "floyd_rivest": lambda: floyd_rivest_select(Machine(), arr, 50_000),
    }[algo]
    benchmark(fn)
