"""E5 — Parallel Nearest Neighborhood (Theorem 6.1), the headline result.

Claims: randomized O(log n) depth, n processors, work-optimal O(n) total
work (matching Vaidya sequentially).  We sweep n, fit the polylog degree
of the depth curve (should be ~1 vs the simple algorithm's ~2), verify
near-linear work, and show the head-to-head with E4.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import polylog_degree_estimate, power_law_fit
from repro.core import parallel_nearest_neighborhood, simple_parallel_dnc
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_chart, write_table

SIZES = [1024, 2048, 4096, 8192, 16384]


@table_bench
def test_e5_depth_and_work_table():
    rows = []
    depths, works = [], []
    prev = None
    for n in SIZES:
        machine = Machine()
        res = parallel_nearest_neighborhood(
            uniform_cube(n, 3, bench_seed(n)), 1, machine=machine, seed=bench_seed(1)
        )
        record_bench_run("e5_fast_dnc", machine, params={"n": n, "d": 3, "k": 1})
        depths.append(res.cost.depth)
        works.append(res.cost.work)
        inc = "" if prev is None else f"{res.cost.depth - prev:+.0f}"
        rows.append(
            (n, f"{res.cost.depth:.0f}", inc,
             f"{res.cost.depth / math.log2(n):.1f}",
             f"{res.cost.work / n:.0f}", res.stats.punts)
        )
        prev = res.cost.depth
    p = polylog_degree_estimate(SIZES, depths)
    wfit = power_law_fit(SIZES, works)
    rows.append(("fit", f"(log n)^{p:.2f}", "", "theory: ^1", f"work ~ n^{wfit.exponent:.2f}", ""))
    write_table(
        "e5_fast_dnc",
        "E5  fast (sphere) DnC vs n (d=3, k=1): O(log n) depth, O(n) work",
        ["n", "depth", "increment", "depth/log2 n", "work/n", "punts"],
        rows,
    )


@table_bench
def test_e5_head_to_head():
    rows = []
    for n in (2048, 8192, 16384):
        pts = uniform_cube(n, 3, bench_seed(n + 5))
        fast = parallel_nearest_neighborhood(pts, 1, machine=Machine(), seed=bench_seed(2))
        simple = simple_parallel_dnc(pts, 1, machine=Machine(), seed=bench_seed(2))
        rows.append(
            (n, f"{fast.cost.depth:.0f}", f"{simple.cost.depth:.0f}",
             f"{simple.cost.depth / fast.cost.depth:.2f}x",
             f"{fast.cost.work / n:.0f}", f"{simple.cost.work / n:.0f}")
        )
    write_table(
        "e5_head_to_head",
        "E5b  sphere vs hyperplane DnC (d=3, k=1): who wins and by how much",
        ["n", "fast depth", "simple depth", "depth ratio", "fast work/n", "simple work/n"],
        rows,
    )
    from repro.analysis import Series, ascii_chart

    ns = [int(r[0]) for r in rows]
    fast_d = [float(r[1]) for r in rows]
    simple_d = [float(r[2]) for r in rows]
    write_chart(
        "e5_head_to_head",
        ascii_chart(
            [Series("fast (sphere)", ns, fast_d), Series("simple (hyperplane)", ns, simple_d)],
            log_x=True,
            title="depth vs n: O(log n) vs O(log^2 n)",
            width=56,
            height=14,
        ),
    )


@pytest.mark.parametrize("n", [2048, 8192])
def test_bench_fast_dnc(benchmark, n):
    pts = uniform_cube(n, 2, bench_seed(7))
    benchmark(lambda: parallel_nearest_neighborhood(pts, 1, seed=bench_seed(8)))
