"""A3 — Frontier engine: wall-clock speedup of level-synchronous batching.

The frontier engine executes each level of the divide-and-conquer
recursion as one segmented batch of numpy passes (batched centerpoint
SVDs, segmented splits, level-wide candidate merges) instead of the
node-at-a-time recursion.  Both engines are bitwise equivalent on a
shared seed (tests/test_engine_equivalence.py); this experiment measures
what the batching buys in host wall-clock time.

Acceptance: >= 2x speedup for the fast algorithm at n >= 20_000.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import FastDnCConfig, parallel_nearest_neighborhood
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

SIZES = [5_000, 10_000, 20_000, 40_000]


def _timed_run(points, k, engine):
    machine = Machine()
    t0 = time.perf_counter()
    res = parallel_nearest_neighborhood(
        points, k, machine=machine,
        seed=bench_seed(2), config=FastDnCConfig(engine=engine),
    )
    return time.perf_counter() - t0, res, machine


@table_bench
def test_a3_engine_speedup_table():
    rows = []
    speedup_at_20k = None
    for n in SIZES:
        pts = uniform_cube(n, 2, bench_seed(n + 3))
        t_rec, rec, m_rec = _timed_run(pts, 1, "recursive")
        t_fro, fro, m_fro = _timed_run(pts, 1, "frontier")
        assert np.array_equal(rec.system.neighbor_indices, fro.system.neighbor_indices)
        assert rec.cost.depth == fro.cost.depth and rec.cost.work == fro.cost.work
        speedup = t_rec / t_fro
        if n >= 20_000 and speedup_at_20k is None:
            speedup_at_20k = speedup
        record_bench_run(
            "a3_frontier_engine", m_fro,
            params={"n": n, "d": 2, "k": 1, "engine": "frontier"},
            extra={"wall_recursive_s": t_rec, "wall_frontier_s": t_fro,
                   "speedup": speedup},
        )
        rows.append((n, f"{t_rec:.3f}", f"{t_fro:.3f}", f"{speedup:.2f}x",
                     f"{rec.cost.depth:.0f}", "bitwise-equal"))
    rows.append(("req", "", "", ">= 2x at n>=20k",
                 f"measured {speedup_at_20k:.2f}x", ""))
    assert speedup_at_20k is not None and speedup_at_20k >= 2.0, (
        f"frontier engine speedup {speedup_at_20k:.2f}x below the 2x bar"
    )
    write_table(
        "a3_frontier_engine",
        "A3  recursive vs frontier engine wall-clock (fast DnC, d=2, k=1)",
        ["n", "recursive s", "frontier s", "speedup", "depth", "ledger"],
        rows,
    )
