"""E7 — Fast Correction marching (Lemmas 6.2, 6.4, 6.5).

Claims: with high probability the number of active ball instances at every
level of the opposite partition tree stays below m^{1-eta}; the synthetic
duplication process X(W, K) stays below g(W) log W.  We instrument real
fast-DnC runs for the level-active profile and Monte-Carlo the duplication
process against its envelope.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import duplication_g
from repro.core import parallel_nearest_neighborhood, simulate_duplication
from repro.workloads import clustered, uniform_cube

from common import bench_seed, table_bench, write_table


@table_bench
def test_e7_level_actives_real_runs():
    rows = []
    for name, gen in (("uniform", uniform_cube), ("clustered", clustered)):
        for n in (4096, 16384):
            res = parallel_nearest_neighborhood(gen(n, 2, n), 1, seed=bench_seed(4))
            # profile of the largest marches (root-level corrections)
            biggest = sorted(res.stats.marching_level_active, key=lambda t: -t[0])[:3]
            for m, profile in biggest:
                peak = max(profile) if profile else 0
                rows.append(
                    (name, n, m, profile[0] if profile else 0, peak,
                     f"{peak / max(m, 1) ** 0.8:.2f}", len(profile))
                )
    write_table(
        "e7_marching_actives",
        "E7  marching level-actives on real runs (3 largest corrections per run):"
        " peak actives stay ~ m^0.8 (theory m^{1-eta})",
        ["workload", "n", "m at node", "initial", "peak actives", "peak/m^0.8", "levels"],
        rows,
    )


@table_bench
def test_e7_duplication_envelope():
    rows = []
    W, alpha = 4000.0, 0.9
    for K in (6, 10, 14):
        for adversary in ("half", "extreme", "random"):
            totals = [
                simulate_duplication(W, K, seed, alpha=alpha, adversary=adversary).leaf_total
                for seed in range(40)
            ]
            env = duplication_g(W, K, alpha) * math.log(W)
            rows.append(
                (K, adversary, f"{np.mean(totals):.0f}", f"{np.max(totals):.0f}",
                 f"{env:.0f}", f"{np.max(totals) / env:.3f}")
            )
    write_table(
        "e7_duplication",
        f"E7b  duplication process X(W={W:.0f}, K) vs Lemma 6.5 envelope g(W) log W",
        ["K", "adversary", "mean X", "max X", "envelope", "max/envelope"],
        rows,
    )


@table_bench
def test_e7_duplication_probability_knob():
    """beta controls duplication frequency: smaller beta -> more blowup."""
    rows = []
    for beta in (0.1, 0.4, 0.8):
        totals = [
            simulate_duplication(2000.0, 10, s, alpha=0.9, beta=beta).leaf_total
            for s in range(30)
        ]
        dups = [
            simulate_duplication(2000.0, 10, s, alpha=0.9, beta=beta).duplications
            for s in range(30)
        ]
        rows.append((beta, f"{np.mean(dups):.1f}", f"{np.mean(totals):.0f}", f"{np.max(totals):.0f}"))
    write_table(
        "e7_beta_knob",
        "E7c  duplication process vs beta (W=2000, K=10, alpha=0.9)",
        ["beta", "mean dups", "mean X", "max X"],
        rows,
    )


def test_bench_march_heavy(benchmark):
    pts = uniform_cube(8192, 2, 9)
    res = parallel_nearest_neighborhood(pts, 1, seed=bench_seed(10))
    from repro.core import march_balls

    rng = np.random.default_rng(11)
    centers = rng.random((64, 2))
    radii = rng.random(64) * 0.1

    benchmark(lambda: march_balls(res.tree, pts, centers, radii))


@table_bench
def test_e7_lemma64_unrelated_system():
    """Lemma 6.4 directly: a sphere drawn by the unit-time separator on
    point set P cuts at most n^alpha balls of an *unrelated* k-ply system
    B, with probability 1 - 1/n^beta.  We draw spheres on one point set
    and measure cuts against the 1-NN balls of an independent set."""
    from repro.baselines import brute_force_knn
    from repro.separators import MTTVSeparatorSampler, ball_split

    rows = []
    for n in (1024, 4096):
        pts_p = uniform_cube(n, 2, n + 50)          # separator input P
        pts_b = uniform_cube(n, 2, n + 51)          # unrelated system B
        balls = brute_force_knn(pts_b, 1).to_ball_system()
        sampler = MTTVSeparatorSampler(pts_p, seed=bench_seed(7))
        iotas = np.array([
            ball_split(sampler.draw(), balls).intersection_number for _ in range(40)
        ])
        alpha = 0.75  # between (d-1)/d = 0.5 and 1
        exceed = float((iotas > n**alpha).mean())
        rows.append(
            (n, f"{np.median(iotas):.0f}", int(iotas.max()), f"{n**alpha:.0f}",
             f"{exceed:.3f}", f"{n ** -(alpha - 0.5):.3f}")
        )
    write_table(
        "e7_lemma64",
        "E7d  Lemma 6.4: separator spheres vs an unrelated 1-NN system"
        " (alpha=0.75; bound Pr[iota > n^a] <= n^-(a-(d-1)/d))",
        ["n", "median iota", "max iota", "n^alpha", "Pr[iota > n^a]", "bound"],
        rows,
    )
