"""E1 — Sphere Separator Theorem (Theorem 2.1).

Claim: a k-ply neighborhood system of n balls has (and the MTTV sampler
finds, in expectation) a sphere separator cutting O(k^{1/d} n^{(d-1)/d})
balls while (d+1)/(d+2)-splitting.  We sweep n and d on k-NN ball systems,
fit the intersection-number exponent, and report split ratios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import power_law_fit
from repro.baselines import brute_force_knn
from repro.separators import MTTVSeparatorSampler, ball_split, default_delta
from repro.workloads import uniform_cube

from common import bench_seed, table_bench, write_table

DRAWS = 20


def separator_stats(n: int, d: int, k: int, seed: int) -> tuple[float, float]:
    pts = uniform_cube(n, d, seed)
    balls = brute_force_knn(pts, k).to_ball_system()
    sampler = MTTVSeparatorSampler(pts, seed=seed + 1)
    iotas, ratios = [], []
    for _ in range(DRAWS):
        rep = ball_split(sampler.draw(), balls)
        iotas.append(rep.intersection_number)
        ratios.append(rep.split_ratio)
    return float(np.median(iotas)), float(np.median(ratios))


@table_bench
def test_e1_table():
    rows = []
    for d in (2, 3, 4):
        ns = [512, 1024, 2048, 4096] if d < 4 else [512, 1024, 2048]
        iotas = []
        for n in ns:
            iota, ratio = separator_stats(n, d, 1, seed=n + d)
            iotas.append(max(iota, 1.0))
            rows.append((d, n, iota, f"{ratio:.3f}", f"{default_delta(d, 0.05):.3f}",
                         f"{(d - 1) / d:.2f}"))
        fit = power_law_fit(ns, iotas)
        rows.append((d, "fit", f"n^{fit.exponent:.2f}", "", "", f"(theory n^{(d-1)/d:.2f})"))
    write_table(
        "e1_separator_quality",
        "E1  MTTV separator on 1-NN ball systems (median of 20 draws)",
        ["d", "n", "iota", "split", "delta target", "theory"],
        rows,
    )


@table_bench
def test_e1_k_scaling():
    rows = []
    for k in (1, 2, 4, 8):
        iota, ratio = separator_stats(2048, 2, k, seed=bench_seed(90) + k)
        rows.append((k, iota, f"{iota / 2048 ** 0.5:.2f}", f"{ratio:.3f}"))
    write_table(
        "e1_k_scaling",
        "E1b  intersection number vs k (n=2048, d=2; theory ~ k^{1/d} sqrt(n))",
        ["k", "iota", "iota/sqrt(n)", "split"],
        rows,
    )


@pytest.mark.parametrize("d", [2, 3])
def test_bench_separator_draw(benchmark, d):
    pts = uniform_cube(4096, d, 5)
    sampler = MTTVSeparatorSampler(pts, seed=bench_seed(6))
    benchmark(sampler.draw)
