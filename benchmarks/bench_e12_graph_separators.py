"""E12 — the application: recursive separators on the computed k-NN graph.

The paper's introduction frames the k-NN graph construction as the
gateway to separator-based algorithms on "nicely embedded" graphs.  This
experiment runs the full chain on real outputs: separator sizes across
all scales of the recursive tree (theory: size^{(d-1)/d} per node) and
the nested-dissection fill-in payoff against baseline orderings.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import power_law_fit
from repro.baselines import brute_force_knn
from repro.core import (
    build_separator_tree,
    check_separation,
    elimination_fill,
    knn_graph_edges,
    nested_dissection_order,
    parallel_nearest_neighborhood,
    separator_profile,
)
from repro.workloads import grid_jitter, uniform_cube

from common import bench_seed, table_bench, write_table


@table_bench
def test_e12_separator_profile():
    rows = []
    for d in (2, 3):
        pts = uniform_cube(4096, d, 80 + d)
        system = parallel_nearest_neighborhood(pts, 1, seed=bench_seed(1)).system
        tree = build_separator_tree(system, seed=bench_seed(2), min_size=64)
        assert check_separation(system, tree)
        prof = [(m, s) for m, s in separator_profile(tree) if m >= 128 and s >= 1]
        fit = power_law_fit([m for m, _ in prof], [s for _, s in prof])
        top_m, top_s = prof[0]
        rows.append(
            (d, tree.height(), top_s, f"{top_s / top_m ** ((d - 1) / d):.2f}",
             f"size^{fit.exponent:.2f}", f"(theory ^{(d - 1) / d:.2f})")
        )
    write_table(
        "e12_separator_profile",
        "E12  recursive separators on computed 1-NN graphs (n=4096)",
        ["d", "tree height", "top separator", "top/n^((d-1)/d)", "profile fit", "theory"],
        rows,
    )


@table_bench
def test_e12_nested_dissection_fill():
    rows = []
    for n in (1024, 2304):
        pts = grid_jitter(n, 2, 90 + n)
        system = brute_force_knn(pts, 2)
        edges = knn_graph_edges(system)
        tree = build_separator_tree(system, seed=bench_seed(3), min_size=24)
        nd = elimination_fill(edges, nested_dissection_order(tree))
        ident = elimination_fill(edges, np.arange(n))
        rnd = elimination_fill(edges, np.random.default_rng(4).permutation(n))
        rows.append(
            (n, edges.shape[0], nd, ident, rnd,
             f"{rnd / max(nd, 1):.1f}x")
        )
    write_table(
        "e12_nested_dissection",
        "E12b  nested dissection fill-in on grid-like 2-NN graphs",
        ["n", "edges", "ND fill", "identity fill", "random fill", "random/ND"],
        rows,
    )


def test_bench_separator_tree(benchmark):
    pts = uniform_cube(2048, 2, 95)
    system = brute_force_knn(pts, 1)
    benchmark(lambda: build_separator_tree(system, seed=bench_seed(5)))
