"""E6 — the Punting Lemma (Lemma 4.1, Corollary 4.1).

Claims: for the probabilistic (0, log m)-tree, RD(n)'s tail is bounded by
``n A e^{-c log n}``; adding a constant per node shifts by 2C log n.  We
estimate tails by Monte Carlo and print them next to the closed-form
bound, plus the weighted depth of *real* fast-DnC partition trees
(Theorem 6.1's weight assignment).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import punting_tail_bound
from repro.core import ab_tree_trials, parallel_nearest_neighborhood, punted_weighted_depth, simulate_ab_tree
from repro.workloads import uniform_cube

from common import bench_seed, table_bench, write_table

TRIALS = 300


@table_bench
def test_e6_tail_vs_bound():
    rows = []
    for n in (1024, 4096, 16384):
        trials = ab_tree_trials(n, TRIALS, n)
        for c in (1.0, 1.5, 2.0, 3.0):
            threshold = 2 * c * math.log2(n)
            emp = float((trials > threshold).mean())
            rows.append((n, c, f"{threshold:.0f}", f"{emp:.3f}",
                         f"{punting_tail_bound(n, c):.3g}"))
    write_table(
        "e6_punting_tail",
        f"E6  Pr[RD(n) > 2c log2 n] — Monte Carlo ({TRIALS} trials) vs Lemma 4.1 bound",
        ["n", "c", "threshold", "empirical", "bound n*A*e^(-c ln n)"],
        rows,
    )


@table_bench
def test_e6_expected_growth():
    rows = []
    for n in (256, 1024, 4096, 16384, 65536):
        trials = ab_tree_trials(n, 120, n + 1)
        rows.append((n, f"{trials.mean():.1f}", f"{trials.max():.1f}",
                     f"{trials.mean() / math.log2(n):.2f}"))
    write_table(
        "e6_rd_growth",
        "E6b  RD(n) growth: mean stays O(log n)",
        ["n", "mean RD", "max RD", "mean/log2 n"],
        rows,
    )


@table_bench
def test_e6_real_tree_weighted_depth():
    """The lemma applied to actual runs: weight log2 m on punted nodes.

    With default parameters the fast path essentially never fails on
    uniform data (punts = 0, weighted depth 0 — the lemma's best case), so
    we also run a *stressed* configuration whose iota budget is tightened
    until a constant fraction of nodes punts; the lemma then predicts the
    weighted depth still stays O(log n).
    """
    from repro.core import FastDnCConfig

    rows = []
    stressed = FastDnCConfig(iota_factor=0.25)
    for n in (1024, 4096, 16384):
        pts = uniform_cube(n, 2, n + 2)
        for label, cfg in (("default", FastDnCConfig()), ("stressed", stressed)):
            res = parallel_nearest_neighborhood(pts, 1, seed=bench_seed(3), config=cfg)
            wd = punted_weighted_depth(res.tree)
            rows.append(
                (n, label, res.stats.punts, f"{wd:.1f}", f"{2 * math.log2(n):.1f}",
                 f"{res.cost.depth:.0f}")
            )
    write_table(
        "e6_real_weighted_depth",
        "E6c  punted weighted depth of real fast-DnC trees vs the 2 log2 n scale",
        ["n", "config", "punts", "weighted depth", "2 log2 n", "total depth"],
        rows,
    )


def test_bench_ab_tree(benchmark):
    benchmark(lambda: simulate_ab_tree(1 << 14, 5))
