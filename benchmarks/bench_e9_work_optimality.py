"""E9 — work-optimality and exactness across algorithms.

Claim: the parallel algorithm "uses no more work than the best sequential
algorithm" (up to constants).  We compare the fast DnC's charged work
against the actual operation counts of the sequential baselines (kd-tree,
grid, brute force) across workloads, and re-verify exact agreement.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import power_law_fit
from repro.baselines import brute_force_knn, grid_knn, kdtree_knn
from repro.core import parallel_nearest_neighborhood
from repro.pvm import Machine
from repro.workloads import clustered, uniform_cube

from common import bench_seed, table_bench, write_table


@table_bench
def test_e9_work_scaling():
    rows = []
    works = []
    ns = [1024, 2048, 4096, 8192, 16384]
    for n in ns:
        res = parallel_nearest_neighborhood(uniform_cube(n, 2, n), 1, machine=Machine(), seed=bench_seed(1))
        works.append(res.cost.work)
        rows.append((n, f"{res.cost.work:.3g}", f"{res.cost.work / n:.0f}",
                     f"{n * n:.3g}"))
    fit = power_law_fit(ns, works)
    rows.append(("fit", f"n^{fit.exponent:.2f}", "theory: ^1", "brute: ^2"))
    write_table(
        "e9_work_scaling",
        "E9  fast DnC charged work vs n (d=2, k=1): near-linear, far from n^2",
        ["n", "work", "work/n", "brute-force work"],
        rows,
    )


@table_bench
def test_e9_wall_clock_and_agreement():
    rows = []
    for name, gen in (("uniform", uniform_cube), ("clustered", clustered)):
        n, k = 8192, 2
        pts = gen(n, 2, 12)

        t0 = time.perf_counter()
        fast = parallel_nearest_neighborhood(pts, k, seed=bench_seed(2))
        t_fast = time.perf_counter() - t0

        t0 = time.perf_counter()
        kd = kdtree_knn(pts, k)
        t_kd = time.perf_counter() - t0

        t0 = time.perf_counter()
        gr = grid_knn(pts, k)
        t_grid = time.perf_counter() - t0

        t0 = time.perf_counter()
        bf = brute_force_knn(pts, k)
        t_bf = time.perf_counter() - t0

        agree = fast.system.same_distances(bf) and kd.same_distances(bf) and gr.same_distances(bf)
        rows.append(
            (name, "yes" if agree else "NO",
             f"{t_fast:.2f}", f"{t_kd:.2f}", f"{t_grid:.2f}", f"{t_bf:.2f}")
        )
        assert agree
    write_table(
        "e9_agreement",
        "E9b  exact agreement + wall-clock seconds (simulator wall time is NOT the"
        " paper's metric; work/depth above are)",
        ["workload", "all agree", "fast DnC s", "kd-tree s", "grid s", "brute s"],
        rows,
    )


@pytest.mark.parametrize(
    "algo", ["fast_dnc", "kdtree", "grid", "brute"]
)
def test_bench_all_knn(benchmark, algo):
    pts = uniform_cube(4096, 2, 13)
    fn = {
        "fast_dnc": lambda: parallel_nearest_neighborhood(pts, 2, seed=bench_seed(3)),
        "kdtree": lambda: kdtree_knn(pts, 2),
        "grid": lambda: grid_knn(pts, 2),
        "brute": lambda: brute_force_knn(pts, 2),
    }[algo]
    benchmark(fn)
