"""E11 — model mapping: Brent-scheduled time and SCAN cost policies.

The paper's "O(log n) time using n processors" statement, made concrete:
Brent's principle converts the (depth, work) ledger into T_p <= W/p + D.
We print the speedup curve of a real run, the p = n regime, and how the
depth changes under the unit / loglog / log SCAN policies (the paper's
CRCW remark: an extra O(log log) factor without unit scans).
"""

from __future__ import annotations

import math


from repro.core import parallel_nearest_neighborhood
from repro.pvm import Machine, brent_time, schedule_curve
from repro.workloads import uniform_cube

from common import bench_seed, table_bench, write_table

N = 16384


@table_bench
def test_e11_speedup_curve():
    pts = uniform_cube(N, 2, 1)
    res = parallel_nearest_neighborhood(pts, 1, machine=Machine(), seed=bench_seed(2))
    rows = []
    for pt in schedule_curve(res.cost, [1, 4, 16, 64, 256, 1024, 4096, N, 4 * N]):
        rows.append(
            (pt.processors, f"{pt.time:.0f}", f"{pt.speedup:.1f}", f"{pt.efficiency:.3f}")
        )
    rows.append(("inf", f"{res.cost.depth:.0f}", f"{res.cost.parallelism:.0f}", ""))
    write_table(
        "e11_speedup",
        f"E11  Brent schedule of one fast-DnC run (n={N}, d=2, k=1)",
        ["p", "T_p = W/p + D", "speedup", "efficiency"],
        rows,
    )


@table_bench
def test_e11_scan_policies():
    rows = []
    pts = uniform_cube(8192, 2, 3)
    base = None
    for policy in ("unit", "loglog", "log"):
        res = parallel_nearest_neighborhood(pts, 1, machine=Machine(policy), seed=bench_seed(4))
        if base is None:
            base = res.cost.depth
        rows.append(
            (policy, f"{res.cost.depth:.0f}", f"{res.cost.depth / base:.2f}x",
             f"{res.cost.work:.3g}", f"{brent_time(res.cost, 8192):.0f}")
        )
    write_table(
        "e11_scan_policies",
        "E11b  SCAN cost policy vs depth (n=8192): the paper's model remark",
        ["scan policy", "depth", "vs unit", "work", "T_p at p=n"],
        rows,
    )


@table_bench
def test_e11_p_equals_n_is_log_n():
    rows = []
    for n in (1024, 4096, 16384):
        pts = uniform_cube(n, 2, n)
        res = parallel_nearest_neighborhood(pts, 1, machine=Machine(), seed=bench_seed(5))
        tp = brent_time(res.cost, n)
        rows.append((n, f"{tp:.0f}", f"{tp / math.log2(n):.1f}"))
    write_table(
        "e11_p_equals_n",
        "E11c  T_n (= W/n + D) scales like log n — the headline claim",
        ["n", "T_n", "T_n / log2 n"],
        rows,
    )


def test_bench_schedule_curve(benchmark):
    pts = uniform_cube(2048, 2, 6)
    res = parallel_nearest_neighborhood(pts, 1, seed=bench_seed(7))
    benchmark(lambda: schedule_curve(res.cost, [1, 16, 256, 2048]))
