"""E3 — the neighborhood query structure (Lemma 3.1 + Theorem 3.1).

Claims: height O(log n), space O(n), query time O(k + log n), and the
parallel construction runs in O(log n) depth with n processors w.h.p.
We sweep n, compare the measured height against the numeric recurrence,
and measure query descent lengths.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import height_recurrence, min_valid_m0
from repro.baselines import brute_force_knn
from repro.core import NeighborhoodQueryStructure, QueryConfig
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, table_bench, write_table


def build(n: int, d: int, k: int, seed: int, machine=None):
    balls = brute_force_knn(uniform_cube(n, d, seed), k).to_ball_system()
    return NeighborhoodQueryStructure(balls, machine=machine, seed=seed + 1)


@table_bench
def test_e3_shape_table():
    cfg = QueryConfig()
    rows = []
    # the worst-case recurrence needs the paper's m0 validity threshold
    # (our practical build uses a smaller leaf size + explicit progress check)
    mu = cfg.mu(2)
    m0_star = max(cfg.m0, min_valid_m0(0.8, mu))
    for n in (512, 1024, 2048, 4096, 8192):
        m = Machine()
        s = build(n, 2, 1, n, machine=m)
        rec_h = height_recurrence(n, 0.8, mu, m0_star)
        rows.append(
            (
                n,
                s.stats.height,
                rec_h,
                f"{s.stats.space_ratio:.2f}",
                s.stats.fallback_leaves,
                f"{m.total.depth:.0f}",
                f"{m.total.depth / math.log2(n):.1f}",
            )
        )
    write_table(
        "e3_query_structure",
        "E3  query structure shape vs n (d=2, k=1): height O(log n), space O(n), "
        "parallel build depth O(log n)",
        ["n", "height", "recurrence h(n)", "space ratio", "fallback leaves",
         "build depth", "depth/log2 n"],
        rows,
    )


@table_bench
def test_e3_query_time():
    rows = []
    for n in (1024, 4096, 16384):
        s = build(n, 2, 2, n + 7)
        rng = np.random.default_rng(1)
        queries = rng.random((400, 2))
        steps = []
        for q in queries:
            node = s.root
            depth = 0
            while not node.is_leaf:
                side = node.separator.side_of_points(q[None, :])[0]
                node = node.left if side < 0 else node.right
                depth += 1
            steps.append(depth + node.ball_ids.shape[0])
        rows.append((n, f"{np.mean(steps):.1f}", int(np.max(steps)),
                     f"{np.mean(steps) / math.log2(n):.2f}"))
    write_table(
        "e3_query_time",
        "E3b  per-query cost (descent steps + leaf balls checked): O(k + log n)",
        ["n", "mean cost", "max cost", "mean/log2 n"],
        rows,
    )


@pytest.mark.parametrize("n", [1024, 4096])
def test_bench_build(benchmark, n):
    balls = brute_force_knn(uniform_cube(n, 2, 9), 1).to_ball_system()
    benchmark(lambda: NeighborhoodQueryStructure(balls, seed=bench_seed(10)))


def test_bench_query_many(benchmark):
    s = build(4096, 2, 1, 11)
    queries = np.random.default_rng(2).random((1000, 2))
    benchmark(lambda: s.query_many(queries))
