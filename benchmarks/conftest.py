"""Make the shared `common` helper importable when pytest runs from the repo
root, and register the ``--trace-full`` flag for unsummarized obs dumps."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--trace-full",
        action="store_true",
        default=False,
        help="also write full (unsummarized) observability dumps to the "
             "gitignored *_obs_full.json files",
    )


def pytest_configure(config):
    if config.getoption("--trace-full", default=False):
        os.environ["REPRO_TRACE_FULL"] = "1"
