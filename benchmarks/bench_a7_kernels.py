"""A7 — Kernel backends: wall-clock of the pluggable hot-path kernels.

The build and query hot paths dispatch through ``repro.kernels`` (side
tests, fused classify+pack splits, base-case brute force, candidate
merges, vectorised query descent).  Backends are bit-identical per op
and end to end (tests/test_kernels_equivalence.py); this experiment
measures what each backend costs and buys in host wall-clock:

- **numpy** — the routing refactor itself must be ~free: frontier
  builds and bulk queries stay within 1.05x of the pre-refactor
  baseline wall-clock (constants below, measured on the same host
  before ``repro.kernels`` existed).
- **numba** — where the ``repro[perf]`` extra is installed, the
  compiled kernels should win >= 3x on the dominant per-op paths at
  n >= 500k.  On hosts without numba the table records the rows as
  ``unavailable`` rather than skipping silently; the CI ``kernels``
  job runs the numba half.

Acceptance: numpy-backend build/query <= 1.05x the pre-refactor
baseline; numba speedup asserted only where numba is importable.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import FastDnCConfig, parallel_nearest_neighborhood
from repro.core.query_points import knn_query
from repro.kernels import numba_available, use_backend
from repro.kernels.bench import bench_backends
from repro.kernels.layout import FlatTree
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

# Pre-refactor wall-clock on the reference host (frontier engine, d=2,
# k=2; query: 50k queries against a 200k-point tree).  These are the
# numbers the <= 1.05x no-regression bar compares against.
BASELINE_BUILD_S = {100_000: 2.013, 250_000: 5.469, 500_000: 10.716}
BASELINE_QUERY_S = 1.068
REGRESSION_BAR = 1.05
NUMBA_BAR = 3.0
MAX_PASSES = 6  # re-measure under transient host load (see below)

BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])


def _timed_build(points, k, backend):
    machine = Machine()
    t0 = time.perf_counter()
    res = parallel_nearest_neighborhood(
        points, k, machine=machine, seed=bench_seed(7),
        config=FastDnCConfig(engine="frontier", kernels=backend),
    )
    return time.perf_counter() - t0, res, machine


@table_bench
def test_a7_build_wallclock_table():
    """Frontier builds per backend vs the pre-refactor baseline."""
    # warm the process (imports, BLAS thread pools, JIT compiles where
    # numba is present) so the timed runs compare against the baseline
    # under the same steady-state conditions it was measured in
    warm = uniform_cube(20_000, 2, bench_seed(5))
    for backend in BACKENDS:
        _timed_build(warm, 2, backend)
    # The baseline is a constant from another point in time, so unlike
    # a3's same-run ratio the comparison does NOT cancel host load.  Keep
    # the per-size minimum over up to MAX_PASSES passes and stop as soon
    # as the bar is met: transient load retries away, a real regression
    # fails every pass.
    best = {n: {} for n in BASELINE_BUILD_S}
    machines = {}
    results = {}
    worst_ratio = None
    for _ in range(MAX_PASSES):
        for n in sorted(BASELINE_BUILD_S):
            pts = uniform_cube(n, 2, bench_seed(n + 11))
            for backend in BACKENDS:
                t, res, machine = _timed_build(pts, 2, backend)
                if t < best[n].get(backend, float("inf")):
                    best[n][backend] = t
                machines[n, backend] = machine
                results[n, backend] = res
        worst_ratio = max(
            best[n]["numpy"] / base_s
            for n, base_s in BASELINE_BUILD_S.items()
        )
        if worst_ratio <= REGRESSION_BAR:
            break
    rows = []
    for n, base_s in sorted(BASELINE_BUILD_S.items()):
        record_bench_run(
            "a7_kernels", machines[n, "numpy"],
            params={"n": n, "d": 2, "k": 2, "engine": "frontier",
                    "kernels": "numpy"},
            extra={"baseline_s": base_s},
            wall_seconds=best[n]["numpy"],
        )
        if len(BACKENDS) == 2:
            np.testing.assert_array_equal(
                results[n, "numpy"].system.neighbor_indices,
                results[n, "numba"].system.neighbor_indices,
            )
        numba_cell = (
            f"{best[n]['numba']:.3f}" if "numba" in best[n]
            else "unavailable"
        )
        rows.append((n, f"{base_s:.3f}", f"{best[n]['numpy']:.3f}",
                     f"{best[n]['numpy'] / base_s:.3f}x", numba_cell))
    bar = f"<= {REGRESSION_BAR:.2f}x"
    rows.append(("req", "", "", f"{bar}; worst {worst_ratio:.3f}x",
                 "numba half runs in CI" if len(BACKENDS) == 1 else ""))
    write_table(
        "a7_kernels_build",
        "A7  frontier build wall-clock by kernel backend (d=2, k=2)",
        ["n", "baseline s", "numpy s", "vs baseline", "numba s"],
        rows,
    )
    assert worst_ratio <= REGRESSION_BAR, (
        f"numpy-backend build regressed {worst_ratio:.3f}x over the "
        f"pre-refactor baseline (bar {REGRESSION_BAR}x)"
    )


@table_bench
def test_a7_query_wallclock_table():
    """Bulk knn_query (FlatTree descent) per backend vs baseline."""
    n, q, k = 200_000, 50_000, 2
    pts = uniform_cube(n, 2, bench_seed(13))
    queries = uniform_cube(q, 2, bench_seed(17))
    _, res, _ = _timed_build(pts, k, "numpy")
    layout = FlatTree.from_tree(res.tree)
    rows = []
    timings = {}
    # constant-baseline comparison: same retry-under-load policy as the
    # build table above
    for _ in range(MAX_PASSES):
        for backend in BACKENDS:
            with use_backend(backend):
                t0 = time.perf_counter()
                idx, sq = knn_query(res.tree, res.system.points, queries, k,
                                    layout=layout)
                t = time.perf_counter() - t0
            timings[backend] = min(t, timings.get(backend, float("inf")))
            assert idx.shape == (q, k) and sq.shape == (q, k)
        if timings["numpy"] / BASELINE_QUERY_S <= REGRESSION_BAR:
            break
    for backend in BACKENDS:
        rows.append((backend, n, q, f"{BASELINE_QUERY_S:.3f}",
                     f"{timings[backend]:.3f}",
                     f"{timings[backend] / BASELINE_QUERY_S:.3f}x"))
    if "numba" not in timings:
        rows.append(("numba", n, q, f"{BASELINE_QUERY_S:.3f}",
                     "unavailable", "numba half runs in CI"))
    ratio = timings["numpy"] / BASELINE_QUERY_S
    rows.append(("req", "", "", "", f"<= {REGRESSION_BAR:.2f}x",
                 f"measured {ratio:.3f}x"))
    write_table(
        "a7_kernels_query",
        "A7  bulk query wall-clock by kernel backend (50k queries on 200k)",
        ["backend", "n", "queries", "baseline s", "measured s", "vs baseline"],
        rows,
    )
    assert ratio <= REGRESSION_BAR, (
        f"numpy-backend query regressed {ratio:.3f}x over the "
        f"pre-refactor baseline (bar {REGRESSION_BAR}x)"
    )


@table_bench
def test_a7_per_op_microbench_table():
    """Per-op ns/element on every available backend (repro bench kernels).

    Where numba is importable this is the >= 3x speedup check on the
    dominant ops at large n; without it the table still records the
    numpy-reference figures so regressions in the reference kernels are
    visible in the committed results.
    """
    machine = Machine()
    rows_raw = bench_backends(
        n=500_000, d=2, k=8, repeats=3, backends=BACKENDS,
        seed=bench_seed(19), machine=machine,
    )
    record_bench_run(
        "a7_kernels_ops", machine,
        params={"n": 500_000, "d": 2, "k": 8, "backends": BACKENDS},
    )
    by_op = {}
    for r in rows_raw:
        by_op.setdefault(r["op"], {})[r["backend"]] = r
    rows = []
    worst_speedup = None
    for op, per_backend in sorted(by_op.items()):
        ref = per_backend["numpy"]
        if "numba" in per_backend:
            speedup = ref["seconds"] / per_backend["numba"]["seconds"]
            numba_cell = f"{per_backend['numba']['ns_per_element']:.2f}"
            speedup_cell = f"{speedup:.2f}x"
            if worst_speedup is None or speedup < worst_speedup:
                worst_speedup = speedup
        else:
            numba_cell, speedup_cell = "unavailable", "-"
        rows.append((op, ref["elements"], f"{ref['ns_per_element']:.2f}",
                     numba_cell, speedup_cell))
    if numba_available():
        rows.append(("req", "", "", f">= {NUMBA_BAR:.0f}x best op",
                     f"worst {worst_speedup:.2f}x"))
        best = max(
            per["numpy"]["seconds"] / per["numba"]["seconds"]
            for per in by_op.values() if "numba" in per
        )
        assert best >= NUMBA_BAR, (
            f"best numba per-op speedup {best:.2f}x below the "
            f"{NUMBA_BAR}x bar at n=500k"
        )
    else:
        rows.append(("req", "", "", f">= {NUMBA_BAR:.0f}x best op",
                     "numba not installed here; CI kernels job measures it"))
    write_table(
        "a7_kernels_ops",
        "A7  per-op kernel micro-bench, ns/element (n=500k, d=2, k=8)",
        ["op", "elements", "numpy ns/el", "numba ns/el", "speedup"],
        rows,
    )
