"""E2 — the Unit Time Separator Algorithm.

Claims: each attempt costs O(1) depth and O(n) work; an attempt succeeds
(delta-splits) with constant probability, so the retry loop is geometric
with a small mean.  We measure per-attempt cost vs n and the retry
distribution across workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pvm import Machine
from repro.separators import find_good_separator
from repro.workloads import annulus, clustered, uniform_cube

from common import bench_seed, table_bench, write_table


@table_bench
def test_e2_cost_and_retries():
    rows = []
    for n in (512, 2048, 8192):
        m = Machine()
        attempts = []
        for seed in range(10):
            m_run = Machine()
            _, a = find_good_separator(uniform_cube(n, 2, seed), m_run, seed=seed)
            attempts.append(a)
            if seed == 0:
                m = m_run
        per_attempt_depth = m.total.depth / attempts[0]
        per_attempt_work = m.total.work / attempts[0]
        rows.append(
            (n, f"{per_attempt_depth:.0f}", f"{per_attempt_work / n:.2f}",
             f"{np.mean(attempts):.1f}", max(attempts))
        )
    write_table(
        "e2_unit_time",
        "E2  unit-time separator: per-attempt cost and retry counts (d=2)",
        ["n", "depth/attempt", "work/attempt/n", "mean attempts", "max attempts"],
        rows,
    )


@table_bench
def test_e2_retry_distribution_by_workload():
    rows = []
    for name, gen in (("uniform", uniform_cube), ("clustered", clustered), ("annulus", annulus)):
        for d in (2, 3):
            attempts = []
            for seed in range(15):
                m = Machine()
                _, a = find_good_separator(gen(1500, d, 40 + seed), m, seed=seed)
                attempts.append(a)
            rows.append((name, d, f"{np.mean(attempts):.2f}", int(np.median(attempts)), max(attempts)))
    write_table(
        "e2_retries_by_workload",
        "E2b  separator retries by workload (n=1500, 15 runs each)",
        ["workload", "d", "mean", "median", "max"],
        rows,
    )


@pytest.mark.parametrize("n", [1024, 8192])
def test_bench_find_good_separator(benchmark, n):
    pts = uniform_cube(n, 2, 3)

    def run():
        return find_good_separator(pts, Machine(), seed=bench_seed(4))

    benchmark(run)
