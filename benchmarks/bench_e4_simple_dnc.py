"""E4 — Simple Parallel Divide-and-Conquer (Lemma 5.1).

Claim: depth Theta(log^2 n) with n processors (an O(log m) query-structure
correction at every one of the O(log n) levels).  We sweep n and show the
per-doubling depth increments *grow* — the quadratic signature — and fit
the polylog degree.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import polylog_degree_estimate
from repro.core import simple_parallel_dnc
from repro.pvm import Machine
from repro.workloads import uniform_cube

from common import bench_seed, record_bench_run, table_bench, write_table

SIZES = [1024, 2048, 4096, 8192, 16384]


@table_bench
def test_e4_depth_table():
    rows = []
    depths = []
    prev = None
    for n in SIZES:
        machine = Machine()
        res = simple_parallel_dnc(
            uniform_cube(n, 3, bench_seed(n)), 1, machine=machine, seed=bench_seed(1)
        )
        record_bench_run("e4_simple_dnc", machine, params={"n": n, "d": 3, "k": 1})
        depths.append(res.cost.depth)
        inc = "" if prev is None else f"{res.cost.depth - prev:+.0f}"
        rows.append(
            (n, f"{res.cost.depth:.0f}", inc,
             f"{res.cost.depth / math.log2(n) ** 2:.2f}",
             f"{res.cost.work / n:.0f}")
        )
        prev = res.cost.depth
    p = polylog_degree_estimate(SIZES, depths)
    rows.append(("fit", f"(log n)^{p:.2f}", "", "theory: ^2", ""))
    write_table(
        "e4_simple_dnc",
        "E4  simple (hyperplane) DnC depth vs n (d=3, k=1): Theta(log^2 n)",
        ["n", "depth", "increment", "depth/log2(n)^2", "work/n"],
        rows,
    )


@pytest.mark.parametrize("n", [2048, 8192])
def test_bench_simple_dnc(benchmark, n):
    pts = uniform_cube(n, 2, bench_seed(5))
    benchmark(lambda: simple_parallel_dnc(pts, 1, seed=bench_seed(6)))
