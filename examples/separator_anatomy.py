#!/usr/bin/env python
"""Anatomy of an MTTV sphere separator, step by step.

Walks the full pipeline of Section 2 on a concrete point set — lift,
centerpoint, conformal centering, random great circle, pull-back — and
prints the quality of the resulting sphere against both the points and
their 1-neighborhood balls, alongside a median hyperplane cut for
contrast.  Demonstrates the lower-level API that the divide and conquer
is built from.

Run:  python examples/separator_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import brute_force_knn
from repro.geometry import (
    ConformalMap,
    iterated_radon_centerpoint,
    lift,
    tukey_depth_estimate,
)
from repro.separators import (
    MTTVSeparatorSampler,
    ball_split,
    default_delta,
    median_hyperplane,
)
from repro.workloads import clustered


def main() -> None:
    n, d = 3000, 2
    points = clustered(n, d, seed=3, clusters=12)
    rng = np.random.default_rng(0)

    # -- step 1: stereographic lift ---------------------------------------
    lifted = lift(points)
    print(f"lifted {n} points of R^{d} onto S^{d} in R^{d+1}")
    print(f"  max |y| deviation from 1: {abs(np.linalg.norm(lifted, axis=1) - 1).max():.2e}")

    # -- step 2: approximate centerpoint by iterated Radon points ----------
    z = iterated_radon_centerpoint(lifted, rng)
    depth = tukey_depth_estimate(lifted, z, rng, directions=500)
    print(f"centerpoint |z| = {np.linalg.norm(z):.3f}, Tukey depth ~ {depth}/{n}"
          f"  (target n/(d+2) = {n // (d + 3)})")

    # -- step 3: conformal centering ----------------------------------------
    cmap = ConformalMap.centering(z)
    moved = cmap.apply_to_sphere_points(lifted)
    depth0 = tukey_depth_estimate(moved, np.zeros(d + 1), rng, directions=500)
    print(f"after centering (delta = {cmap.delta:.3f}): depth of origin ~ {depth0}/{n}")

    # -- steps 4-5: random great circles, pulled back explicitly -----------
    balls = brute_force_knn(points, 1).to_ball_system()
    sampler = MTTVSeparatorSampler(points, seed=11)
    target = default_delta(d, 0.05)
    print(f"\ntarget split ratio (d+1)/(d+2)+eps = {target:.3f}")
    print(f"{'draw':>4} {'kind':<10} {'split':>6} {'iota':>5}")
    ratios, iotas = [], []
    for i in range(8):
        sep = sampler.draw()
        rep = ball_split(sep, balls)
        ratios.append(rep.split_ratio)
        iotas.append(rep.intersection_number)
        print(f"{i:>4} {type(sep).__name__:<10} {rep.split_ratio:>6.3f} {rep.intersection_number:>5}")

    # -- contrast: the Bentley hyperplane cut ------------------------------
    plane = median_hyperplane(points)
    prep = ball_split(plane, balls)
    print(f"\nmedian hyperplane: split {prep.split_ratio:.3f}, cuts {prep.intersection_number} balls")
    print(f"sphere separator (median of draws): split {np.median(ratios):.3f}, "
          f"cuts {np.median(iotas):.0f} balls")
    print(f"sqrt(n) reference for iota: {n ** 0.5:.0f}")


if __name__ == "__main__":
    main()
