#!/usr/bin/env python
"""A neighborhood-query 'service': Section 3's structure as an application.

Scenario: a dispatch system holds coverage disks (stations with service
radii of varying size — a k-ply neighborhood system) and must answer
"which stations cover this incident?" queries at interactive rates.  We
build the separator search tree once, then compare query cost against
the linear scan, and show the O(log n + k) behaviour the paper proves.

Run:  python examples/point_location_service.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import NeighborhoodQueryStructure
from repro.geometry import BallSystem
from repro.pvm import Machine
from repro.workloads import clustered


def make_coverage_disks(n: int, seed: int) -> BallSystem:
    """Stations clustered like cities, radii sized so ply stays bounded."""
    rng = np.random.default_rng(seed)
    centers = clustered(n, 2, seed, clusters=24, spread=0.03)
    # radius ~ local density: distance to the 3rd nearest station / 2
    from repro.baselines import brute_force_knn

    radii = brute_force_knn(centers, 3).radii * 0.75
    jitter = 0.5 + rng.random(n)
    return BallSystem(centers, radii * jitter)


def main() -> None:
    n = 20_000
    disks = make_coverage_disks(n, seed=5)
    ply = disks.ply_of(disks.centers).max()
    print(f"{n} coverage disks, max observed ply {ply}")

    t0 = time.perf_counter()
    machine = Machine()
    service = NeighborhoodQueryStructure(disks, machine=machine, seed=9)
    build_s = time.perf_counter() - t0
    s = service.stats
    print(f"built search tree in {build_s:.2f}s wall: height {s.height}, "
          f"{s.leaves} leaves, space ratio {s.space_ratio:.2f}x, "
          f"{s.fallback_leaves} fallback leaves")
    print(f"simulated parallel build: depth {machine.total.depth:,.0f}, "
          f"work {machine.total.work:,.0f}")

    # -- serve queries -----------------------------------------------------
    rng = np.random.default_rng(10)
    incidents = rng.random((2_000, 2))
    t0 = time.perf_counter()
    rows, ball_ids = service.query_many(incidents)
    fast_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sum(disks.covering(q).shape[0] for q in incidents[:200])  # timing only
    slow_s = (time.perf_counter() - t0) * (len(incidents) / 200)

    print(f"\nserved {len(incidents)} queries, {rows.shape[0]} coverage hits")
    print(f"search tree : {fast_s * 1e3:8.1f} ms total ({fast_s / len(incidents) * 1e6:.0f} us/query)")
    print(f"linear scan : {slow_s * 1e3:8.1f} ms total (extrapolated)")
    print(f"speedup     : {slow_s / fast_s:8.1f}x")

    # -- correctness spot check --------------------------------------------
    for q in incidents[:25]:
        got = np.sort(service.query(q))
        want = np.sort(disks.covering(q))
        assert np.array_equal(got, want)
    print("\nspot-checked 25 queries against the direct scan: identical")


if __name__ == "__main__":
    main()
