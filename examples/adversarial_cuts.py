#!/usr/bin/env python
"""Why spheres, not hyperplanes — the paper's opening argument, measured.

Builds the Omega(n) lower-bound construction (tight point pairs straddling
every candidate hyperplane cut) plus benign workloads, and measures how
many k-NN balls each kind of cut crosses.  The crossing count is exactly
the amount of correction work a divide-and-conquer has to do after the
recursive calls, so this table is the cost story of the whole paper in
miniature.

Run:  python examples/adversarial_cuts.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import brute_force_knn
from repro.core import parallel_nearest_neighborhood
from repro.separators import MTTVSeparatorSampler, ball_split, median_hyperplane
from repro.workloads import clustered, concentric_shells, slab_pairs, uniform_cube


def crossing_counts(points: np.ndarray, k: int, draws: int = 25) -> tuple[int, float]:
    balls = brute_force_knn(points, k).to_ball_system()
    # Bentley "picks the hyperplane by translating a FIXED hyperplane until
    # the points are divided in half" — the fixed direction is what the
    # adversarial construction defeats
    plane = median_hyperplane(points, axis=0)
    plane_iota = balls.intersection_number(plane)
    sampler = MTTVSeparatorSampler(points, seed=13)
    sphere_iotas = [
        ball_split(sampler.draw(), balls).intersection_number for _ in range(draws)
    ]
    return plane_iota, float(np.median(sphere_iotas))


def main() -> None:
    n, k = 2048, 1
    workloads = {
        "uniform": uniform_cube(n, 2, 1),
        "clustered": clustered(n, 2, 2),
        "shells": concentric_shells(n, 2, 3),
        "slab pairs (adversarial)": slab_pairs(n, 2, 4),
    }
    print(f"k-NN ball crossings of the first divide step (n = {n}, k = {k})")
    print(f"{'workload':<26} {'hyperplane':>11} {'sphere (med)':>13} {'ratio':>7}")
    for name, pts in workloads.items():
        plane_iota, sphere_iota = crossing_counts(pts, k)
        ratio = plane_iota / max(sphere_iota, 1.0)
        print(f"{name:<26} {plane_iota:>11} {sphere_iota:>13.0f} {ratio:>6.1f}x")
    print(f"\nsqrt(n) = {n ** 0.5:.0f} is the separator theorem's scale for the sphere column")

    # the punchline: the fast algorithm stays exact AND fast on the
    # adversarial input, because its cuts are spheres
    pts = workloads["slab pairs (adversarial)"]
    res = parallel_nearest_neighborhood(pts, k, seed=5)
    assert res.system.same_distances(brute_force_knn(pts, k))
    print(f"\nfast DnC on the adversarial input: exact, depth {res.cost.depth:.0f}, "
          f"work/n {res.cost.work / n:.1f}, punts {res.stats.punts}")


if __name__ == "__main__":
    main()
