#!/usr/bin/env python
"""Nested dissection on the k-NN graph — why the paper wanted this graph.

The introduction's motivation: the k-NN graph is "nicely embedded", so the
sphere separator theorem applies to it recursively.  This example runs the
full chain the paper enables:

  points --(fast parallel DnC)--> exact k-NN graph
         --(recursive MTTV separators)--> separator tree
         --(separators last)--> nested dissection elimination ordering
         --> measured fill-in vs a random ordering

Run:  python examples/nested_dissection.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import power_law_fit
from repro.core import (
    build_separator_tree,
    check_separation,
    elimination_fill,
    knn_graph_edges,
    nested_dissection_order,
    parallel_nearest_neighborhood,
    separator_profile,
)
from repro.workloads import grid_jitter


def main() -> None:
    # near-lattice points: the nearest-neighbor graph is then grid-like,
    # the textbook case where nested dissection shines
    n, d, k = 4096, 2, 3
    points = grid_jitter(n, d, seed=21)

    # 1. the paper's algorithm produces the graph
    result = parallel_nearest_neighborhood(points, k, seed=22)
    edges = knn_graph_edges(result.system)
    print(f"k-NN graph: n={n}, {edges.shape[0]} edges "
          f"(built in simulated depth {result.cost.depth:.0f})")

    # 2. recursive sphere separators on the graph
    tree = build_separator_tree(result.system, seed=23, min_size=24)
    assert check_separation(result.system, tree), "separation property must hold"
    prof = [(m, s) for m, s in separator_profile(tree) if m >= 200 and s >= 1]
    fit = power_law_fit([m for m, _ in prof], [s for _, s in prof])
    print(f"separator tree: height {tree.height()}, "
          f"separator size ~ size^{fit.exponent:.2f} (theory: ^{(d-1)/d:.2f})")
    top = prof[0]
    print(f"top separator: {top[1]} of {top[0]} vertices "
          f"({top[1] / top[0] ** ((d - 1) / d):.2f} x n^{(d-1)/d:.2f})")

    # 3. nested dissection ordering and its fill-in
    nd_order = nested_dissection_order(tree)
    rng = np.random.default_rng(24)
    rand_order = rng.permutation(n)
    ident_order = np.arange(n)

    fills = {
        "nested dissection": elimination_fill(edges, nd_order),
        "identity order": elimination_fill(edges, ident_order),
        "random order": elimination_fill(edges, rand_order),
    }
    print("\nsymbolic Cholesky fill-in (new edges created):")
    base = fills["nested dissection"]
    for name, f in fills.items():
        print(f"  {name:<18} {f:>8}  ({f / max(base, 1):.1f}x)")
    print("\nseparators eliminated last keep elimination cliques small —")
    print("the Lipton–Rose–Tarjan payoff the paper's graph construction unlocks.")


if __name__ == "__main__":
    main()
