#!/usr/bin/env python
"""Parallel scaling study: O(log n) vs O(log^2 n), and Brent speedups.

Sweeps problem sizes, runs both the fast sphere-separator algorithm
(Section 6) and the simple hyperplane algorithm (Section 5) on the
simulated scan-vector machine, and prints the depth/work tables plus a
Brent-scheduled speedup curve — the practical reading of "n processors,
O(log n) time".

Run:  python examples/parallel_scaling.py
"""

from __future__ import annotations

import math

import repro
from repro.analysis import loglinear_fit
from repro.pvm import schedule_curve
from repro.workloads import uniform_cube


def main() -> None:
    k, d = 1, 2
    sizes = [1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14]

    print(f"{'n':>7} {'fast depth':>11} {'simple depth':>13} "
          f"{'fast work/n':>12} {'simple work/n':>14} {'punts':>6}")
    fast_depths, simple_depths = [], []
    last_fast = None
    for n in sizes:
        pts = uniform_cube(n, d, seed=n)
        fast = repro.all_knn(pts, k, method="fast", seed=1)
        simple = repro.all_knn(pts, k, method="simple", seed=1)
        fast_depths.append(fast.cost.depth)
        simple_depths.append(simple.cost.depth)
        last_fast = fast
        print(f"{n:>7} {fast.cost.depth:>11.0f} {simple.cost.depth:>13.0f} "
              f"{fast.cost.work / n:>12.1f} {simple.cost.work / n:>14.1f} "
              f"{fast.stats.punts:>6}")

    fit_fast = loglinear_fit(sizes, fast_depths)
    fit_simple = loglinear_fit(sizes, simple_depths)
    print(f"\ndepth per doubling of n: fast {fit_fast.exponent:.1f}, "
          f"simple {fit_simple.exponent:.1f}")
    print("(the fast algorithm adds a ~constant amount of depth per doubling —")
    print(" O(log n) — while the simple one adds increasingly more — O(log^2 n))")

    n = sizes[-1]
    print(f"\nBrent-scheduled times for the fast run at n = {n}:")
    print(f"{'p':>8} {'time':>12} {'speedup':>9} {'efficiency':>11}")
    for pt in schedule_curve(last_fast.cost, [1, 16, 256, 4096, n, 4 * n]):
        print(f"{pt.processors:>8} {pt.time:>12.0f} {pt.speedup:>9.1f} {pt.efficiency:>11.2f}")
    ideal = last_fast.cost.depth
    print(f"\nwith p = n the schedule is within {last_fast.cost.work / n / ideal + 1:.2f}x "
          f"of the depth lower bound ({ideal:.0f} steps ~ "
          f"{ideal / math.log2(n):.1f} x log2 n)")


if __name__ == "__main__":
    main()
