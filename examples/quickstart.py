#!/usr/bin/env python
"""Quickstart: the paper's headline algorithm in five minutes.

Computes the exact k-nearest-neighbor graph of random points with the
O(log n)-depth sphere-separator algorithm (Frieze–Miller–Teng, SPAA 1992),
validates it against brute force, and reads the simulated parallel cost
off the machine ledger.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.baselines import brute_force_knn
from repro.pvm import Machine, brent_time
from repro.workloads import uniform_cube


def main() -> None:
    n, d, k = 4096, 2, 2
    points = uniform_cube(n, d, seed=7)

    # --- run the paper's algorithm on a simulated scan-vector machine ----
    machine = Machine(scan="unit")  # the paper's unit-time SCAN model
    result = repro.all_knn(points, k, method="fast", machine=machine, seed=42)

    # --- the answer is exact --------------------------------------------
    reference = brute_force_knn(points, k)
    assert result.system.same_distances(reference), "must match brute force"
    edges = result.edges()
    print(f"k-NN graph of n={n} points (d={d}, k={k}): {edges.shape[0]} edges")

    # --- the cost ledger is the point of the exercise --------------------
    cost = result.cost
    print(f"parallel depth : {cost.depth:,.0f}  (~{cost.depth / np.log2(n):.1f} x log2 n)")
    print(f"total work     : {cost.work:,.0f}  (~{cost.work / n:.0f} x n)")
    print(f"parallelism    : {cost.parallelism:,.0f}")
    print(f"Brent time with p = n processors: {brent_time(cost, n):,.0f} steps")

    # --- what the randomness did ------------------------------------------
    s = result.stats
    print(
        f"recursion: {s.nodes} nodes, {s.base_cases} base cases, "
        f"{s.separator_attempts} separator draws, {s.punts} punts "
        f"({s.punts_iota} iota / {s.punts_marching} marching / {s.punts_separator} separator)"
    )


if __name__ == "__main__":
    main()
