"""Command-line interface: run the paper's algorithms from a shell.

Subcommands
-----------
``repro knn``
    Compute the exact k-NN graph of a generated workload (or a points
    file) with any of the five algorithms; print the cost ledger, phase
    breakdown and stats; optionally save the edge list.
``repro separators``
    Draw MTTV sphere separators for a workload and print their quality
    against the k-NN ball system, next to the Bentley hyperplane cut.
``repro scaling``
    Depth/work sweep of the fast vs simple algorithm over problem sizes.
``repro dissect``
    Recursive separator tree + nested dissection fill report.
``repro trace``
    Run an algorithm under the observability layer: print the ASCII
    flame summary and per-level (depth, work) breakdown, verify the span
    tree against the cost ledger, and optionally write a Chrome-trace
    JSON with ``--trace-out``.  ``--flame FILE`` prints the flame
    summary of a previously saved trace and ``--compare A B`` diffs two
    saved traces' per-level exclusive-work breakdowns — no run needed.
``repro serve``
    Build (or ``--load-index``) a serving index, then stream a query
    workload through the micro-batching :class:`repro.serve.Batcher`
    (optionally across ``--serve-workers`` processes) and report
    p50/p95/p99 latency, QPS and cache hit rate.  With ``--mutations-file`` the
    stream is interleaved with insert/delete commits and zero-downtime
    hot swaps, reporting latency per index version.  See
    ``docs/serving.md`` and ``docs/online_index.md``.
``repro update``
    Replay an insert/delete mutation stream (a JSONL file, or a seeded
    generated one) against a :class:`repro.core.online.MutableIndex`,
    printing per-commit absorb/rebuild stats; ``--check`` gates every
    commit on exact equivalence (neighbors, tree, ledger, counters)
    against a from-scratch build.  See ``docs/online_index.md``.
``repro net serve`` / ``repro net load``
    The asyncio network front-end: serve a built index over HTTP/1.1
    JSON (``POST /v1/query``, ``POST /v1/mutate``, ``GET /healthz``,
    ``GET /metrics``) with admission control, load-adaptive batching
    windows and graceful SIGTERM drain — or run a seeded open-loop
    fixed-QPS/Poisson load sweep against a server (``--self-serve``
    spins up a loopback one) and print the p50/p99-vs-QPS table.  See
    ``docs/networking.md``.
``repro bench kernels``
    Micro-benchmark every registered kernel op on every available
    backend (numpy reference, numba when installed) and print a
    per-op ns/element table; ``--json-out`` / ``--events-out`` /
    ``--metrics-out`` export the rows through the telemetry surfaces.
    See ``docs/kernels.md``.

``--trace-out PATH`` is also accepted by ``knn`` and ``scaling``, as are
the telemetry sinks ``--events-out PATH`` (JSONL event log) and
``--metrics-out PATH`` (Prometheus text exposition) — see
``docs/observability.md``.

Entry points: ``repro`` (console script) or ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from .core import DTYPES, ENGINES, KERNEL_BACKENDS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Separator based parallel divide and conquer (Frieze-Miller-Teng, SPAA 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_args(p: argparse.ArgumentParser, help_suffix: str) -> None:
        p.add_argument("--engine", default=None, choices=list(ENGINES),
                       help=f"DnC execution engine (same output; {help_suffix}")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for --engine frontier-mp "
                            "(default: one per CPU)")
        p.add_argument("--kernels", default=None,
                       choices=["auto"] + list(KERNEL_BACKENDS),
                       help="hot-path kernel backend (bit-identical results; "
                            "auto picks numba when installed — see "
                            "docs/kernels.md)")
        p.add_argument("--dtype", default=None, choices=list(DTYPES),
                       help="point storage dtype (float32 halves memory; "
                            "distance arithmetic stays float64)")

    def add_telemetry_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--events-out", default=None, metavar="PATH",
                       help="write the run's JSONL telemetry event log here "
                            "(simulated algorithms only; implies tracing)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the run's metrics registry here in "
                            "Prometheus text exposition format")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="uniform",
                       help="workload name (uniform, ball, gaussian, clustered, grid, annulus, collinear)")
        p.add_argument("--points-file", default=None,
                       help=".npz/.npy file with an (n, d) float array (overrides --workload)")
        p.add_argument("-n", "--n", type=int, default=4096, help="number of points")
        p.add_argument("-d", "--d", type=int, default=2, help="dimension")
        p.add_argument("--seed", type=int, default=0, help="random seed")

    knn = sub.add_parser("knn", help="compute the exact k-NN graph")
    add_workload_args(knn)
    knn.add_argument("-k", "--k", type=int, default=1, help="neighbors per point")
    knn.add_argument("--algo", default="fast",
                     choices=["fast", "simple", "query", "kdtree", "grid", "brute"])
    knn.add_argument("--scan", default="unit", choices=["unit", "loglog", "log"],
                     help="SCAN cost policy of the simulated machine")
    add_engine_args(knn, "frontier batches whole tree levels, frontier-mp "
                         "runs them on worker processes — see docs/engines.md)")
    knn.add_argument("--check", action="store_true", help="verify against brute force")
    knn.add_argument("--out", default=None, help="save edges to this .npz file")
    knn.add_argument("--trace-out", default=None, metavar="PATH",
                     help="record a span trace and write Chrome-trace JSON here")
    add_telemetry_args(knn)

    seps = sub.add_parser("separators", help="separator quality report")
    add_workload_args(seps)
    seps.add_argument("-k", "--k", type=int, default=1)
    seps.add_argument("--draws", type=int, default=10)

    scaling = sub.add_parser("scaling", help="fast vs simple depth sweep")
    scaling.add_argument("--sizes", type=int, nargs="+",
                         default=[1024, 2048, 4096, 8192])
    scaling.add_argument("-d", "--d", type=int, default=2)
    scaling.add_argument("-k", "--k", type=int, default=1)
    scaling.add_argument("--seed", type=int, default=0)
    add_engine_args(scaling, "used for both algorithms)")
    scaling.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write a Chrome-trace JSON of the largest fast run")
    add_telemetry_args(scaling)

    dissect = sub.add_parser("dissect", help="separator tree + nested dissection")
    add_workload_args(dissect)
    dissect.add_argument("-k", "--k", type=int, default=2)
    dissect.add_argument("--min-size", type=int, default=32)
    dissect.add_argument("--fill", action="store_true",
                         help="also count elimination fill (slow for large n)")

    trace = sub.add_parser(
        "trace", help="run an algorithm under tracing; print + export the span tree"
    )
    trace.add_argument("target", nargs="?", default="knn", choices=["knn"],
                       help="what to trace (currently: the all-kNN computation)")
    add_workload_args(trace)
    trace.add_argument("-k", "--k", type=int, default=1, help="neighbors per point")
    trace.add_argument("--method", default="fast", choices=["fast", "simple", "query"],
                       help="algorithm to run (see repro.api.all_knn)")
    trace.add_argument("--scan", default="unit", choices=["unit", "loglog", "log"],
                       help="SCAN cost policy of the simulated machine")
    add_engine_args(trace, "the frontier engines emit per-level spans "
                           "instead of per-node spans)")
    trace.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the Chrome-trace JSON here")
    add_telemetry_args(trace)
    trace.add_argument("--flame-width", type=int, default=40,
                       help="bar width of the ASCII flame summary")
    trace.add_argument("--flame", default=None, metavar="TRACE.json",
                       help="print the ASCII flame summary of a saved trace "
                            "file and exit (no run)")
    trace.add_argument("--compare", nargs=2, default=None,
                       metavar=("A.json", "B.json"),
                       help="diff two saved traces' per-level exclusive-work "
                            "breakdowns and exit (no run)")

    serve = sub.add_parser(
        "serve", help="serve a k-NN query workload through the batching layer"
    )
    add_workload_args(serve)
    serve.add_argument("-k", "--k", type=int, default=1, help="neighbors per query")
    serve.add_argument("--kind", default="knn", choices=["knn", "covering"],
                       help="request kind: exact k-NN for new points, or the "
                            "Section-3 covering-balls query")
    serve.add_argument("--queries", type=int, default=1024, metavar="M",
                       help="number of query points to generate (same workload "
                            "family, fresh seed)")
    serve.add_argument("--queries-file", default=None, metavar="PATH",
                       help="serve queries from this saved workload file "
                            "(repro.workloads.io format or a plain .npy/.npz; "
                            "overrides --queries)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="execute as soon as this many requests are pending")
    serve.add_argument("--max-wait-ms", type=float, default=None,
                       help="also execute once the oldest pending request has "
                            "waited this long (default: batch-size only)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU result-cache entries (0 disables caching)")
    serve.add_argument("--cache-decimals", type=int, default=None,
                       help="quantize cache keys to this many decimals "
                            "(default: exact-point keys)")
    serve.add_argument("--serve-workers", type=int, default=None, metavar="N",
                       help="fan batches across N serving worker processes "
                            "(default: serve on this process)")
    serve.add_argument("--repeat", type=int, default=1,
                       help="stream the query workload this many times "
                            "(repeats exercise the cache)")
    add_engine_args(serve, "used for the offline index build)")
    serve.add_argument("--load-index", default=None, metavar="PATH",
                       help="serve from a saved ServingIndex instead of building")
    serve.add_argument("--save-index", default=None, metavar="PATH",
                       help="save the built ServingIndex here")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record serve.batch spans and write Chrome-trace "
                            "JSON here")
    serve.add_argument("--mutations-file", default=None, metavar="PATH",
                       help="JSONL insert/delete/commit stream to interleave "
                            "with the query workload: each commit hot-swaps "
                            "the serving stack to the new index version "
                            "(incompatible with --load-index)")
    serve.add_argument("--churn-threshold", type=float, default=0.05,
                       help="mutation fraction above which a commit rebuilds "
                            "from scratch instead of absorbing")
    add_telemetry_args(serve)

    update = sub.add_parser(
        "update", help="replay an insert/delete stream through the online index"
    )
    add_workload_args(update)
    update.add_argument("-k", "--k", type=int, default=1, help="neighbors per point")
    update.add_argument("--mutations-file", default=None, metavar="PATH",
                        help="JSONL mutation stream (ops: insert/delete/commit); "
                             "default: a seeded generated stream")
    update.add_argument("--commits", type=int, default=5,
                        help="generated stream: number of commits")
    update.add_argument("--batch", type=int, default=32,
                        help="generated stream: mutations per commit")
    update.add_argument("--delete-fraction", type=float, default=0.5,
                        help="generated stream: fraction of each batch that "
                             "deletes (the rest inserts)")
    update.add_argument("--churn-threshold", type=float, default=0.05,
                        help="mutation fraction above which a commit rebuilds "
                             "from scratch instead of absorbing")
    update.add_argument("--snapshot-min-size", type=int, default=None,
                        help="smallest subtree recording a replay snapshot "
                             "(default: the brute-force leaf size)")
    update.add_argument("--check", action="store_true",
                        help="verify every commit is bit-identical (neighbors, "
                             "tree, ledger, counters) to a from-scratch build")
    update.add_argument("--save-index", default=None, metavar="PATH",
                        help="save the final version's ServingIndex snapshot")
    update.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome-trace JSON of the last commit "
                             "(update.absorb / update.rebuild spans)")
    add_telemetry_args(update)

    net = sub.add_parser(
        "net", help="network front-end: serve over HTTP, or generate load"
    )
    netsub = net.add_subparsers(dest="net_command", required=True)

    def add_net_build_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--engine", default=None, choices=list(ENGINES),
                       help="DnC execution engine for the index build")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for --engine frontier-mp")
        p.add_argument("--kernels", default=None,
                       choices=["auto"] + list(KERNEL_BACKENDS),
                       help="hot-path kernel backend (bit-identical results)")

    nserve = netsub.add_parser(
        "serve", help="serve k-NN over HTTP (asyncio front-end; SIGTERM drains)"
    )
    add_workload_args(nserve)
    nserve.add_argument("-k", "--k", type=int, default=1, help="neighbors per query")
    add_net_build_args(nserve)
    nserve.add_argument("--host", default="127.0.0.1", help="listen address")
    nserve.add_argument("--port", type=int, default=8377,
                        help="listen port (0 binds an ephemeral port)")
    nserve.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch size bound per tenant")
    nserve.add_argument("--max-wait-ms", type=float, default=20.0,
                        help="batching-window ceiling in milliseconds")
    nserve.add_argument("--no-adaptive", action="store_true",
                        help="pin the batching window at the ceiling instead of "
                             "adapting it to load (see docs/networking.md)")
    nserve.add_argument("--slo-p95-ms", type=float, default=None,
                        help="p95 latency target the adaptive window steers "
                             "under (default: pure load-proportional control)")
    nserve.add_argument("--rate", type=float, default=None,
                        help="token-bucket admission rate, requests/second "
                             "(default: unlimited)")
    nserve.add_argument("--burst", type=int, default=256,
                        help="token-bucket burst capacity")
    nserve.add_argument("--max-inflight", type=int, default=1024,
                        help="bound on admitted-but-unanswered requests "
                             "(HTTP 429 past it)")
    nserve.add_argument("--deadline-ms", type=float, default=None,
                        help="default per-request latency budget (HTTP 504 "
                             "past it; default: none)")
    nserve.add_argument("--cache-size", type=int, default=1024,
                        help="LRU result-cache entries per tenant (0 disables)")
    nserve.add_argument("--cache-decimals", type=int, default=None,
                        help="quantize cache keys to this many decimals")
    nserve.add_argument("--serve-workers", type=int, default=None, metavar="N",
                        help="fan batches across N serving worker processes")
    nserve.add_argument("--drain-timeout-s", type=float, default=10.0,
                        help="upper bound on the graceful-drain wait")
    nserve.add_argument("--uvloop", default="auto",
                        choices=["auto", "uvloop", "asyncio"],
                        help="event loop: auto uses uvloop when installed "
                             "(repro[net] extra), asyncio never probes")
    nserve.add_argument("--no-trace-requests", action="store_true",
                        help="do not retain per-request timelines (responses "
                             "are byte-identical either way; /debug/* answer "
                             "empty)")
    nserve.add_argument("--recorder-capacity", type=int, default=256,
                        help="flight-recorder ring size (last-N timelines)")
    nserve.add_argument("--recorder-slow-k", type=int, default=16,
                        help="slowest-request timelines retained")
    nserve.add_argument("--slo-objective", type=float, default=0.95,
                        help="fraction of requests that must meet --slo-p95-ms "
                             "(SLO tracking needs --slo-p95-ms)")
    nserve.add_argument("--slo-error-objective", type=float, default=0.999,
                        help="availability objective for the error burn rate")
    nserve.add_argument("--window-latency-source", default="ring",
                        choices=["ring", "slo"],
                        help="p95 feed for the adaptive window: the "
                             "controller's private ring, or the SLO tracker's "
                             "rolling histogram (needs --slo-p95-ms)")

    nload = netsub.add_parser(
        "load", help="open-loop fixed-QPS load sweep against a net server"
    )
    add_workload_args(nload)
    nload.add_argument("-k", "--k", type=int, default=1, help="neighbors per query")
    add_net_build_args(nload)
    nload.add_argument("--self-serve", action="store_true",
                       help="start an in-process loopback server over the "
                            "workload and load-test it (default: target "
                            "--host/--port)")
    nload.add_argument("--host", default="127.0.0.1", help="target server host")
    nload.add_argument("--port", type=int, default=8377, help="target server port")
    nload.add_argument("--qps", type=float, nargs="+", default=[200.0, 1000.0],
                       help="target request rates to sweep")
    nload.add_argument("--duration", type=float, default=2.0,
                       help="seconds per QPS level")
    nload.add_argument("--arrivals", default="fixed", choices=["fixed", "poisson"],
                       help="arrival process (seeded; open-loop either way)")
    nload.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline carried in each query")
    nload.add_argument("--max-batch", type=int, default=256,
                       help="self-serve: micro-batch size bound")
    nload.add_argument("--max-wait-ms", type=float, default=20.0,
                       help="self-serve: batching-window ceiling")
    nload.add_argument("--modes", nargs="+", default=["adaptive"],
                       choices=["adaptive", "ceiling", "zero"],
                       help="self-serve: batching-window policies to compare "
                            "(adaptive, fixed at the ceiling, fixed at 0)")
    nload.add_argument("--out", default=None, metavar="PATH",
                       help="also write the p50/p99-vs-QPS table here")
    nload.add_argument("--debug-dump", default=None, metavar="PATH",
                       help="after the sweep, fetch the server's flight "
                            "recorder (/debug/requests, /debug/slow, "
                            "/debug/vars) and write the JSON dump here")

    ndebug = netsub.add_parser(
        "debug", help="inspect a live net server's flight recorder and vars"
    )
    ndebug.add_argument("what", nargs="?", default="vars",
                        choices=["requests", "slow", "vars"],
                        help="requests: last-N timelines; slow: slowest-K "
                             "with queued/execute breakdown; vars: one-stop "
                             "server state dump")
    ndebug.add_argument("--host", default="127.0.0.1", help="target server host")
    ndebug.add_argument("--port", type=int, default=8377, help="target server port")
    ndebug.add_argument("--limit", type=int, default=None,
                        help="cap on returned timelines (requests/slow)")
    ndebug.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw JSON instead of a table")

    bench = sub.add_parser(
        "bench", help="micro-benchmark the hot-path kernel backends"
    )
    bench.add_argument("target", nargs="?", default="kernels", choices=["kernels"],
                       help="what to benchmark (currently: the kernel op table)")
    bench.add_argument("-n", "--n", type=int, default=100_000,
                       help="elements per flat op workload")
    bench.add_argument("-d", "--d", type=int, default=2, help="dimension")
    bench.add_argument("-k", "--k", type=int, default=8,
                       help="neighbors per point in the merge/top-k workloads")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per op (best-of; one extra warmup)")
    bench.add_argument("--seed", type=int, default=0, help="workload seed")
    bench.add_argument("--backends", nargs="+", default=None,
                       choices=list(KERNEL_BACKENDS), metavar="BACKEND",
                       help="backends to measure (default: numpy, plus numba "
                            "when importable)")
    bench.add_argument("--no-descend", action="store_true",
                       help="skip the tree-descent bench (needs an index build)")
    bench.add_argument("--json-out", default=None, metavar="PATH",
                       help="also write the result rows as JSON here")
    add_telemetry_args(bench)
    return parser


def _load_points(args: argparse.Namespace) -> np.ndarray:
    from .workloads import make_workload

    if args.points_file:
        loaded = np.load(args.points_file)
        arr = loaded["points"] if hasattr(loaded, "files") else loaded
        return np.asarray(arr, dtype=np.float64)
    return make_workload(args.workload, args.n, args.d, args.seed)


def _write_trace_file(path: str, tracer, machine, **meta) -> None:
    from .obs import write_trace

    write_trace(path, tracer, total=machine.total,
                metrics=machine.metrics.to_dict(), meta=meta)
    print(f"wrote trace {path}")


def _note_telemetry(args: argparse.Namespace) -> None:
    if getattr(args, "events_out", None):
        print(f"wrote events {args.events_out}")
    if getattr(args, "metrics_out", None):
        print(f"wrote metrics {args.metrics_out}")


def _cmd_knn(args: argparse.Namespace) -> int:
    from .api import all_knn, run_traced
    from .baselines import brute_force_knn, grid_knn, kdtree_knn
    from .core import knn_graph_edges
    from .pvm import Machine, brent_time

    pts = _load_points(args)
    n = pts.shape[0]
    machine = Machine(scan=args.scan)
    simulated = args.algo in ("fast", "simple", "query", "brute")
    stats = None
    if simulated:
        if args.trace_out or args.events_out or args.metrics_out:
            result, tracer = run_traced(pts, args.k, method=args.algo,
                                        machine=machine, seed=args.seed,
                                        engine=args.engine, workers=args.workers,
                                        kernels=args.kernels, dtype=args.dtype,
                                        events_out=args.events_out,
                                        metrics_out=args.metrics_out)
            _note_telemetry(args)
        else:
            result, tracer = all_knn(pts, args.k, method=args.algo,
                                     machine=machine, seed=args.seed,
                                     engine=args.engine, workers=args.workers,
                                     kernels=args.kernels, dtype=args.dtype), None
        system, stats = result.system, result.stats
    elif args.algo == "kdtree":
        system, tracer = kdtree_knn(pts, args.k), None
    else:
        system, tracer = grid_knn(pts, args.k), None
    edges = knn_graph_edges(system)
    print(f"{args.algo}: n={n} d={pts.shape[1]} k={args.k} -> {edges.shape[0]} edges")
    if simulated:
        cost = machine.total
        print(f"simulated cost: depth={cost.depth:.0f} work={cost.work:.0f} "
              f"T_n={brent_time(cost, n):.0f}")
        for name, c in sorted(machine.sections.items()):
            print(f"  phase {name:<8} work={c.work:.0f}")
    if stats is not None and hasattr(stats, "punts"):
        print(f"punts={stats.punts} separator_draws={stats.separator_attempts}")
    if tracer is not None and args.trace_out:
        _write_trace_file(args.trace_out, tracer, machine, command="knn",
                          algo=args.algo, n=n, d=int(pts.shape[1]), k=args.k)
    if args.check:
        # check against brute force over the *stored* points, so a
        # --dtype float32 run is compared on its own coordinates
        ref = brute_force_knn(system.points, args.k)
        ok = system.same_distances(ref)
        print(f"brute-force check: {'OK' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    if args.out:
        np.savez(args.out, edges=edges, points=pts,
                 neighbor_indices=system.neighbor_indices,
                 neighbor_sq_dists=system.neighbor_sq_dists)
        print(f"saved {args.out}")
    return 0


def _cmd_separators(args: argparse.Namespace) -> int:
    from .baselines import brute_force_knn
    from .separators import MTTVSeparatorSampler, ball_split, default_delta, median_hyperplane

    pts = _load_points(args)
    balls = brute_force_knn(pts, args.k).to_ball_system()
    d = pts.shape[1]
    sampler = MTTVSeparatorSampler(pts, seed=args.seed)
    print(f"target delta = {default_delta(d, 0.05):.3f}; "
          f"sqrt-law scale n^{(d - 1) / d:.2f} = {pts.shape[0] ** ((d - 1) / d):.0f}")
    print(f"{'draw':>4} {'kind':<11} {'split':>6} {'iota':>6}")
    for i in range(args.draws):
        sep = sampler.draw()
        rep = ball_split(sep, balls)
        print(f"{i:>4} {type(sep).__name__:<11} {rep.split_ratio:>6.3f} {rep.intersection_number:>6}")
    plane = median_hyperplane(pts)
    rep = ball_split(plane, balls)
    print(f"{'--':>4} {'MedianCut':<11} {rep.split_ratio:>6.3f} {rep.intersection_number:>6}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .api import all_knn, run_traced
    from .pvm import Machine
    from .workloads import uniform_cube

    rows = []
    largest = max(args.sizes)
    telemetry = args.trace_out or args.events_out or args.metrics_out
    print(f"{'n':>8} {'fast depth':>11} {'simple depth':>13} {'ratio':>6}")
    for n in args.sizes:
        pts = uniform_cube(n, args.d, args.seed + n)
        fast_machine = Machine()
        if telemetry and n == largest:
            fast, tracer = run_traced(pts, args.k, method="fast",
                                      machine=fast_machine, seed=args.seed,
                                      engine=args.engine, workers=args.workers,
                                      kernels=args.kernels, dtype=args.dtype,
                                      events_out=args.events_out,
                                      metrics_out=args.metrics_out)
            if args.trace_out:
                _write_trace_file(args.trace_out, tracer, fast_machine,
                                  command="scaling", algo="fast", n=n,
                                  d=args.d, k=args.k)
            _note_telemetry(args)
        else:
            fast = all_knn(pts, args.k, method="fast", machine=fast_machine,
                           seed=args.seed, engine=args.engine, workers=args.workers,
                           kernels=args.kernels, dtype=args.dtype)
        simple = all_knn(pts, args.k, method="simple", machine=Machine(),
                         seed=args.seed, engine=args.engine, workers=args.workers,
                         kernels=args.kernels, dtype=args.dtype)
        rows.append((n, fast.cost.depth, simple.cost.depth))
        print(f"{n:>8} {fast.cost.depth:>11.0f} {simple.cost.depth:>13.0f} "
              f"{simple.cost.depth / fast.cost.depth:>5.2f}x")
    if len(rows) >= 2:
        from .analysis import Series, ascii_chart

        print()
        print(ascii_chart(
            [Series("fast", [r[0] for r in rows], [r[1] for r in rows]),
             Series("simple", [r[0] for r in rows], [r[2] for r in rows])],
            log_x=True, title="depth vs n", width=48, height=12,
        ))
    return 0


def _cmd_dissect(args: argparse.Namespace) -> int:
    from .baselines import brute_force_knn
    from .core import (
        build_separator_tree,
        check_separation,
        elimination_fill,
        knn_graph_edges,
        nested_dissection_order,
        separator_profile,
    )

    pts = _load_points(args)
    system = brute_force_knn(pts, args.k)
    tree = build_separator_tree(system, seed=args.seed, min_size=args.min_size)
    ok = check_separation(system, tree)
    print(f"separator tree: height {tree.height()}, separation {'OK' if ok else 'VIOLATED'}")
    for m, s in separator_profile(tree)[:8]:
        print(f"  node size {m:>6} separator {s:>5}  ({s / max(m, 1) ** 0.5:.2f} x sqrt)")
    if args.fill:
        edges = knn_graph_edges(system)
        order = nested_dissection_order(tree)
        nd = elimination_fill(edges, order)
        rnd = elimination_fill(edges, np.random.default_rng(args.seed + 1).permutation(pts.shape[0]))
        print(f"fill-in: nested dissection {nd}, random {rnd} ({rnd / max(nd, 1):.1f}x)")
    return 0 if ok else 1


def _flame_from_file(path: str, width: int) -> int:
    from .obs import load_trace

    tracer, payload = load_trace(path)
    meta = payload.get("otherData", {})
    total = meta.get("total", {})
    print(f"flame summary of {path}"
          + (f"  (depth={total['depth']:.2f}, work={total['work']:.0f})"
             if total else ""))
    print()
    print(tracer.flame_summary(width=width))
    return 0


def _compare_traces(path_a: str, path_b: str) -> int:
    from .obs import load_trace

    rows = {}
    for which, path in (("a", path_a), ("b", path_b)):
        tracer, _ = load_trace(path)
        for row in tracer.per_level_breakdown():
            rows.setdefault(int(row["level"]), {})[which] = row
    print(f"per-level exclusive work: A={path_a}  B={path_b}")
    print(f"{'level':>5} {'excl work A':>14} {'excl work B':>14} "
          f"{'delta':>12} {'B/A':>7}")
    total_a = total_b = 0.0
    for level in sorted(rows):
        a = rows[level].get("a", {}).get("exclusive_work", 0.0)
        b = rows[level].get("b", {}).get("exclusive_work", 0.0)
        total_a += a
        total_b += b
        ratio = f"{b / a:>6.2f}x" if a else "     --"
        print(f"{level:>5} {a:>14.0f} {b:>14.0f} {b - a:>+12.0f} {ratio}")
    ratio = f"{total_b / total_a:>6.2f}x" if total_a else "     --"
    print(f"{'all':>5} {total_a:>14.0f} {total_b:>14.0f} "
          f"{total_b - total_a:>+12.0f} {ratio}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .api import run_traced
    from .pvm import Machine, brent_time

    if args.flame:
        return _flame_from_file(args.flame, args.flame_width)
    if args.compare:
        return _compare_traces(args.compare[0], args.compare[1])
    pts = _load_points(args)
    n, d = pts.shape
    machine = Machine(scan=args.scan)
    result, tracer = run_traced(pts, args.k, method=args.method,
                                machine=machine, seed=args.seed,
                                engine=args.engine, workers=args.workers,
                                kernels=args.kernels, dtype=args.dtype,
                                events_out=args.events_out,
                                metrics_out=args.metrics_out)
    _note_telemetry(args)
    cost = result.cost
    root = tracer.root
    print(f"trace {args.target}: method={args.method} n={n} d={d} k={args.k}")
    print(f"spans={tracer.span_count()}  "
          f"root (depth={root.cost.depth:.2f}, work={root.cost.work:.0f})  "
          f"ledger (depth={cost.depth:.2f}, work={cost.work:.0f})  "
          f"T_n={brent_time(cost, n):.0f}")
    print("span tree vs cost ledger: EXACT (root cost and per-level work verified)")
    print()
    print(tracer.flame_summary(width=args.flame_width))
    print()
    print(f"{'level':>5} {'spans':>6} {'incl work':>12} {'excl work':>12} {'max depth':>10}")
    for row in tracer.per_level_breakdown():
        print(f"{row['level']:>5} {row['spans']:>6} {row['inclusive_work']:>12.0f} "
              f"{row['exclusive_work']:>12.0f} {row['max_depth']:>10.2f}")
    if args.trace_out:
        print()
        _write_trace_file(args.trace_out, tracer, machine, command="trace",
                          method=args.method, n=int(n), d=int(d), k=int(args.k))
    return 0


def _load_queries(args: argparse.Namespace, d: int) -> np.ndarray:
    from .workloads import load_workload, make_workload

    if args.queries_file:
        loaded = np.load(args.queries_file)
        if hasattr(loaded, "files"):  # .npz: a saved workload record
            return np.asarray(load_workload(args.queries_file).points, dtype=np.float64)
        return np.asarray(loaded, dtype=np.float64)  # bare .npy array
    # fresh seed so queries are not the data points verbatim
    return make_workload(args.workload, args.queries, d, args.seed + 10_000)


def _load_mutation_stream(path: str):
    """Parse a JSONL mutation file into per-commit op groups.

    Each line is one op: ``{"op": "insert", "points": [[...], ...]}``,
    ``{"op": "delete", "ids": [...]}`` or ``{"op": "commit"}``.  Blank
    lines and ``#`` comments are skipped; trailing ops without a final
    commit form one last group.
    """
    import json

    groups, current = [], []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                op = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {exc}")
            kind = op.get("op")
            if kind == "commit":
                groups.append(current)
                current = []
            elif kind in ("insert", "delete"):
                current.append(op)
            else:
                raise SystemExit(
                    f"{path}:{lineno}: unknown op {kind!r} "
                    "(expected insert, delete or commit)"
                )
    if current:
        groups.append(current)
    return groups


def _generated_mutation_stream(n0: int, d: int, commits: int, batch: int,
                               delete_fraction: float, seed: int):
    """A seeded insert/delete stream in the same op-group format."""
    if not 0.0 <= delete_fraction <= 1.0:
        raise SystemExit(f"--delete-fraction must be in [0, 1], got {delete_fraction}")
    rng = np.random.default_rng(seed + 20_000)
    n = n0
    groups = []
    for _ in range(commits):
        n_del = min(int(round(batch * delete_fraction)), max(0, n - 2))
        n_ins = batch - n_del
        ops = []
        if n_ins:
            ops.append({"op": "insert", "points": rng.random((n_ins, d)).tolist()})
        if n_del:
            ids = rng.choice(n, size=n_del, replace=False)
            ops.append({"op": "delete", "ids": sorted(int(i) for i in ids)})
        groups.append(ops)
        n += n_ins - n_del
    return groups


def _apply_mutation_group(index, ops) -> tuple:
    """Buffer one op group on a MutableIndex/Index; returns (inserts, deletes)."""
    ins = dels = 0
    for op in ops:
        if op["op"] == "insert":
            pts = np.asarray(op["points"], dtype=np.float64)
            index.insert(pts)
            ins += pts.shape[0]
        else:
            ids = op["ids"]
            index.delete(ids)
            dels += len(ids)
    return ins, dels


def _commit_path(info) -> str:
    return "noop" if info.noop else ("rebuild" if info.punted else "absorb")


def _cmd_update(args: argparse.Namespace) -> int:
    import time

    from .core.online import MutableIndex, equivalence_report

    pts = _load_points(args)
    t0 = time.perf_counter()
    index = MutableIndex(
        pts, args.k, seed=args.seed,
        churn_threshold=args.churn_threshold,
        snapshot_min_size=args.snapshot_min_size,
        trace_commits=bool(args.trace_out or args.events_out),
    )
    build_s = time.perf_counter() - t0
    print(f"update: built v0 n={index.n} d={index.d} k={args.k} in {build_s:.2f}s "
          f"(depth={index.cost.depth:.0f} work={index.cost.work:.0f})")
    if args.mutations_file:
        groups = _load_mutation_stream(args.mutations_file)
    else:
        groups = _generated_mutation_stream(index.n, index.d, args.commits,
                                            args.batch, args.delete_fraction,
                                            args.seed)
    print(f"{'ver':>4} {'n':>8} {'+ins':>6} {'-del':>6} {'churn':>7} "
          f"{'path':<7} {'reused':>7} {'leaves':>7} {'wall':>8}"
          + ("  check" if args.check else ""))
    failures = 0
    for ops in groups:
        ins, dels = _apply_mutation_group(index, ops)
        info = index.commit()
        line = (f"{info.version:>4} {info.n:>8} {ins:>+6} {-dels:>6} "
                f"{info.churn:>6.2%} {_commit_path(info):<7} "
                f"{info.reused_fraction:>6.1%} {info.touched_leaves:>7} "
                f"{info.wall_s:>7.2f}s")
        if args.check:
            mismatches = equivalence_report(index, index.fresh_like())
            line += "  exact" if not mismatches else "  MISMATCH"
            if mismatches:
                failures += 1
        print(line)
        if args.check and mismatches:
            for m in mismatches:
                print(f"       ! {m}")
    stats = index.update_stats
    print(f"commits={stats.commits} absorbed={stats.absorbed} punts={stats.punts} "
          f"inserted={stats.inserted} deleted={stats.deleted} "
          f"final n={index.n} version={index.version}")
    if args.save_index:
        index.snapshot().save(args.save_index)
        print(f"saved index {args.save_index}")
    if args.trace_out and index.machine.tracer is not None:
        _write_trace_file(args.trace_out, index.machine.tracer, index.machine,
                          command="update", n=index.n, d=index.d, k=int(args.k),
                          version=index.version)
    if args.events_out and index.machine.tracer is not None:
        from .obs.export import write_events_jsonl

        write_events_jsonl(args.events_out, index.machine.tracer)
    if args.metrics_out:
        # one registry: the lifetime update.* metrics next to the last
        # commit's build metrics
        from .obs import Metrics

        merged = Metrics()
        merged.merge(index.update_metrics)
        merged.merge(index.machine.metrics)
        with open(args.metrics_out, "w") as fh:
            fh.write(merged.to_prometheus())
    _note_telemetry(args)
    if failures:
        print(f"equivalence check FAILED on {failures} commit(s)")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .pvm import Machine
    from .serve import Batcher, ResultCache, ServingIndex, ServingPool

    machine = Machine()
    tracing = bool(args.trace_out or args.events_out)
    if tracing:
        machine.enable_tracing()
    if args.mutations_file and args.load_index:
        raise SystemExit("--mutations-file needs a built index; it is "
                         "incompatible with --load-index")
    if args.mutations_file and args.dtype == "float32":
        raise SystemExit("--mutations-file serves through the online index, "
                         "which is float64-only; drop --dtype float32")

    mut_groups = (_load_mutation_stream(args.mutations_file)
                  if args.mutations_file else [])
    mutable = None
    t0 = time.perf_counter()
    if args.load_index:
        index = ServingIndex.load(args.load_index)
        built = "loaded"
    elif mut_groups:
        from .core.online import MutableIndex

        pts = _load_points(args)
        mutable = MutableIndex(pts, args.k, seed=args.seed,
                               churn_threshold=args.churn_threshold)
        index = mutable.snapshot(with_structure=(args.kind == "covering"))
        built = "built (online)"
    else:
        pts = _load_points(args)
        index = ServingIndex.build(
            pts, args.k, machine=machine, seed=args.seed,
            engine=args.engine, workers=args.workers,
            kernels=args.kernels, dtype=args.dtype,
            with_structure=(args.kind == "covering"),
        )
        built = "built"
    build_s = time.perf_counter() - t0
    if args.save_index:
        index.save(args.save_index)
        print(f"saved index {args.save_index}")

    queries = _load_queries(args, index.d)
    cache = (ResultCache(args.cache_size, args.cache_decimals)
             if args.cache_size > 0 else None)
    pool = (ServingPool(index, args.serve_workers, machine=machine)
            if args.serve_workers is not None else None)
    batcher = Batcher(index, kind=args.kind, k=args.k,
                      max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                      cache=cache, machine=machine, pool=pool)

    # hot swaps spread evenly across the stream: swap j fires after
    # ceil(total * (j+1) / (groups+1)) requests have been submitted
    total = int(queries.shape[0]) * args.repeat
    swap_after = {
        -(-total * (j + 1) // (len(mut_groups) + 1)): j for j in range(len(mut_groups))
    }
    tickets = []
    ticket_versions = []
    swap_walls = []
    t1 = time.perf_counter()
    span = machine.span("serve.session", queries=int(queries.shape[0]),
                        repeat=args.repeat) if tracing else None
    if span is not None:
        span.__enter__()
    try:
        for _ in range(args.repeat):
            for row in queries:
                if len(tickets) in swap_after:
                    ops = mut_groups[swap_after[len(tickets)]]
                    ins, dels = _apply_mutation_group(mutable, ops)
                    info = mutable.commit()
                    ts = time.perf_counter()
                    batcher.swap_index(mutable.snapshot(
                        with_structure=(args.kind == "covering")))
                    swap_walls.append(time.perf_counter() - ts)
                    print(f"  swap -> v{info.version}: {_commit_path(info)} "
                          f"n={info.n} +{ins} -{dels} churn={info.churn:.2%} "
                          f"commit={info.wall_s:.2f}s swap={swap_walls[-1] * 1e3:.1f}ms")
                tickets.append(batcher.submit(row))
                ticket_versions.append(batcher.index.version)
                batcher.poll()
            # each repeat is one full pass over the workload; completing it
            # before the next makes later passes exercise the warm cache
            batcher.flush()
    finally:
        if span is not None:
            span.__exit__(None, None, None)
        batcher.close()
    wall = time.perf_counter() - t1

    lat_ms = np.array([t.latency_s for t in tickets]) * 1e3
    stats = batcher.stats
    n_req = len(tickets)
    print(f"serve: kind={args.kind} index {built} in {build_s:.2f}s "
          f"(n={index.n} d={index.d} k={args.k})")
    mode = (f"{args.serve_workers} serving workers" if args.serve_workers
            else "in-process")
    print(f"served {n_req} requests in {wall:.3f}s ({mode}); "
          f"batches={stats.batches} max_batch={args.max_batch}")
    hits, misses = stats.cache_hits, stats.cache_misses
    if cache is not None:
        total_lookups = hits + misses
        print(f"cache: {hits}/{total_lookups} hits ({hits / total_lookups:.1%})"
              if total_lookups else "cache: no lookups")
    print(f"latency p50={np.percentile(lat_ms, 50):.3f}ms "
          f"p95={np.percentile(lat_ms, 95):.3f}ms "
          f"p99={np.percentile(lat_ms, 99):.3f}ms "
          f"max={lat_ms.max():.3f}ms   QPS={n_req / wall:,.0f}")
    hist = stats.request_ms
    if hist.count:
        # the server-side histogram next to the exact client-side numbers:
        # bucketed, so quantiles are interpolated within log-linear buckets
        print(f"server-side request_ms (histogram, {hist.count} obs): "
              f"p50={hist.percentile(50):.3f}ms "
              f"p95={hist.percentile(95):.3f}ms "
              f"p99={hist.percentile(99):.3f}ms")
    if mut_groups:
        unfulfilled = sum(1 for t in tickets if not t.done)
        versions = np.array(ticket_versions)
        print(f"hot swaps: {stats.swaps} "
              f"(max swap stall {max(swap_walls) * 1e3:.1f}ms); "
              f"unfulfilled tickets: {unfulfilled}")
        print(f"{'version':>8} {'requests':>9} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}")
        for v in np.unique(versions):
            sel = lat_ms[versions == v]
            print(f"{'v%d' % v:>8} {sel.size:>9} "
                  f"{np.percentile(sel, 50):>8.3f} {np.percentile(sel, 95):>8.3f} "
                  f"{np.percentile(sel, 99):>8.3f}")
        if unfulfilled:
            return 1
    if args.trace_out:
        _write_trace_file(args.trace_out, machine.tracer, machine,
                          command="serve", kind=args.kind, n=index.n,
                          d=index.d, k=int(args.k))
    if args.events_out:
        from .obs.export import write_events_jsonl

        write_events_jsonl(args.events_out, machine.tracer)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(machine.metrics.to_prometheus())
    _note_telemetry(args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .kernels import numba_available
    from .kernels.bench import format_table, run_kernel_bench
    from .pvm import Machine

    machine = Machine()
    if args.events_out:
        machine.enable_tracing()
    rows = run_kernel_bench(
        n=args.n, d=args.d, k=args.k, repeats=args.repeats,
        backends=args.backends, seed=args.seed, machine=machine,
        include_descend=not args.no_descend,
    )
    print(f"kernel micro-bench: n={args.n} d={args.d} k={args.k} "
          f"repeats={args.repeats} "
          f"numba={'available' if numba_available() else 'not installed'}")
    print(format_table(rows))
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(rows, fh, indent=2)
        print(f"wrote json {args.json_out}")
    if args.events_out:
        from .obs.export import write_events_jsonl

        write_events_jsonl(args.events_out, machine.tracer)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(machine.metrics.to_prometheus())
    _note_telemetry(args)
    return 0


def _net_config_from_args(args: argparse.Namespace):
    from .net import NetConfig

    return NetConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, adaptive=not args.no_adaptive,
        slo_p95_ms=args.slo_p95_ms, rate=args.rate, burst=args.burst,
        max_inflight=args.max_inflight, deadline_ms=args.deadline_ms,
        cache_size=args.cache_size, cache_decimals=args.cache_decimals,
        serve_workers=args.serve_workers,
        drain_timeout_s=args.drain_timeout_s, uvloop=args.uvloop,
        trace_requests=not args.no_trace_requests,
        recorder_capacity=args.recorder_capacity,
        recorder_slow_k=args.recorder_slow_k,
        slo_objective=args.slo_objective,
        slo_error_objective=args.slo_error_objective,
        window_latency_source=args.window_latency_source,
    )


def _cmd_net_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .api import net_serve
    from .net import install_event_loop, install_signal_handlers

    pts = _load_points(args)
    cfg = _net_config_from_args(args)
    server = net_serve(pts, args.k, net=cfg, seed=args.seed,
                       engine=args.engine, workers=args.workers,
                       kernels=args.kernels)
    loop_name = install_event_loop(cfg.uvloop)

    async def _run() -> dict:
        host, port = await server.start()
        uninstall = install_signal_handlers(server)
        tenant = server.tenants.get()
        print(f"net: serving knn (n={tenant.index.n} d={tenant.d} "
              f"k={tenant.k}) on http://{host}:{port} loop={loop_name} "
              f"adaptive={cfg.adaptive} max_batch={cfg.max_batch} "
              f"max_wait_ms={cfg.max_wait_ms:g}", flush=True)
        print("net: POST /v1/query /v1/mutate, GET /healthz /metrics; "
              "SIGTERM/SIGINT drains gracefully", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass  # drain closed the listener out from under serve_forever
        finally:
            uninstall()
        return await server.stop()  # idempotent; returns the drain summary

    summary = asyncio.run(_run())
    print(f"net: drained clean={summary['clean']} "
          f"inflight_remaining={summary['inflight_remaining']} "
          f"flushed={summary['flushed']}")
    rq = summary.get("request_ms")
    if rq:
        print(f"net: server-side request_ms ({rq['count']} obs): "
              f"p50={rq['p50']:.3f}ms p95={rq['p95']:.3f}ms "
              f"p99={rq['p99']:.3f}ms max={rq['max']:.3f}ms")
    for name, slo in sorted(summary.get("slo", {}).items()):
        w5 = slo["windows"].get("5m", {})
        p95 = slo["p95_ms"]
        att = w5.get("attainment")
        burn = w5.get("burn_rate")
        print(f"net: slo[{name}] target={slo['target_ms']:g}ms "
              f"p95={'n/a' if p95 is None else '%.3fms' % p95} "
              f"attainment_5m={'n/a' if att is None else '%.4f' % att} "
              f"burn_5m={'n/a' if burn is None else '%.2f' % burn} "
              f"errors={slo['errors']}/{slo['total']}")
    return 0 if summary["clean"] else 1


def _timeline_table(rows) -> str:
    """Fixed-width rendering of flight-recorder timeline dicts."""
    lines = [
        f"{'request id':<28} {'kind':<7} {'tenant':<10} {'st':>3} "
        f"{'total ms':>9} {'queued':>8} {'exec':>8} {'batch':>6} "
        f"{'bsz':>4} {'ver':>4} {'hit':>3}"
    ]
    for t in rows:
        lines.append(
            f"{str(t.get('request_id', ''))[:28]:<28} "
            f"{str(t.get('kind', '')):<7} "
            f"{str(t.get('tenant') or '-')[:10]:<10} "
            f"{t.get('status') or 0:>3} "
            f"{t.get('total_ms', 0.0):>9.2f} {t.get('queued_ms', 0.0):>8.2f} "
            f"{t.get('execute_ms', 0.0):>8.2f} "
            f"{t.get('batch_id') if t.get('batch_id') is not None else '-':>6} "
            f"{t.get('batch_size') if t.get('batch_size') is not None else '-':>4} "
            f"{t.get('index_version') if t.get('index_version') is not None else '-':>4} "
            f"{'y' if t.get('cache_hit') else 'n':>3}"
        )
    return "\n".join(lines)


def _fetch_debug_dump(host: str, port: int) -> dict:
    """One JSON blob from all three ``/debug/*`` endpoints of a server."""
    import asyncio

    from .net import http_request

    async def _all() -> dict:
        out = {}
        for name, path in (("requests", "/debug/requests"),
                           ("slow", "/debug/slow"),
                           ("vars", "/debug/vars")):
            status, payload, _ = await http_request(
                host, port, path, method="GET")
            out[name] = payload if status == 200 else {"http_status": status}
        return out

    return asyncio.run(_all())


def _cmd_net_debug(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .net import http_request

    path = {"requests": "/debug/requests", "slow": "/debug/slow",
            "vars": "/debug/vars"}[args.what]
    if args.limit is not None and args.what != "vars":
        path += f"?limit={args.limit}"
    try:
        status, payload, text = asyncio.run(
            http_request(args.host, args.port, path, method="GET"))
    except (ConnectionError, OSError) as exc:
        print(f"net debug: cannot reach {args.host}:{args.port}: {exc}")
        return 1
    if status != 200:
        print(f"GET {path} -> HTTP {status}: {text.strip()}")
        return 1
    if args.as_json or args.what == "vars":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    key = "requests" if args.what == "requests" else "slowest"
    rows = payload.get(key, [])
    print(f"net debug {args.what}: tracing={payload.get('tracing')} "
          f"recorded={payload.get('recorded')} showing={len(rows)}")
    if rows:
        print(_timeline_table(rows))
    return 0


def _cmd_net_load(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .net import format_table, sweep

    pts = _load_points(args)
    sections = []
    debug_dumps = {}

    def _sweep(host: str, port: int, title: str) -> None:
        results = asyncio.run(sweep(
            host, port, qps_list=args.qps, duration_s=args.duration,
            points=pts, k=args.k, deadline_ms=args.deadline_ms,
            arrivals=args.arrivals, seed=args.seed,
        ))
        sections.append(format_table(results, title=title))

    if args.self_serve:
        from .api import net_serve
        from .net import NetConfig, ServerThread

        # one fresh loopback server per window policy so the sweeps are
        # independent; port 0 keeps parallel CI jobs from colliding
        policies = {
            "adaptive": dict(adaptive=True, max_wait_ms=args.max_wait_ms),
            "ceiling": dict(adaptive=False, max_wait_ms=args.max_wait_ms),
            "zero": dict(adaptive=False, max_wait_ms=0.0),
        }
        for mode in args.modes:
            cfg = NetConfig(port=0, max_batch=args.max_batch,
                            **policies[mode])
            server = net_serve(pts, args.k, net=cfg, seed=args.seed,
                               engine=args.engine, workers=args.workers,
                               kernels=args.kernels)
            with ServerThread(server) as st:
                _sweep("127.0.0.1", st.port,
                       f"net load  window={mode} (self-serve n={pts.shape[0]:,} "
                       f"k={args.k} arrivals={args.arrivals} "
                       f"duration={args.duration:g}s/level)")
                # grab the flight recorder before the drain tears it down
                if args.debug_dump:
                    debug_dumps[mode] = _fetch_debug_dump("127.0.0.1", st.port)
    else:
        _sweep(args.host, args.port,
               f"net load  {args.host}:{args.port} "
               f"(arrivals={args.arrivals} duration={args.duration:g}s/level)")
        if args.debug_dump:
            debug_dumps["target"] = _fetch_debug_dump(args.host, args.port)

    text = "\n\n".join(sections)
    print(text)
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    if args.debug_dump:
        import json

        out_dir = os.path.dirname(os.path.abspath(args.debug_dump))
        os.makedirs(out_dir, exist_ok=True)
        with open(args.debug_dump, "w") as fh:
            json.dump(debug_dumps, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote flight-recorder dump {args.debug_dump}")
    return 0


def _cmd_net(args: argparse.Namespace) -> int:
    return {"serve": _cmd_net_serve, "load": _cmd_net_load,
            "debug": _cmd_net_debug}[args.net_command](args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "knn": _cmd_knn,
        "separators": _cmd_separators,
        "scaling": _cmd_scaling,
        "dissect": _cmd_dissect,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "update": _cmd_update,
        "net": _cmd_net,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
