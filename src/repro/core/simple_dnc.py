"""Simple Parallel Divide-and-Conquer — the O(log^2 n) algorithm (Section 5).

The stepping-stone algorithm (and, with its hyperplane cuts, a faithful
stand-in for the Bentley / Cole–Goodrich baseline the paper compares
against): split the points in half with a median hyperplane, recurse in
parallel, then correct every ball that intersects the cut by building a
neighborhood query structure over the straddlers and querying the opposite
side's points — an O(log m)-depth correction at *every* level, which is
where the second log factor comes from (Lemma 5.1).

The correction is exact for the same reason as in the fast algorithm
(Lemma 6.1 does not care whether the separator is a sphere or a plane);
the difference is purely cost: a hyperplane can be crossed by Omega(n)
k-NN balls (experiment E8), so there is no fast marching path to take.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..geometry.balls import BallSystem
from .. import kernels
from ..geometry.points import as_points
from ..obs.metrics import MetricsView
from ..pvm.cost import Cost
from ..pvm.machine import Machine
from ..separators.hyperplane import find_median_hyperplane
from ..util.recursion import estimated_tree_levels, recursion_guard
from ..util.rng import path_rng, seed_sequence_root
from .config import CommonConfig, supports_renamed_fields
from .correction import apply_candidate_pairs, query_correction_pairs
from .neighborhood import KNeighborhoodSystem, brute_force_neighbors
from .partition_tree import PartitionNode
from .query import QueryConfig

# Depth-bound ratio for the recursion guard: median cuts are balanced in
# general position, but tie-pushing under heavy duplication can leave most
# of a segment on one side; 0.9 covers that regime with a still-log bound.
_GUARD_SPLIT_RATIO = 0.9

__all__ = ["SimpleDnCConfig", "SimpleDnCStats", "SimpleDnCResult", "simple_parallel_dnc"]


@supports_renamed_fields
@dataclass(frozen=True)
class SimpleDnCConfig(CommonConfig):
    """Parameters of the simple algorithm (see :class:`FastDnCConfig` for
    the shared meanings of ``base_case_size``/``base_factor``;
    ``base_case_size``, ``seed`` and ``base_size`` come from
    :class:`~repro.core.config.CommonConfig`, and the deprecated ``m0``
    alias still works)."""

    base_factor: int = 4
    rotate_axes: bool = True
    query: QueryConfig = field(default_factory=lambda: QueryConfig())


class SimpleDnCStats(MetricsView):
    """Event counts of one run.

    A thin view over a :class:`~repro.obs.metrics.Metrics` registry (keys
    namespaced ``simple.*``); the attribute surface — ``nodes``,
    ``base_cases``, ``degenerate_cuts``, ``straddler_fraction`` — is
    unchanged.
    """

    _NS = "simple"
    _COUNTER_FIELDS = ("nodes", "base_cases", "degenerate_cuts")
    _SERIES_FIELDS = ("straddler_fraction",)


@dataclass
class SimpleDnCResult:
    """Exact neighbor lists, the cut tree, statistics, and the cost ledger."""

    system: KNeighborhoodSystem
    tree: PartitionNode
    stats: SimpleDnCStats
    machine: Machine

    @property
    def cost(self) -> Cost:
        return self.machine.total


def simple_parallel_dnc(
    points: np.ndarray,
    k: int = 1,
    *,
    machine: Optional[Machine] = None,
    seed: object = None,
    config: SimpleDnCConfig = SimpleDnCConfig(),
) -> SimpleDnCResult:
    """Exact k-neighborhood system via hyperplane divide and conquer.

    Same contract as
    :func:`~repro.core.fast_dnc.parallel_nearest_neighborhood`; only the
    measured cost profile differs (depth Theta(log^2 n), experiment E4).
    """
    pts = as_points(points, min_points=1, dtype=config.np_dtype())
    n, d = pts.shape
    if not 1 <= k < max(2, n):
        raise ValueError(f"k must satisfy 1 <= k < n, got k={k}, n={n}")
    if machine is None:
        machine = Machine()
    root_ss = seed_sequence_root(seed if seed is not None else config.seed)
    stats = SimpleDnCStats(metrics=machine.metrics)
    nbr_idx = np.full((n, k), -1, dtype=np.int64)
    nbr_sq = np.full((n, k), np.inf)
    base = config.base_size(k)

    if config.engine in ("frontier", "frontier-mp"):
        if config.engine == "frontier":
            from .frontier import run_simple_frontier as run_frontier
        else:
            from ..parallel.engine import run_simple_frontier_mp as run_frontier

        with kernels.use_backend(config.kernels):
            tree = run_frontier(
                pts, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
            )
        system = KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
        return SimpleDnCResult(system=system, tree=tree, stats=stats, machine=machine)

    def brute(ids: np.ndarray) -> None:
        m = ids.shape[0]
        stats.base_cases += 1
        machine.metrics.observe("simple.base_case_sizes", m)
        with machine.section("base"):
            machine.charge(Cost(float(m), float(m) * float(m)))
        brute_force_neighbors(pts, ids, k, nbr_idx, nbr_sq)

    select_depth = 1.0 if k == 1 else 1.0 + math.log2(math.log2(k) + 2.0)

    def correct(
        node: PartitionNode,
        in_ids: np.ndarray,
        ex_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        sep = node.separator
        assert sep is not None
        m = node.size
        for straddle_side, opposite in ((in_ids, ex_ids), (ex_ids, in_ids)):
            if straddle_side.shape[0] == 0 or opposite.shape[0] == 0:
                continue
            radii = np.sqrt(nbr_sq[straddle_side, -1])
            cls = sep.classify_balls(pts[straddle_side], radii)
            machine.charge(machine.ewise_cost(straddle_side.shape[0], 2.0))
            straddlers = straddle_side[cls == 0]
            stats.straddler_fraction.append((m, int(straddlers.shape[0])))
            if straddlers.shape[0] == 0:
                continue
            system = BallSystem(pts[straddlers], np.sqrt(nbr_sq[straddlers, -1]))
            ball_rows, point_ids = query_correction_pairs(
                system, pts[opposite], opposite, machine, rng, config.query
            )
            machine.charge(
                Cost(select_depth, float(max(1, point_ids.shape[0] * (k + 1))))
            )
            apply_candidate_pairs(
                pts, nbr_idx, nbr_sq, straddlers, ball_rows, point_ids, k
            )

    def solve(ids: np.ndarray, depth_level: int, path: tuple) -> PartitionNode:
        with machine.span("simple.node", level=depth_level, m=int(ids.shape[0])):
            return _solve(ids, depth_level, path)

    def _solve(ids: np.ndarray, depth_level: int, path: tuple) -> PartitionNode:
        m = ids.shape[0]
        stats.nodes += 1
        if m <= base:
            brute(ids)
            return PartitionNode(indices=ids)
        axis = depth_level % d if config.rotate_axes else None
        try:
            with machine.section("divide"):
                plane, _ = find_median_hyperplane(pts[ids], machine, axis=axis)
        except ValueError:
            try:
                with machine.section("divide"):
                    plane, _ = find_median_hyperplane(pts[ids], machine, axis=None)
            except ValueError:
                stats.degenerate_cuts += 1
                brute(ids)
                return PartitionNode(indices=ids)
        side = plane.side_of_points(pts[ids])
        machine.charge(machine.ewise_cost(m, 2.0))
        machine.charge(machine.scan_cost(m).then(machine.permute_cost(m)))
        in_ids = ids[side < 0]
        ex_ids = ids[side > 0]
        if in_ids.shape[0] == 0 or ex_ids.shape[0] == 0:
            stats.degenerate_cuts += 1
            brute(ids)
            return PartitionNode(indices=ids)
        children: List[Optional[PartitionNode]] = [None, None]
        with machine.parallel() as par:
            with par.branch():
                children[0] = solve(in_ids, depth_level + 1, path + (0,))
            with par.branch():
                children[1] = solve(ex_ids, depth_level + 1, path + (1,))
        node = PartitionNode(indices=ids, separator=plane, left=children[0], right=children[1])
        with machine.section("correct"):
            correct(node, in_ids, ex_ids, path_rng(root_ss, path))
        return node

    levels = estimated_tree_levels(n, base, _GUARD_SPLIT_RATIO)
    with kernels.use_backend(config.kernels), recursion_guard(levels):
        tree = solve(np.arange(n, dtype=np.int64), 0, ())
    system = KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
    return SimpleDnCResult(system=system, tree=tree, stats=stats, machine=machine)
