"""Shared configuration surface for the algorithm config dataclasses.

Historically the three config dataclasses (:class:`FastDnCConfig`,
:class:`SimpleDnCConfig`, :class:`QueryConfig`) grew inconsistent knobs:
the brute-force/leaf threshold was called ``m0`` everywhere but meant two
different things, randomness was threaded through per-function ``seed``
arguments only, and the separator-budget helpers (``mu``,
``iota_budget``) were duplicated.  :class:`CommonConfig` unifies them:

- ``base_case_size`` is the canonical name for the subproblem size at or
  below which a node is solved exhaustively / becomes a leaf (the old
  ``m0``).  The old name still works — both as a constructor keyword and
  as a read property — with a :class:`DeprecationWarning`.
- ``seed`` is a config-level default RNG seed.  Algorithm entry points
  still accept an explicit ``seed=``; when it is omitted (``None``), the
  config's seed is used, so a config object fully determines a run.
- ``mu`` / ``iota_budget`` are defined once, with the ``k``-aware budget
  (``k^{1/d}``-scaled) that the fast algorithm needs; passing ``k=1``
  reproduces the query structure's classic budget.

Renamed-field compatibility is applied with the
:func:`supports_renamed_fields` class decorator, which rewrites legacy
constructor keywords (warning once per call site) before the frozen
dataclass ``__init__`` runs.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..kernels.registry import KERNEL_BACKENDS, KERNEL_REGISTRY, KernelSpec
from ..util.rng import as_generator

__all__ = [
    "CommonConfig",
    "supports_renamed_fields",
    "RENAMED_CONFIG_FIELDS",
    "EngineSpec",
    "ENGINE_REGISTRY",
    "ENGINES",
    "KernelSpec",
    "KERNEL_REGISTRY",
    "KERNEL_BACKENDS",
    "DTYPES",
]

#: Storage dtypes accepted by :attr:`CommonConfig.dtype`.
DTYPES = ("float64", "float32")

# old constructor keyword / attribute -> canonical dataclass field
RENAMED_CONFIG_FIELDS = {"m0": "base_case_size"}


@dataclass(frozen=True)
class EngineSpec:
    """One entry of the engine registry.

    ``summary`` is the one-line help text surfaced by the CLI;
    ``parallel`` marks engines that execute on OS worker processes (and
    therefore honor :attr:`CommonConfig.workers`).
    """

    name: str
    summary: str
    parallel: bool = False


#: The single source of truth for execution engines.  CLI ``--engine``
#: choices, :class:`CommonConfig` validation and ``repro.ENGINES`` all
#: derive from this table, so a new engine registers in exactly one place.
ENGINE_REGISTRY = {
    "recursive": EngineSpec(
        "recursive",
        "node-at-a-time Python recursion (the reference execution)",
    ),
    "frontier": EngineSpec(
        "frontier",
        "level-synchronous batched numpy passes (same output, lower wall-clock)",
    ),
    "frontier-mp": EngineSpec(
        "frontier-mp",
        "frontier batches fanned out to OS worker processes over shared memory",
        parallel=True,
    ),
}

#: Execution engines for the divide-and-conquer runners, in registry
#: order.  All engines produce identical neighborhoods and ledgers on a
#: shared seed; they differ only in host wall-clock execution.
ENGINES = tuple(ENGINE_REGISTRY)


def supports_renamed_fields(cls):
    """Class decorator: accept legacy constructor keywords with a warning.

    Wraps the (data)class ``__init__`` so that deprecated keyword names in
    :data:`RENAMED_CONFIG_FIELDS` are rewritten to their canonical field,
    emitting a :class:`DeprecationWarning`.  Passing both the old and the
    new name is a ``TypeError``.  ``functools.wraps`` keeps the original
    signature visible to :func:`inspect.signature`.
    """
    orig_init = cls.__init__

    @functools.wraps(orig_init)
    def __init__(self, *args, **kwargs):
        for old, new in RENAMED_CONFIG_FIELDS.items():
            if old in kwargs:
                if new in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got both deprecated {old!r} and {new!r}"
                    )
                warnings.warn(
                    f"{cls.__name__}({old}=...) is deprecated; use {new}=...",
                    DeprecationWarning,
                    stacklevel=2,
                )
                kwargs[new] = kwargs.pop(old)
        orig_init(self, *args, **kwargs)

    cls.__init__ = __init__
    return cls


@dataclass(frozen=True)
class CommonConfig:
    """Mixin of the knobs every algorithm config shares.

    Parameters
    ----------
    base_case_size:
        Subproblems of at most this many points are solved exhaustively
        (divide and conquer) or become leaves (query structure).  The
        deprecated alias ``m0`` is still accepted.
    seed:
        Default RNG seed (or ``numpy`` Generator) used when the algorithm
        entry point is not given an explicit ``seed=``.  ``None`` means
        fresh OS entropy, as before.
    engine:
        How the divide-and-conquer recursion is executed: any name in
        :data:`ENGINE_REGISTRY` — ``"recursive"`` (node-at-a-time Python
        recursion), ``"frontier"`` (level-synchronous batched passes) or
        ``"frontier-mp"`` (frontier batches executed on OS worker
        processes over shared memory).  All engines produce identical
        results on a shared seed.
    workers:
        Worker-process count for parallel engines (``frontier-mp``).
        ``None`` means one worker per available CPU; serial engines
        ignore it.
    events_out:
        Default path for the JSONL telemetry event log written by
        :func:`repro.api.run_traced` (and the ``--events-out`` CLI
        flag).  ``None`` (the default) writes nothing.
    metrics_out:
        Default path for the Prometheus text exposition of the run's
        metrics registry written by :func:`repro.api.run_traced` (and
        the ``--metrics-out`` CLI flag).  ``None`` writes nothing.
    kernels:
        Hot-path kernel backend: any name in
        :data:`~repro.kernels.registry.KERNEL_REGISTRY` (``"numpy"``,
        ``"numba"``) or ``"auto"`` (numba when importable, else numpy;
        the ``REPRO_KERNELS`` environment variable overrides ``auto``).
        Every backend is bit-identical, so this is purely a wall-clock
        knob; requesting ``numba`` without it installed warns once and
        falls back.  See ``docs/kernels.md``.
    dtype:
        Point storage dtype: ``"float64"`` (default) or ``"float32"``
        (half the memory/bandwidth; coordinates are stored in float32
        but all distance arithmetic still runs in float64 on the
        upcast values, so results stay exact for the stored
        coordinates).
    """

    base_case_size: int = 64
    seed: object = None
    engine: str = "recursive"
    workers: Optional[int] = None
    events_out: Optional[str] = None
    metrics_out: Optional[str] = None
    kernels: str = "auto"
    dtype: str = "float64"

    def __post_init__(self):
        if self.engine not in ENGINE_REGISTRY:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.kernels != "auto" and self.kernels not in KERNEL_REGISTRY:
            raise ValueError(
                f"unknown kernel backend {self.kernels!r}; expected one of "
                f"{KERNEL_BACKENDS} or 'auto'"
            )
        if self.dtype not in DTYPES:
            raise ValueError(
                f"unknown dtype {self.dtype!r}; expected one of {DTYPES}"
            )

    # -- deprecated aliases ----------------------------------------------

    @property
    def m0(self) -> int:
        """Deprecated alias for :attr:`base_case_size` (warns on read)."""
        warnings.warn(
            f"{type(self).__name__}.m0 is deprecated; use base_case_size",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.base_case_size

    # -- shared derived quantities ---------------------------------------

    def rng(self, seed: object = None) -> np.random.Generator:
        """Resolve an RNG: explicit ``seed`` wins, else the config's seed."""
        return as_generator(seed if seed is not None else self.seed)

    def mu(self, d: int) -> float:
        """Separator-theorem exponent ``(d-1)/d`` plus the config's slack."""
        slack = getattr(self, "mu_slack", 0.10)
        return min(0.98, (d - 1) / d + slack)

    def iota_budget(self, m: int, d: int, k: int = 1) -> float:
        """Straddler budget ``iota_factor * k^{1/d} * m^mu``.

        The separator theorem's bound is ``O(k^{1/d} n^{(d-1)/d})``; the
        budget must carry the ``k`` factor or large-``k`` runs punt
        spuriously.  ``k=1`` reproduces the query structure's budget.
        """
        factor = getattr(self, "iota_factor", 3.0)
        return max(4.0, factor * k ** (1.0 / d) * m ** self.mu(d))

    def base_size(self, k: int) -> int:
        """Brute-force threshold ``max(base_case_size, base_factor*(k+1))``.

        Large enough that no recursive subproblem ever has fewer than
        ``k+1`` points on both sides of a split.
        """
        factor = getattr(self, "base_factor", 1)
        return max(self.base_case_size, factor * (k + 1))

    def np_dtype(self) -> np.dtype:
        """The numpy dtype of :attr:`dtype` (point storage dtype)."""
        return np.dtype(np.float32 if self.dtype == "float32" else np.float64)
