"""Online index maintenance: insert/delete absorption with versioned snapshots.

The offline algorithms build once; this module keeps an index *alive* under
a stream of point insertions and deletions.  A :class:`MutableIndex` buffers
mutations and, on :meth:`MutableIndex.commit`, produces the next **version**
of the index — new point array, partition tree, and exact k-neighbor lists —
either by *absorbing* the changes into the previous version's tree (rebuild
only the subtrees whose point subsets changed, replay the rest) or, past a
configurable churn threshold, by *punting* to a full rebuild.

The contract is the same bit-identical discipline the execution engines
live by: **every committed version equals a from-scratch build of the same
point set** — byte-equal neighbor arrays, an identical partition tree, an
exactly equal (depth, work) ledger, equal counters and metrics.  Two design
choices make that possible:

1. **Content-addressed randomness.**  The online build profile derives every
   random decision from the *values* of the points involved, never from
   array positions or subset sizes.  Separator candidates are drawn from a
   rendezvous sample — the ``s`` points of the subset with the smallest
   per-point content hashes — with a generator seeded by the sample's own
   hashes, so a node whose subset is unchanged re-derives the identical
   subtree, and a node whose subset changed *slightly* usually re-derives
   the identical separator (the sample rarely moves), confining the rebuild
   to the paths the mutations actually touch.  The correction path's punt
   randomness is likewise seeded from the subset hash.

2. **Recorded subtrees.**  The recording build captures, per sufficiently
   large node, everything a replay needs: the subtree's post-subtree
   neighbor rows, its exact composed :class:`~repro.pvm.cost.Cost` (via
   :meth:`~repro.pvm.machine.Machine.measure`), its section events, counter
   and metric deltas.  Absorbing a commit replays reused subtrees from the
   record — one ``charge`` instead of thousands — and re-runs the paper's
   straddler-correction machinery (:meth:`_Runner.correct`) at every
   recomputed ancestor, exactly as a fresh build would.

Versions are copy-on-write: each commit allocates fresh neighbor arrays and
fresh nodes along the recomputed spine, *sharing* unchanged subtrees with
the previous version (insert-only commits share node objects outright;
commits with deletions clone reused subtrees with monotonically remapped
ids, which preserves every (distance, index) tie-break).  Snapshots taken
from older versions therefore stay valid and untouched forever.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from ..obs.metrics import Metrics, MetricsView
from ..pvm.cost import Cost, ZERO
from ..pvm.machine import Machine
from ..separators.mttv import MTTVSeparatorSampler
from ..separators.quality import default_delta, is_good_point_split
from ..separators.unit_time import _ATTEMPT_SERIAL_COST, SeparatorFailure
from ..util.recursion import estimated_tree_levels, recursion_guard
from ..util.rng import seed_sequence_root
from .fast_dnc import FastDnCConfig, FastDnCStats, _Runner
from .neighborhood import KNeighborhoodSystem
from .partition_tree import PartitionNode

__all__ = [
    "CommitInfo",
    "MutableIndex",
    "UpdateStats",
    "equivalence_report",
    "online_sample_size",
    "tree_signature",
]

#: Key under which a node's replay record lives in ``PartitionNode.meta``.
_REC_KEY = "online_record"

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def online_sample_size(d: int) -> int:
    """Default separator sample size of the online build profile.

    An eighth of the offline :func:`~repro.separators.mttv.default_sample_size`:
    the probability that a mutation displaces a node's rendezvous sample —
    and thereby redraws its separator, scrambling the subtree below — is
    ``s/m`` per mutated point, so a smaller sample is directly a higher
    subtree-reuse rate.  Split *quality* is unaffected (every candidate
    still passes :func:`~repro.separators.quality.is_good_point_split`
    against the full subset); the smaller centerpoint sample only costs
    extra retry attempts, which stay O(1) in expectation (measured ~1.04
    per node at d=2 versus ~1.02 with the offline sample).
    """
    return max(d + 3, (d + 2) ** 2)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 arrays (wrapping)."""
    with np.errstate(over="ignore"):
        x = np.uint64(x) if np.isscalar(x) else x
        x = x ^ (x >> np.uint64(30))
        x = x * _MIX_1
        x = x ^ (x >> np.uint64(27))
        x = x * _MIX_2
        x = x ^ (x >> np.uint64(31))
    return x


def _point_keys(points: np.ndarray, salt: int) -> np.ndarray:
    """Per-point 64-bit content hashes: a pure function of coordinates.

    ``-0.0`` is folded into ``+0.0`` first so value-equal points always
    share a key.  The key depends on the point's *values* only — never on
    its row index — which is what makes the online build's random choices
    survive compaction and re-numbering.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64) + 0.0
    raw = pts.view(np.uint64)
    acc = np.full(pts.shape[0], np.uint64(salt) ^ _GOLDEN, dtype=np.uint64)
    for j in range(pts.shape[1]):
        acc = _mix64(acc ^ raw[:, j])
    return _mix64(acc)


def _fold_keys(keys: np.ndarray) -> int:
    """Order-sensitive fold of a key sequence into one 64-bit value."""
    if keys.shape[0] == 0:
        return 0
    ranks = np.arange(keys.shape[0], dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = _mix64(keys ^ _mix64(ranks * _GOLDEN))
    return int(np.bitwise_xor.reduce(mixed))


def _remap_rows(rows: np.ndarray, idmap: np.ndarray) -> np.ndarray:
    """Remap neighbor-id rows through ``idmap``, preserving ``-1`` padding."""
    out = rows.copy()
    real = rows >= 0
    out[real] = idmap[rows[real]]
    return out


class _NodeRecord:
    """Everything needed to replay one recorded subtree bit-identically."""

    __slots__ = (
        "cost",
        "section_events",
        "counters",
        "metric_counters",
        "metric_gauges",
        "metric_series",
        "nbr_idx",
        "nbr_sq",
    )

    def __init__(
        self,
        cost: Cost,
        section_events: List[tuple],
        counters: Dict[str, int],
        metric_counters: Dict[str, float],
        metric_gauges: Dict[str, float],
        metric_series: Dict[str, list],
        nbr_idx: np.ndarray,
        nbr_sq: np.ndarray,
    ) -> None:
        self.cost = cost
        self.section_events = section_events
        self.counters = counters
        self.metric_counters = metric_counters
        self.metric_gauges = metric_gauges
        self.metric_series = metric_series
        self.nbr_idx = nbr_idx
        self.nbr_sq = nbr_sq

    def remapped(self, idmap: np.ndarray) -> "_NodeRecord":
        """A copy with neighbor ids pushed through ``idmap`` (COW clones)."""
        return _NodeRecord(
            self.cost,
            self.section_events,
            self.counters,
            self.metric_counters,
            self.metric_gauges,
            self.metric_series,
            _remap_rows(self.nbr_idx, idmap),
            self.nbr_sq,
        )


class _OnlineRunner(_Runner):
    """The recording/absorbing variant of the recursive fast-DnC runner.

    Differs from :class:`~repro.core.fast_dnc._Runner` in exactly two ways:

    - randomness is content-addressed (see module docstring) instead of
      path-addressed, so the build is a pure function of the point values
      (plus the index salt) and unchanged subsets rebuild identically;
    - nodes of at least ``snapshot_min`` points record a replay
      :class:`_NodeRecord`, and ``solve`` accepts a *hint* node from the
      previous version — when the hint's (remapped) subset equals the new
      one, the whole subtree is reused and its record replayed.

    Base cases, straddler correction, marching and the punt paths are
    inherited unchanged — the paper's machinery is untouched.
    """

    def __init__(
        self,
        points: np.ndarray,
        k: int,
        machine: Machine,
        root_ss: np.random.SeedSequence,
        config: FastDnCConfig,
        stats: FastDnCStats,
        nbr_idx: np.ndarray,
        nbr_sq: np.ndarray,
        base: int,
        *,
        keys: np.ndarray,
        salt: int,
        snapshot_min: int,
        idmap: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base)
        self.keys = keys
        self.salt = int(salt)
        self.snapshot_min = max(1, int(snapshot_min))
        self.idmap = idmap
        self.reused_subtrees = 0
        self.reused_points = 0
        if machine.section_log is None:
            machine.section_log = []

    # -- recording ---------------------------------------------------------

    def _pre_state(self) -> tuple:
        mx = self.machine
        met = mx.metrics
        return (
            dict(mx.counters),
            len(mx.section_log),  # type: ignore[arg-type]
            dict(met.counters),
            dict(met.gauges),
            {k: len(v) for k, v in met.series.items()},
        )

    def _attach_record(self, node: PartitionNode, ids: np.ndarray, pre: tuple, cost: Cost) -> None:
        c0, log0, mc0, g0, sl0 = pre
        mx = self.machine
        met = mx.metrics
        counters = {k: v - c0.get(k, 0) for k, v in mx.counters.items() if v != c0.get(k, 0)}
        events = list(mx.section_log[log0:])  # type: ignore[index]
        mcounters = {
            k: v - mc0.get(k, 0) for k, v in met.counters.items() if v != mc0.get(k, 0)
        }
        gauges = {k: v for k, v in met.gauges.items() if k not in g0 or g0[k] != v}
        series: Dict[str, list] = {}
        for k, v in met.series.items():
            start = sl0.get(k, 0)
            if len(v) > start:
                series[k] = list(v[start:])
        node.meta[_REC_KEY] = _NodeRecord(
            cost,
            events,
            counters,
            mcounters,
            gauges,
            series,
            self.nbr_idx[ids].copy(),
            self.nbr_sq[ids].copy(),
        )

    def _replay(self, rec: _NodeRecord, ids: np.ndarray) -> None:
        """Re-apply a recorded subtree: the ledger, sections, counters,
        metrics and neighbor rows end up exactly as a fresh build's."""
        mx = self.machine
        mx.charge(rec.cost)
        for name, c in rec.section_events:
            mx.sections[name] = mx.sections.get(name, ZERO).then(c)
            if mx.section_log is not None:
                mx.section_log.append((name, c))
        for name, v in rec.counters.items():
            mx.counters[name] = mx.counters.get(name, 0) + v
        met = mx.metrics
        for name, v in rec.metric_counters.items():
            met.inc(name, v)
        for name, v in rec.metric_gauges.items():
            met.set_gauge(name, v)
        for name, vals in rec.metric_series.items():
            met.samples(name).extend(vals)
        self.nbr_idx[ids] = rec.nbr_idx
        self.nbr_sq[ids] = rec.nbr_sq
        self.reused_subtrees += 1
        self.reused_points += int(ids.shape[0])

    def _try_reuse(self, ids: np.ndarray, hint: PartitionNode) -> Optional[PartitionNode]:
        """Reuse ``hint``'s subtree when its (remapped) subset equals ``ids``.

        Validity rests on the online build being a pure function of subset
        values: equal subsets — however they were produced — rebuild to the
        identical subtree, so replaying the record *is* the fresh build.
        """
        rec: Optional[_NodeRecord] = hint.meta.get(_REC_KEY)
        if rec is None or hint.indices.shape[0] != ids.shape[0]:
            return None
        mapped = hint.indices if self.idmap is None else self.idmap[hint.indices]
        if not np.array_equal(mapped, ids):
            return None
        node = hint if self.idmap is None else _clone_remap(hint, self.idmap)
        self._replay(node.meta[_REC_KEY], ids)
        return node

    # -- recursion ---------------------------------------------------------

    def solve(  # type: ignore[override]
        self,
        ids: np.ndarray,
        level: int = 0,
        path: Tuple[int, ...] = (),
        hint: Optional[PartitionNode] = None,
    ) -> PartitionNode:
        m = int(ids.shape[0])
        if hint is not None:
            reused = self._try_reuse(ids, hint)
            if reused is not None:
                return reused
        if m < self.snapshot_min:
            with self.machine.span("fast.node", level=level, m=m) as span:
                return self._solve_online(ids, level, path, span, hint)
        pre = self._pre_state()
        with self.machine.measure() as region_cost:
            with self.machine.span("fast.node", level=level, m=m) as span:
                node = self._solve_online(ids, level, path, span, hint)
        self._attach_record(node, ids, pre, region_cost())
        return node

    def _solve_online(
        self,
        ids: np.ndarray,
        level: int,
        path: Tuple[int, ...],
        span,
        hint: Optional[PartitionNode],
    ) -> PartitionNode:
        m = ids.shape[0]
        self.stats.nodes += 1
        if m <= self.base:
            self.brute_force(ids)
            return PartitionNode(indices=ids)
        sub = self.points[ids]
        keys = self.keys[ids]
        node_key = _fold_keys(keys)
        try:
            with self.machine.section("divide"):
                separator, attempts = self._find_stable_separator(sub, keys)
            self.stats.separator_attempts += attempts
            if span is not None:
                span.attrs["separator_attempts"] = attempts
        except SeparatorFailure:
            self.stats.punts_separator += 1
            if span is not None:
                span.attrs["punted"] = True
            self.brute_force(ids)
            return PartitionNode(indices=ids)
        side = separator.side_of_points(sub)
        self.machine.charge(self.machine.ewise_cost(m, 2.0))
        self.machine.charge(self.machine.scan_cost(m).then(self.machine.permute_cost(m)))
        in_ids = ids[side < 0]
        ex_ids = ids[side > 0]
        hint_left = hint.left if hint is not None else None
        hint_right = hint.right if hint is not None else None
        children: List[Optional[PartitionNode]] = [None, None]
        with self.machine.parallel() as par:
            with par.branch():
                children[0] = self.solve(in_ids, level + 1, path + (0,), hint_left)
            with par.branch():
                children[1] = self.solve(ex_ids, level + 1, path + (1,), hint_right)
        node = PartitionNode(
            indices=ids, separator=separator, left=children[0], right=children[1]
        )
        with self.machine.section("correct"):
            self.correct(node, in_ids, ex_ids, self._correct_rng(node_key))
        if span is not None:
            span.attrs["iota"] = node.meta.get("iota", 0)
            span.attrs["punted"] = node.meta.get("punted", False)
        return node

    # -- content-addressed randomness --------------------------------------

    def _correct_rng(self, node_key: int) -> np.random.Generator:
        """Generator for the correction punt path, seeded by subset content."""
        return np.random.default_rng(
            np.random.SeedSequence(entropy=(self.salt, node_key, 0xC0DE))
        )

    def _find_stable_separator(
        self, sub: np.ndarray, keys: np.ndarray
    ) -> Tuple[object, int]:
        """The unit-time retry loop with value-stable candidate derivation.

        Candidates are drawn from a sampler over the node's *rendezvous
        sample* — the ``s`` subset points with the smallest salted content
        hashes — seeded by the sample's own hash fold.  A mutation
        elsewhere in the subset leaves the sample, hence the entire
        candidate sequence and the accepted separator, unchanged; only
        a mutation that displaces a sample member (probability ``s/m``
        per mutated point) redraws it.  One sample serves every attempt
        (the retry loop re-draws circles, as in
        :class:`~repro.separators.unit_time.UnitTimeSeparator`), refreshed
        with a re-salted sample every ``refresh_every`` failures; keeping
        the sample fixed across attempts minimises the membership surface
        that mutations can perturb.  Cost accounting per attempt is
        identical to :meth:`UnitTimeSeparator.attempt`.
        """
        m, d = sub.shape
        target = default_delta(d, self.config.epsilon)
        size = (
            self.config.sample_size
            if self.config.sample_size is not None
            else online_sample_size(d)
        )
        refresh_every = 16
        machine = self.machine
        sampler: Optional[MTTVSeparatorSampler] = None
        with machine.span("separator.search", n=int(m), d=d) as span:
            for attempt in range(1, self.config.max_attempts + 1):
                if sampler is None:
                    round_salt = np.uint64(
                        (((attempt - 1) // refresh_every) * 0x9E3779B97F4A7C15 ^ self.salt)
                        & 0xFFFFFFFFFFFFFFFF
                    )
                    akeys = _mix64(keys ^ _mix64(round_salt))
                    if size < m:
                        sel = np.argpartition(akeys, size - 1)[:size]
                        sel.sort()
                        sample = sub[sel]
                        sample_fold = _fold_keys(akeys[sel])
                    else:
                        sample = sub
                        sample_fold = _fold_keys(akeys)
                    rng = np.random.default_rng(
                        np.random.SeedSequence(
                            entropy=(self.salt, attempt - 1, sample_fold)
                        )
                    )
                    sampler = MTTVSeparatorSampler(
                        sample, seed=rng, sample_size=None, centerpoint="radon"
                    )
                machine.charge(machine.serial_cost(_ATTEMPT_SERIAL_COST))
                machine.charge(machine.ewise_cost(m, 3.0))
                machine.charge(machine.scan_cost(m))
                machine.bump("separator_attempts")
                try:
                    candidate = sampler.draw()
                except RuntimeError:
                    machine.bump("separator_draw_failures")
                    continue
                if is_good_point_split(candidate, sub, target):
                    if span is not None:
                        span.attrs["attempts"] = attempt
                    return candidate, attempt
                if attempt % refresh_every == 0:
                    sampler = None
            if span is not None:
                span.attrs["attempts"] = self.config.max_attempts
                span.attrs["failed"] = True
        raise SeparatorFailure(
            f"no {target:.3f}-splitting separator in {self.config.max_attempts} "
            f"stable attempts (n={m}, d={d})"
        )


def _clone_remap(node: PartitionNode, idmap: np.ndarray) -> PartitionNode:
    """Deep-copy a reused subtree with ids pushed through ``idmap``.

    Separator objects are shared (they hold geometry, no ids); records are
    copied with remapped neighbor rows.  The original subtree — part of the
    previous version — is left untouched, which is what keeps old snapshots
    valid (copy-on-write).  Iterative, deep-tree safe.
    """

    def shallow(n: PartitionNode) -> PartitionNode:
        clone = PartitionNode.__new__(PartitionNode)
        clone.indices = idmap[n.indices]
        clone.separator = n.separator
        clone.left = None
        clone.right = None
        clone.meta = dict(n.meta)
        rec = clone.meta.get(_REC_KEY)
        if rec is not None:
            clone.meta[_REC_KEY] = rec.remapped(idmap)
        return clone

    root = shallow(node)
    stack = [(node, root)]
    while stack:
        src, dst = stack.pop()
        if src.is_leaf:
            continue
        dst.left = shallow(src.left)  # type: ignore[arg-type]
        dst.right = shallow(src.right)  # type: ignore[arg-type]
        stack.append((src.left, dst.left))  # type: ignore[arg-type]
        stack.append((src.right, dst.right))  # type: ignore[arg-type]
    return root


# -- equality helpers -------------------------------------------------------


def _separator_signature(sep) -> tuple:
    if sep is None:
        return ("leaf",)
    if isinstance(sep, Sphere):
        return ("sphere", sep.center.tobytes(), sep.radius)
    if isinstance(sep, Hyperplane):
        return ("hyperplane", sep.normal.tobytes(), sep.offset)
    return (type(sep).__name__, repr(sep))  # pragma: no cover - future kinds


def tree_signature(node: Optional[PartitionNode]) -> list:
    """Exact structural signature of a partition tree, preorder.

    Two trees with equal signatures have identical node subsets (ids and
    order), identical separators (bit-equal geometry) and identical shape
    — the equality the online index's commit guarantee is stated in.
    """
    if node is None:
        return []
    return [
        (n.indices.tobytes(), _separator_signature(n.separator)) for n in node.nodes()
    ]


def equivalence_report(built: "MutableIndex", reference: "MutableIndex") -> List[str]:
    """Differences between a committed index and a from-scratch reference.

    Empty list = bit-identical: neighbor arrays, partition tree, (depth,
    work) ledger, machine counters, and the full metrics registry.  Used by
    the property tests and the ``repro update --check`` gate.
    """
    problems: List[str] = []
    a, b = built, reference
    if not np.array_equal(a.neighbor_indices, b.neighbor_indices):
        problems.append("neighbor indices differ")
    if not np.array_equal(a.neighbor_sq_dists, b.neighbor_sq_dists):
        problems.append("neighbor squared distances differ")
    if tree_signature(a.tree) != tree_signature(b.tree):
        problems.append("partition trees differ")
    ca, cb = a.machine.total, b.machine.total
    if ca.depth != cb.depth or ca.work != cb.work:
        problems.append(f"ledger differs: {(ca.depth, ca.work)} vs {(cb.depth, cb.work)}")
    if a.machine.counters != b.machine.counters:
        problems.append("machine counters differ")
    ma, mb = a.machine.metrics, b.machine.metrics
    if ma.counters != mb.counters:
        problems.append("metric counters differ")
    if ma.gauges != mb.gauges:
        problems.append("metric gauges differ")
    if {k: v for k, v in ma.series.items() if v} != {k: v for k, v in mb.series.items() if v}:
        problems.append("metric series differ")
    return problems


# -- the mutable index ------------------------------------------------------


class UpdateStats(MetricsView):
    """Mutation metrics, namespaced ``update.*`` in a *persistent* registry.

    Lives on the :class:`MutableIndex` (not on the per-version build
    machine, whose registry must stay bit-comparable to a fresh build's).
    Counters: ``commits``, ``absorbed``, ``punts``, ``inserted``,
    ``deleted``, ``reused_subtrees``, ``reused_points``.  Gauges:
    ``version``, ``churn``, ``touched_leaves``.  Series: ``commits``
    holds one ``(version, inserted, deleted, churn, punted)`` tuple per
    commit.
    """

    _NS = "update"
    _COUNTER_FIELDS = (
        "commits",
        "absorbed",
        "punts",
        "inserted",
        "deleted",
        "reused_subtrees",
        "reused_points",
    )
    _GAUGE_FIELDS = ("version", "churn", "touched_leaves")
    _SERIES_FIELDS = ("commits_log",)


@dataclass(frozen=True)
class CommitInfo:
    """Summary of one :meth:`MutableIndex.commit`."""

    version: int
    n: int
    inserted: int
    deleted: int
    churn: float
    punted: bool
    noop: bool = False
    reused_subtrees: int = 0
    reused_points: int = 0
    touched_leaves: int = 0
    wall_s: float = 0.0

    @property
    def absorbed(self) -> bool:
        """True when the commit went through the absorb fast path."""
        return not self.punted and not self.noop

    @property
    def reused_fraction(self) -> float:
        """Fraction of points served from replayed subtrees."""
        return self.reused_points / self.n if self.n else 0.0


class MutableIndex:
    """An exact k-NN index that absorbs inserts and deletes.

    Parameters
    ----------
    points:
        (n, d) initial points (copied; the index never aliases caller
        arrays).
    k:
        Neighbors per point, ``1 <= k < n``.
    seed:
        Determinism root.  Two indexes with the same points, ``k``, seed
        and config are bit-identical — including after any sequence of
        committed mutations, which is the absorb-equivalence guarantee.
    config:
        :class:`~repro.core.fast_dnc.FastDnCConfig`; the online build
        always executes the recursive profile (the ``engine`` field is
        validated but does not change the build — see
        ``docs/online_index.md``).
    churn_threshold:
        Commits whose churn fraction ``(inserts + deletes) / n`` exceeds
        this punt to a full rebuild (the absorb machinery stops paying for
        itself well below 1.0; see the benchmark table).
    snapshot_min_size:
        Smallest subtree (in points) that records a replay snapshot;
        smaller reused subtrees are rebuilt fresh (bit-identical either
        way).  Default ``max(base_case_size, 32)`` — replay granularity
        down to the brute-force leaves, which caps the recompute cost of
        one mutation at its root-leaf path.  Raising it trades commit
        speed for record memory (records store one neighbor-row copy per
        recorded tree level, ``O(n k)`` each).
    machine:
        Optional ledger for the *initial* build; every commit gets a fresh
        one (so ``index.machine.total`` always equals the from-scratch
        cost of the current version).
    trace_commits:
        Attach a tracer to each commit's fresh machine, so the
        ``update.absorb`` / ``update.rebuild`` spans (and the build spans
        under them) are recorded on :attr:`machine` ``.tracer`` after
        every commit.  Tracing is passive — the ledger, and therefore the
        equivalence guarantee, is unchanged.
    """

    def __init__(
        self,
        points: np.ndarray,
        k: int = 1,
        *,
        seed: object = 0,
        config: Optional[FastDnCConfig] = None,
        churn_threshold: float = 0.05,
        snapshot_min_size: Optional[int] = None,
        machine: Optional[Machine] = None,
        trace_commits: bool = False,
    ) -> None:
        pts = np.array(as_points(points, min_points=1), dtype=np.float64, copy=True)
        n = pts.shape[0]
        if not 1 <= k < max(2, n):
            raise ValueError(f"k must satisfy 1 <= k < n, got k={k}, n={n}")
        if not 0.0 <= churn_threshold <= 1.0:
            raise ValueError(f"churn_threshold must be in [0, 1], got {churn_threshold}")
        self.k = int(k)
        self.config = config if config is not None else FastDnCConfig()
        self.churn_threshold = float(churn_threshold)
        self._base = self.config.base_size(self.k)
        self.snapshot_min_size = (
            int(snapshot_min_size)
            if snapshot_min_size is not None
            else max(self._base, 32)
        )
        if self.snapshot_min_size < 1:
            raise ValueError("snapshot_min_size must be >= 1")
        self._seed = seed
        self.trace_commits = bool(trace_commits)
        root_ss = seed_sequence_root(seed)
        self._root_ss = root_ss
        self._salt = int(root_ss.generate_state(1, np.uint64)[0])
        self.version = 0
        self.update_metrics = Metrics()
        self.update_stats = UpdateStats(metrics=self.update_metrics)
        self._pending_inserts: List[np.ndarray] = []
        self._pending_deletes: set = set()
        self.points = pts
        self.machine = machine if machine is not None else Machine()
        self.stats: FastDnCStats
        self.tree: PartitionNode
        self.nbr_idx: np.ndarray
        self.nbr_sq: np.ndarray
        self._build_full(pts, self.machine)
        self.update_stats.version = 0

    # -- views -------------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    @property
    def d(self) -> int:
        return int(self.points.shape[1])

    @property
    def neighbor_indices(self) -> np.ndarray:
        return self.nbr_idx

    @property
    def neighbor_sq_dists(self) -> np.ndarray:
        return self.nbr_sq

    @property
    def system(self) -> KNeighborhoodSystem:
        """The current version's exact k-neighborhood system."""
        return KNeighborhoodSystem(self.points, self.k, self.nbr_idx, self.nbr_sq)

    @property
    def cost(self) -> Cost:
        """The (depth, work) ledger of building the *current* version —
        equal, by the commit guarantee, to a from-scratch build's."""
        return self.machine.total

    @property
    def pending(self) -> Tuple[int, int]:
        """Buffered ``(inserts, deletes)`` awaiting :meth:`commit`."""
        return (
            sum(int(a.shape[0]) for a in self._pending_inserts),
            len(self._pending_deletes),
        )

    def fresh_like(self, points: Optional[np.ndarray] = None) -> "MutableIndex":
        """A from-scratch index with this one's parameters (the reference
        the commit guarantee is stated against)."""
        return MutableIndex(
            self.points if points is None else points,
            self.k,
            seed=self._seed,
            config=self.config,
            churn_threshold=self.churn_threshold,
            snapshot_min_size=self.snapshot_min_size,
        )

    # -- mutation intake ---------------------------------------------------

    def insert(self, points: np.ndarray) -> int:
        """Buffer rows for insertion; returns how many are now pending.

        Inserted points receive ids *at commit time*: survivors of the
        commit keep their relative order and new points are appended after
        them (monotone renumbering — the property that keeps (distance,
        index) tie-breaks stable under compaction).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts[None, :]
        pts = as_points(pts, min_points=1)
        if pts.shape[1] != self.d:
            raise ValueError(
                f"dimension mismatch: index is {self.d}-D, inserts are {pts.shape[1]}-D"
            )
        self._pending_inserts.append(pts.copy())
        return self.pending[0]

    def delete(self, ids: Sequence[int]) -> int:
        """Buffer committed point ids for deletion; returns pending count.

        Ids refer to the *current committed version*.  Unknown, duplicate
        or already-pending ids raise — silent double deletes hide bugs in
        mutation streams.
        """
        arr = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if arr.size == 0:
            return len(self._pending_deletes)
        if arr.min() < 0 or arr.max() >= self.n:
            raise ValueError(f"delete ids must be in [0, {self.n}), got {arr.min()}..{arr.max()}")
        if np.unique(arr).shape[0] != arr.shape[0]:
            raise ValueError("duplicate ids in one delete call")
        clashes = self._pending_deletes.intersection(arr.tolist())
        if clashes:
            raise ValueError(f"ids already pending deletion: {sorted(clashes)[:8]}")
        self._pending_deletes.update(int(i) for i in arr)
        return len(self._pending_deletes)

    def discard_pending(self) -> None:
        """Drop every buffered mutation without committing."""
        self._pending_inserts.clear()
        self._pending_deletes.clear()

    # -- commit ------------------------------------------------------------

    def commit(self) -> CommitInfo:
        """Apply buffered mutations as the next version; returns its summary.

        The committed state is bit-identical to a from-scratch build of
        the resulting point set (see :func:`equivalence_report`).  Below
        ``churn_threshold`` the changes are absorbed — only subtrees whose
        subsets changed are recomputed, the rest replay their records;
        above it the commit punts to a full rebuild.  Either way previous
        versions' arrays and trees are never touched (copy-on-write).
        """
        n_ins, n_del = self.pending
        if n_ins == 0 and n_del == 0:
            return CommitInfo(
                version=self.version, n=self.n, inserted=0, deleted=0,
                churn=0.0, punted=False, noop=True,
            )
        t0 = time.perf_counter()
        old_n = self.n
        old_tree = self.tree
        deletes = np.array(sorted(self._pending_deletes), dtype=np.int64)
        inserts = (
            np.concatenate(self._pending_inserts, axis=0)
            if self._pending_inserts
            else np.empty((0, self.d), dtype=np.float64)
        )
        survivors = np.ones(old_n, dtype=bool)
        survivors[deletes] = False
        new_points = np.concatenate([self.points[survivors], inserts], axis=0)
        new_n = new_points.shape[0]
        if new_n < 1:
            raise ValueError("commit would delete every point")
        if not self.k < max(2, new_n):
            raise ValueError(
                f"commit would leave n={new_n} <= k={self.k}; delete fewer points"
            )
        churn = (n_ins + n_del) / old_n
        touched = self._touched_leaves(old_tree, inserts, deletes)
        idmap: Optional[np.ndarray] = None
        if n_del:
            idmap = np.full(old_n, -1, dtype=np.int64)
            idmap[survivors] = np.arange(new_n - n_ins, dtype=np.int64)
        punt = churn > self.churn_threshold
        machine = Machine()
        if self.trace_commits:
            machine.enable_tracing()
        if punt:
            with machine.span("update.rebuild", version=self.version + 1, n=new_n,
                              inserted=n_ins, deleted=n_del, churn=churn):
                runner = self._build_full(new_points, machine)
        else:
            with machine.span("update.absorb", version=self.version + 1, n=new_n,
                              inserted=n_ins, deleted=n_del, churn=churn):
                runner = self._absorb(new_points, machine, old_tree, idmap)
        self.machine = machine
        self.version += 1
        self._pending_inserts.clear()
        self._pending_deletes.clear()
        info = CommitInfo(
            version=self.version,
            n=new_n,
            inserted=n_ins,
            deleted=n_del,
            churn=churn,
            punted=punt,
            reused_subtrees=runner.reused_subtrees,
            reused_points=runner.reused_points,
            touched_leaves=touched,
            wall_s=time.perf_counter() - t0,
        )
        self._note_commit(info)
        return info

    def snapshot(self, *, with_structure: bool = False):
        """Freeze the current version as a :class:`~repro.serve.index.ServingIndex`.

        The snapshot shares this index's arrays copy-on-write: later
        commits allocate fresh arrays and never mutate these, so the
        snapshot stays valid (and bit-stable) forever.  Its ``version``
        field is this index's current version — the serving layer keys
        result caches on it so stale entries cannot survive a swap.
        """
        from ..serve.index import ServingIndex

        index = ServingIndex(
            self.points, self.tree, self.k, system=self.system, version=self.version
        )
        if with_structure:
            index.structure  # noqa: B018 - builds and caches
        return index

    # -- internals ---------------------------------------------------------

    def _make_runner(
        self,
        points: np.ndarray,
        machine: Machine,
        nbr_idx: np.ndarray,
        nbr_sq: np.ndarray,
        idmap: Optional[np.ndarray],
    ) -> _OnlineRunner:
        stats = FastDnCStats(metrics=machine.metrics)
        keys = _point_keys(points, self._salt)
        runner = _OnlineRunner(
            points,
            self.k,
            machine,
            self._root_ss,
            self.config,
            stats,
            nbr_idx,
            nbr_sq,
            self._base,
            keys=keys,
            salt=self._salt,
            snapshot_min=self.snapshot_min_size,
            idmap=idmap,
        )
        self.stats = stats
        return runner

    def _run(
        self, points: np.ndarray, machine: Machine, hint: Optional[PartitionNode],
        idmap: Optional[np.ndarray],
    ) -> _OnlineRunner:
        n = points.shape[0]
        nbr_idx = np.full((n, self.k), -1, dtype=np.int64)
        nbr_sq = np.full((n, self.k), np.inf)
        runner = self._make_runner(points, machine, nbr_idx, nbr_sq, idmap)
        levels = estimated_tree_levels(
            n, self._base, default_delta(points.shape[1], self.config.epsilon)
        )
        ids = np.arange(n, dtype=np.int64)
        with recursion_guard(levels):
            tree = runner.solve(ids, 0, (), hint)
        self.points = points
        self.tree = tree
        self.nbr_idx = nbr_idx
        self.nbr_sq = nbr_sq
        return runner

    def _build_full(self, points: np.ndarray, machine: Machine) -> _OnlineRunner:
        return self._run(points, machine, hint=None, idmap=None)

    def _absorb(
        self,
        points: np.ndarray,
        machine: Machine,
        old_tree: PartitionNode,
        idmap: Optional[np.ndarray],
    ) -> _OnlineRunner:
        return self._run(points, machine, hint=old_tree, idmap=idmap)

    def _touched_leaves(
        self, tree: PartitionNode, inserts: np.ndarray, deletes: np.ndarray
    ) -> int:
        """How many of the previous version's leaves the mutations touch.

        Inserted points are group-descended through the old tree
        (:meth:`~repro.core.partition_tree.PartitionNode.leaves_of_points`);
        deleted ids are matched against leaf subsets.  Observability only —
        the absorb recursion finds the affected paths itself — but it is
        the cheap locality estimate the churn guidance in
        ``docs/online_index.md`` is written in terms of.
        """
        touched: set = set()
        if inserts.shape[0]:
            for leaf, _rows in tree.leaves_of_points(inserts):
                touched.add(id(leaf))
        if deletes.shape[0]:
            # a committed point's leaf is exactly where descent routes it
            for leaf, _rows in tree.leaves_of_points(self.points[deletes]):
                touched.add(id(leaf))
        return len(touched)

    def _note_commit(self, info: CommitInfo) -> None:
        s = self.update_stats
        s.commits += 1
        if info.punted:
            s.punts += 1
        else:
            s.absorbed += 1
        s.inserted += info.inserted
        s.deleted += info.deleted
        s.reused_subtrees += info.reused_subtrees
        s.reused_points += info.reused_points
        s.version = info.version
        s.churn = info.churn
        s.touched_leaves = info.touched_leaves
        s.commits_log.append(
            (info.version, info.inserted, info.deleted, info.churn, info.punted)
        )
