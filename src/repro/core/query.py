"""The neighborhood query structure (Section 3 of the paper).

Given a k-ply neighborhood system ``B``, build a binary tree of sphere
separators so that queries "which balls contain point p?" run in
O(k + log n): each internal node stores a separator S, the left subtree
indexes ``B_I(S) ∪ B_O(S)`` (balls meeting S or its interior), the right
subtree ``B_E(S) ∪ B_O(S)``; leaves hold at most ``m0`` balls which a query
checks exhaustively.  Straddling balls are *duplicated* into both children —
the whole point of using sphere separators is that only ``O(m^mu)`` balls
straddle, so total space stays O(n) (Lemma 3.1).

Both constructions of the paper are provided through one code path:

- the sequential random O(n log n) build, and
- Parallel Neighborhood Querying (Section 3.3): identical tree, but the
  two recursive builds compose as parallel branches on the machine ledger,
  so the measured depth is the paper's O(log n) claim (Theorem 3.1).

Termination is guaranteed Las-Vegas-style: a node retries separators until
one both delta-splits the centers and cuts at most its iota budget *and*
strictly shrinks both children; after ``max_attempts`` failures the node
becomes an (oversized) fallback leaf — correctness never depends on luck,
only the O(log n) height does, exactly as in the paper's "random time"
convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..geometry.balls import BallSystem
from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from ..obs.metrics import MetricsView
from ..pvm.cost import Cost
from ..pvm.machine import Machine
from ..separators.quality import default_delta, is_good_point_split
from ..separators.unit_time import UnitTimeSeparator
from .config import CommonConfig, supports_renamed_fields

__all__ = ["QueryConfig", "QueryStats", "QueryNode", "NeighborhoodQueryStructure"]

SeparatorLike = Union[Sphere, Hyperplane]


@supports_renamed_fields
@dataclass(frozen=True)
class QueryConfig(CommonConfig):
    """Tuning knobs of the search-structure build.

    ``base_case_size`` (deprecated alias ``m0``) is the leaf capacity of
    Lemma 3.1 (any constant large enough that ``m^mu <= (1-delta)/2 * m``
    for ``m > base_case_size`` works; 32 is comfortable for d <= 4).
    ``mu`` defaults to the separator theorem's exponent ``(d-1)/d`` plus
    slack; ``iota_factor`` is the constant in the iota budget
    ``iota_factor * m^mu``.  ``base_case_size``, ``seed``, ``mu`` and
    ``iota_budget`` come from :class:`~repro.core.config.CommonConfig`.
    """

    base_case_size: int = 32
    epsilon: float = 0.05
    mu_slack: float = 0.10
    iota_factor: float = 3.0
    max_attempts: int = 24
    sample_size: Optional[int] = None


class QueryStats(MetricsView):
    """Build/shape statistics used by experiment E3.

    A thin view over a :class:`~repro.obs.metrics.Metrics` registry (keys
    namespaced ``query.*``); each structure owns a private registry so
    multiple builds on one machine do not clobber each other.  Attribute
    surface unchanged: ``n_balls``, ``height``, ``leaves``,
    ``stored_balls``, ``attempts``, ``fallback_leaves``, ``duplications``.
    """

    _NS = "query"
    _COUNTER_FIELDS = (
        "n_balls",
        "height",
        "leaves",
        "stored_balls",
        "attempts",
        "fallback_leaves",
        "duplications",
    )

    @property
    def space_ratio(self) -> float:
        """Stored balls per input ball — Lemma 3.1 says O(1)."""
        return self.stored_balls / self.n_balls if self.n_balls else 0.0


@dataclass
class QueryNode:
    """Internal: separator + two children.  Leaf: ball ids (into the system)."""

    ball_ids: np.ndarray
    separator: Optional[SeparatorLike] = None
    left: Optional["QueryNode"] = None
    right: Optional["QueryNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.separator is None

    def height(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.height(), self.right.height())  # type: ignore[union-attr]


class NeighborhoodQueryStructure:
    """Separator-based search structure over a ball system.

    Parameters
    ----------
    balls:
        The neighborhood system to index.
    machine:
        Optional cost ledger.  When given, recursive child builds compose
        as parallel branches (the Section 3.3 parallel construction) and
        queries charge descent costs.
    seed:
        RNG or seed for the separator draws.
    config:
        :class:`QueryConfig`; defaults reproduce the paper's parameters.
    """

    def __init__(
        self,
        balls: BallSystem,
        machine: Optional[Machine] = None,
        seed: object = None,
        config: QueryConfig = QueryConfig(),
    ) -> None:
        self.balls = balls
        self.config = config
        self.machine = machine
        self.stats = QueryStats(n_balls=len(balls))
        self._rng = config.rng(seed)
        ids = np.arange(len(balls), dtype=np.int64)
        if machine is not None:
            with machine.span("query.build", n_balls=len(balls)):
                self.root = self._build(ids)
        else:
            self.root = self._build(ids)
        self.stats.height = self.root.height()
        for leaf in self._leaves(self.root):
            self.stats.leaves += 1
            self.stats.stored_balls += int(leaf.ball_ids.shape[0])

    # -- construction ------------------------------------------------------

    def _charge(self, cost: Cost) -> None:
        if self.machine is not None:
            self.machine.charge(cost)

    def _build(self, ids: np.ndarray) -> QueryNode:
        m = ids.shape[0]
        cfg = self.config
        if m <= cfg.base_case_size:
            return QueryNode(ball_ids=ids)
        centers = self.balls.centers[ids]
        radii = self.balls.radii[ids]
        d = centers.shape[1]
        delta = default_delta(d, cfg.epsilon)
        sep = self._find_separator(centers, radii, ids, delta)
        if sep is None:
            self.stats.fallback_leaves += 1
            return QueryNode(ball_ids=ids)
        separator, left_ids, right_ids, cut = sep
        self.stats.duplications += cut
        machine = self.machine
        if machine is None:
            left = self._build(left_ids)
            right = self._build(right_ids)
        else:
            results: List[Optional[QueryNode]] = [None, None]
            with machine.parallel() as par:
                with par.branch():
                    results[0] = self._build(left_ids)
                with par.branch():
                    results[1] = self._build(right_ids)
            left, right = results  # type: ignore[assignment]
        return QueryNode(ball_ids=ids, separator=separator, left=left, right=right)

    def _find_separator(
        self, centers: np.ndarray, radii: np.ndarray, ids: np.ndarray, delta: float
    ) -> Optional[Tuple[SeparatorLike, np.ndarray, np.ndarray, int]]:
        """Retry unit-time draws until split + iota budget + progress hold."""
        m = ids.shape[0]
        d = centers.shape[1]
        cfg = self.config
        budget = cfg.iota_budget(m, d)
        machine = self.machine or _NULL_MACHINE
        try:
            unit = UnitTimeSeparator(centers, seed=self._rng, sample_size=cfg.sample_size)
        except ValueError:
            return None
        for attempt in range(1, cfg.max_attempts + 1):
            self.stats.attempts += 1
            try:
                candidate = unit.attempt(machine)
            except RuntimeError:
                continue
            if not is_good_point_split(candidate, centers, delta):
                continue
            cls = candidate.classify_balls(centers, radii)
            machine.charge(machine.ewise_cost(m, 2.0))
            cut = int(np.count_nonzero(cls == 0))
            if cut > budget:
                continue
            left_ids = ids[cls <= 0]
            right_ids = ids[cls >= 0]
            machine.charge(machine.scan_cost(m).then(machine.permute_cost(m)))
            if left_ids.shape[0] >= m or right_ids.shape[0] >= m:
                continue
            if left_ids.shape[0] == 0 or right_ids.shape[0] == 0:
                continue
            return candidate, left_ids, right_ids, cut
        return None

    @staticmethod
    def _leaves(node: QueryNode):
        if node.is_leaf:
            yield node
        else:
            yield from NeighborhoodQueryStructure._leaves(node.left)  # type: ignore[arg-type]
            yield from NeighborhoodQueryStructure._leaves(node.right)  # type: ignore[arg-type]

    # -- queries -------------------------------------------------------------

    def query(self, point: np.ndarray, *, closed: bool = False) -> np.ndarray:
        """Ball ids whose interior (or closure) contains ``point``.

        Descends by point-vs-sphere tests (on-sphere goes left), then
        checks the leaf's balls exhaustively; O(height + leaf size).
        """
        p = np.asarray(point, dtype=np.float64)
        node = self.root
        steps = 0
        while not node.is_leaf:
            side = node.separator.side_of_points(p[None, :])[0]  # type: ignore[union-attr]
            node = node.left if side < 0 else node.right  # type: ignore[assignment]
            steps += 1
        ids = node.ball_ids
        self._charge(Cost(float(steps + max(1, ids.shape[0])), float(steps + ids.shape[0])))
        centers = self.balls.centers[ids]
        radii = self.balls.radii[ids]
        diff = centers - p[None, :]
        sq = np.einsum("ij,ij->i", diff, diff)
        r2 = np.square(radii)
        mask = sq <= r2 if closed else sq < r2
        mask |= np.isinf(radii)
        return ids[mask]

    def query_many(self, points: np.ndarray, *, closed: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """All containment pairs for a batch of query points.

        Returns ``(point_rows, ball_ids)`` — parallel arrays with one entry
        per (query point, covering ball) pair.  The descent is vectorized
        level by level; the machine (if any) is charged depth
        O(height + max leaf size) and work O(#points * height + leaf
        tests), matching the parallel-correction usage of Section 5.
        """
        pts = as_points(points)
        rows = np.arange(pts.shape[0], dtype=np.int64)
        out_rows: List[np.ndarray] = []
        out_balls: List[np.ndarray] = []
        machine = self.machine
        if machine is not None and machine.tracer is not None:
            with machine.span("query.probe", n_points=int(pts.shape[0])):
                return self._query_many_impl(pts, rows, out_rows, out_balls, closed)
        return self._query_many_impl(pts, rows, out_rows, out_balls, closed)

    def _query_many_impl(
        self,
        pts: np.ndarray,
        rows: np.ndarray,
        out_rows: List[np.ndarray],
        out_balls: List[np.ndarray],
        closed: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        machine = self.machine

        def descend(node: QueryNode, prows: np.ndarray) -> None:
            if prows.shape[0] == 0:
                return
            if node.is_leaf:
                ids = node.ball_ids
                if ids.shape[0] == 0:
                    return
                if machine is not None:
                    machine.charge(
                        Cost(float(ids.shape[0]), float(ids.shape[0] * prows.shape[0]))
                    )
                centers = self.balls.centers[ids]
                r2 = np.square(self.balls.radii[ids])
                qq = pts[prows]
                # diff-based kernel (robust near ball boundaries)
                diff = qq[:, None, :] - centers[None, :, :]
                sq = np.einsum("qbd,qbd->qb", diff, diff)
                mask = sq <= r2[None, :] if closed else sq < r2[None, :]
                mask |= np.isinf(self.balls.radii[ids])[None, :]
                pi, bi = np.nonzero(mask)
                out_rows.append(prows[pi])
                out_balls.append(ids[bi])
                return
            if machine is not None:
                machine.charge(machine.ewise_cost(prows.shape[0], 2.0))
                machine.charge(machine.scan_cost(prows.shape[0]).then(machine.permute_cost(prows.shape[0])))
            side = node.separator.side_of_points(pts[prows])  # type: ignore[union-attr]
            left_rows = prows[side < 0]
            right_rows = prows[side >= 0]
            if machine is None:
                descend(node.left, left_rows)  # type: ignore[arg-type]
                descend(node.right, right_rows)  # type: ignore[arg-type]
            else:
                with machine.parallel() as par:
                    with par.branch():
                        descend(node.left, left_rows)  # type: ignore[arg-type]
                    with par.branch():
                        descend(node.right, right_rows)  # type: ignore[arg-type]

        descend(self.root, rows)
        if not out_rows:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(out_rows), np.concatenate(out_balls)


class _NullMachine(Machine):
    """Cost sink used when no ledger was supplied (charges are discarded)."""

    def charge(self, cost: Cost) -> None:  # noqa: D102 - trivial override
        pass

    def bump(self, counter: str, by: int = 1) -> None:  # noqa: D102
        pass


_NULL_MACHINE = _NullMachine()
