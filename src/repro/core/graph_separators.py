"""Recursive sphere-separator decomposition of k-NN graphs.

The paper's point of building the k-nearest-neighbor graph in parallel is
that the result is a "nicely embedded" graph: its neighborhood system is
k-ply, so the Sphere Separator Theorem applies *recursively*, giving
O(k^{1/d} n^{(d-1)/d}) vertex separators at every scale.  This module
closes that loop: given a computed :class:`~repro.core.neighborhood.
KNeighborhoodSystem`, it builds the recursive separator tree, verifies
the separation property, and derives the classic application — a nested
dissection elimination ordering.

Separator semantics (Section 2.1): a sphere S splits the ball system into
``B_I(S)`` (strictly interior), ``B_E(S)`` (strictly exterior), and the
separator set ``B_O(S)`` (balls cutting S).  Since a k-NN edge (i, j)
requires p_j inside the closed ball B_i (or vice versa), the balls of
adjacent vertices intersect, so **no edge joins B_I to B_E** — removing
the O(n^{(d-1)/d}) separator vertices disconnects the two near-halves.
Property tests assert exactly this on real graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..separators.mttv import MTTVSeparatorSampler
from ..separators.quality import default_delta, is_good_point_split
from ..util.rng import as_generator
from .neighborhood import KNeighborhoodSystem

__all__ = [
    "GraphSeparatorNode",
    "build_separator_tree",
    "nested_dissection_order",
    "separator_profile",
    "check_separation",
    "elimination_fill",
]


@dataclass
class GraphSeparatorNode:
    """One node of the recursive vertex-separator tree.

    ``vertices`` are global vertex ids governed by this node.  Internal
    nodes store the ``separator_vertices`` (the cut balls B_O(S)) and two
    children over B_I(S) and B_E(S); leaves keep their vertices whole.
    """

    vertices: np.ndarray
    separator_vertices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    left: Optional["GraphSeparatorNode"] = None
    right: Optional["GraphSeparatorNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def size(self) -> int:
        return int(self.vertices.shape[0])

    def height(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.height(), self.right.height())  # type: ignore[union-attr]

    def nodes(self) -> Iterator["GraphSeparatorNode"]:
        yield self
        if not self.is_leaf:
            yield from self.left.nodes()  # type: ignore[union-attr]
            yield from self.right.nodes()  # type: ignore[union-attr]


def build_separator_tree(
    system: KNeighborhoodSystem,
    seed: object = None,
    *,
    min_size: int = 32,
    epsilon: float = 0.05,
    max_attempts: int = 32,
) -> GraphSeparatorNode:
    """Recursively separate the k-NN graph via MTTV spheres.

    At each node, spheres are drawn until one delta-splits the ball
    *centers* and strictly shrinks both sides; the balls cut by the sphere
    become the node's separator vertices.  Nodes of ``min_size`` or fewer
    vertices — or nodes where no acceptable sphere is found (degenerate
    multisets) — become leaves.

    The output is a Las-Vegas-exact structural decomposition: the
    separation property (no edge between the two sides) holds by geometry
    regardless of the random draws; randomness only affects balance and
    separator sizes.
    """
    balls = system.to_ball_system()
    rng = as_generator(seed)
    d = system.dim
    delta = default_delta(d, epsilon)

    def recurse(ids: np.ndarray) -> GraphSeparatorNode:
        m = ids.shape[0]
        if m <= min_size:
            return GraphSeparatorNode(vertices=ids)
        centers = balls.centers[ids]
        radii = balls.radii[ids]
        try:
            sampler = MTTVSeparatorSampler(centers, seed=rng)
        except ValueError:
            return GraphSeparatorNode(vertices=ids)
        for _ in range(max_attempts):
            try:
                sphere = sampler.draw()
            except RuntimeError:
                continue
            if not is_good_point_split(sphere, centers, delta):
                continue
            cls = sphere.classify_balls(centers, radii)
            interior = ids[cls == -1]
            exterior = ids[cls == 1]
            cut = ids[cls == 0]
            if interior.shape[0] == 0 or exterior.shape[0] == 0:
                continue
            if interior.shape[0] >= m or exterior.shape[0] >= m:
                continue
            return GraphSeparatorNode(
                vertices=ids,
                separator_vertices=cut,
                left=recurse(interior),
                right=recurse(exterior),
            )
        return GraphSeparatorNode(vertices=ids)

    return recurse(np.arange(len(system), dtype=np.int64))


def nested_dissection_order(tree: GraphSeparatorNode) -> np.ndarray:
    """Elimination ordering: leaves first, separators last (postorder).

    The classic use of recursive separators (George/Lipton–Rose–Tarjan):
    eliminating separator vertices after both halves bounds fill-in.
    Returns a permutation of the tree's vertices.
    """
    order: List[np.ndarray] = []

    def walk(node: GraphSeparatorNode) -> None:
        if node.is_leaf:
            order.append(node.vertices)
            return
        walk(node.left)  # type: ignore[arg-type]
        walk(node.right)  # type: ignore[arg-type]
        order.append(node.separator_vertices)

    walk(tree)
    out = np.concatenate([o for o in order if o.size]) if order else np.empty(0, dtype=np.int64)
    return out


def separator_profile(tree: GraphSeparatorNode) -> List[Tuple[int, int]]:
    """(node size, separator size) for every internal node, preorder.

    Fitting ``sep_size ~ size^e`` on this profile reproduces the
    separator-theorem exponent across *all* scales of one graph, not just
    the top cut.
    """
    return [
        (node.size, int(node.separator_vertices.shape[0]))
        for node in tree.nodes()
        if not node.is_leaf
    ]


def elimination_fill(edges: np.ndarray, order: np.ndarray) -> int:
    """Fill-in of symbolic Gaussian elimination under ``order``.

    Standard quotient-free symbolic factorization: eliminate vertices in
    order; each elimination connects all not-yet-eliminated neighbors into
    a clique; returns the number of *new* edges created.  O(n + m + fill)
    set operations — fine at the example scales; used to quantify how much
    the nested dissection ordering (separators last) beats arbitrary
    orderings, the classical payoff of recursive separators.
    """
    n = order.shape[0]
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    adj: List[set] = [set() for _ in range(n)]
    for a, b in edges:
        adj[int(a)].add(int(b))
        adj[int(b)].add(int(a))
    fill = 0
    for v in order:
        v = int(v)
        later = [u for u in adj[v] if pos[u] > pos[v]]
        for i in range(len(later)):
            for j in range(i + 1, len(later)):
                a, b = later[i], later[j]
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    fill += 1
    return fill


def check_separation(system: KNeighborhoodSystem, tree: GraphSeparatorNode) -> bool:
    """Verify: no k-NN edge joins the two sides of any internal node.

    This is the structural guarantee the Sphere Separator Theorem provides
    (edges need intersecting balls; B_I and B_E balls cannot intersect).
    Returns True when every internal node separates correctly and the
    vertex sets partition properly.
    """
    from .knn_graph import knn_graph_edges

    edges = knn_graph_edges(system)
    for node in tree.nodes():
        if node.is_leaf:
            continue
        parts = np.concatenate(
            [node.left.vertices, node.right.vertices, node.separator_vertices]  # type: ignore[union-attr]
        )
        if not np.array_equal(np.sort(parts), np.sort(node.vertices)):
            return False
        side = np.zeros(len(system), dtype=np.int8)
        side[node.left.vertices] = 1  # type: ignore[union-attr]
        side[node.right.vertices] = 2  # type: ignore[union-attr]
        a = side[edges[:, 0]]
        b = side[edges[:, 1]]
        if np.any((a == 1) & (b == 2)) or np.any((a == 2) & (b == 1)):
            return False
    return True
