"""k-neighborhood systems of point sets (Section 5 of the paper).

For points ``P = {p_1, ..., p_n}`` and fixed ``k``, the *k-neighborhood
ball* ``B_i`` is the largest ball centered at ``p_i`` whose open interior
contains at most ``k - 1`` points of ``P`` other than ``p_i`` — i.e. its
radius is the distance from ``p_i`` to its k-th nearest neighbor.  The
collection ``{B_1, ..., B_n}`` is the k-neighborhood system, and given the
radii the k-nearest-neighbor graph follows in O(log n) time on n
processors (Section 5.1), which is why the algorithms in this package
compute the system (in fact the full k-nearest lists).

:class:`KNeighborhoodSystem` is the result type shared by every algorithm
(brute force, kd-tree, grid, simple DnC, fast DnC): per-point neighbor
index lists and squared distances, sorted ascending, padded with ``-1`` /
``inf`` when a (sub)problem has fewer than ``k`` other points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import kernels
from ..geometry.balls import BallSystem
from ..geometry.points import as_points

__all__ = [
    "KNeighborhoodSystem",
    "merge_neighbor_lists",
    "merge_neighbor_lists_many",
    "brute_force_neighbors",
]


def brute_force_neighbors(
    points: np.ndarray,
    ids: np.ndarray,
    k: int,
    nbr_idx: np.ndarray,
    nbr_sq: np.ndarray,
) -> None:
    """All-pairs k nearest within ``points[ids]``, written into the global
    ``(nbr_idx, nbr_sq)`` arrays — the shared base-case kernel of both
    divide-and-conquer engines, dispatched through
    :func:`repro.kernels.block_topk`.

    Rows with fewer than ``k`` candidates are padded with ``-1`` / ``inf``.
    Cost accounting and statistics are the caller's responsibility.
    """
    m = ids.shape[0]
    if m <= 1:
        return
    sub = points[ids]
    kk = min(k, m - 1)
    local_idx, local_sq = kernels.block_topk(sub, kk)
    nbr_idx[ids, :kk] = ids[local_idx]
    nbr_sq[ids, :kk] = local_sq
    if kk < k:
        nbr_idx[ids, kk:] = -1
        nbr_sq[ids, kk:] = np.inf


@dataclass(frozen=True)
class KNeighborhoodSystem:
    """Exact k-nearest neighbor lists of a point set.

    Attributes
    ----------
    points:
        (n, d) input points.
    k:
        Number of neighbors per point.
    neighbor_indices:
        (n, k) int64; ``neighbor_indices[i]`` are the k nearest points to
        ``points[i]`` (self excluded), sorted by (distance, index); ``-1``
        pads rows when fewer than k neighbors exist.
    neighbor_sq_dists:
        (n, k) float64 squared distances matching ``neighbor_indices``;
        ``inf`` on padded slots.
    """

    points: np.ndarray
    k: int
    neighbor_indices: np.ndarray
    neighbor_sq_dists: np.ndarray

    def __post_init__(self) -> None:
        # dtype=None: float32 point storage passes through without a
        # silent float64 upcast copy (neighbor arrays stay int64/float64)
        pts = as_points(self.points, dtype=None)
        n = pts.shape[0]
        idx = np.asarray(self.neighbor_indices, dtype=np.int64)
        sq = np.asarray(self.neighbor_sq_dists, dtype=np.float64)
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if idx.shape != (n, self.k) or sq.shape != (n, self.k):
            raise ValueError(
                f"neighbor arrays must be ({n}, {self.k}); got {idx.shape} and {sq.shape}"
            )
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "neighbor_indices", idx)
        object.__setattr__(self, "neighbor_sq_dists", sq)

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def radii(self) -> np.ndarray:
        """k-neighborhood ball radii: distance to the k-th neighbor.

        ``inf`` where the list is incomplete (fewer than k real neighbors).
        """
        last = self.neighbor_sq_dists[:, -1]
        return np.sqrt(last)

    def to_ball_system(self) -> BallSystem:
        """The k-neighborhood system as an explicit ball collection."""
        return BallSystem(self.points, self.radii)

    def is_complete(self) -> bool:
        """True when every list holds k real (finite) neighbors."""
        return bool(np.isfinite(self.neighbor_sq_dists).all())

    def validate_sorted(self) -> bool:
        """Internal invariant: rows sorted ascending by squared distance."""
        sq = self.neighbor_sq_dists
        return bool(np.all(sq[:, 1:] >= sq[:, :-1]))

    def same_distances(self, other: "KNeighborhoodSystem", *, rtol: float = 1e-9, atol: float = 1e-10) -> bool:
        """Distance-level equality (robust to ties permuting equal-distance ids)."""
        if len(self) != len(other) or self.k != other.k:
            return False
        a, b = self.neighbor_sq_dists, other.neighbor_sq_dists
        both_inf = np.isinf(a) & np.isinf(b)
        return bool(np.allclose(np.where(both_inf, 0.0, a), np.where(both_inf, 0.0, b), rtol=rtol, atol=atol))


def merge_neighbor_lists(
    idx_a: np.ndarray,
    sq_a: np.ndarray,
    idx_b: np.ndarray,
    sq_b: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two candidate lists for one point into its k best.

    Inputs need not be sorted; duplicates (same index) are dropped keeping
    the smaller distance; output is sorted by (distance, index) and padded
    to length k with (-1, inf).
    """
    idx = np.concatenate([np.asarray(idx_a, dtype=np.int64), np.asarray(idx_b, dtype=np.int64)])
    sq = np.concatenate([np.asarray(sq_a, dtype=np.float64), np.asarray(sq_b, dtype=np.float64)])
    real = idx >= 0
    idx, sq = idx[real], sq[real]
    if idx.size:
        # collapse duplicate ids to their smallest distance, then order the
        # survivors by (distance, id)
        uniq_ids, inv = np.unique(idx, return_inverse=True)
        best_sq = np.full(uniq_ids.size, np.inf)
        np.minimum.at(best_sq, inv, sq)
        order = np.lexsort((uniq_ids, best_sq))
        idx, sq = uniq_ids[order], best_sq[order]
    out_idx = np.full(k, -1, dtype=np.int64)
    out_sq = np.full(k, np.inf)
    take = min(k, idx.size)
    out_idx[:take] = idx[:take]
    out_sq[:take] = sq[:take]
    return out_idx, out_sq


def merge_neighbor_lists_many(
    rows: np.ndarray,
    idx: np.ndarray,
    sq: np.ndarray,
    n_rows: int,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`merge_neighbor_lists` over a flat candidate stream.

    ``(rows[i], idx[i], sq[i])`` is one candidate for query row ``rows[i]``;
    candidates need not be sorted or grouped and ``idx < 0`` entries are
    padding.  Returns ``(n_rows, k)`` arrays with exactly what k calls to
    the scalar merge would produce per row — duplicates collapsed to their
    smallest distance, survivors sorted by (distance, id), short rows
    padded with (-1, inf) — dispatched through
    :func:`repro.kernels.merge_candidate_stream` instead of ``n_rows``
    Python-level merges.
    """
    rows = np.asarray(rows, dtype=np.int64)
    idx = np.asarray(idx, dtype=np.int64)
    sq = np.asarray(sq, dtype=np.float64)
    return kernels.merge_candidate_stream(rows, idx, sq, n_rows, k)
