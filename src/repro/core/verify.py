"""Independent verification of k-neighborhood systems.

The test suite mostly checks algorithm-vs-algorithm agreement; this module
checks outputs against the *definition* (Section 5.1): ``B_i`` is the
largest ball centered at ``p_i`` whose open interior contains at most
``k - 1`` other points.  Concretely, for every point:

1. **validity** — strictly fewer than k other points lie strictly inside
   the reported radius;
2. **maximality** — at least k other points lie within the closed radius
   (the k-th neighbor sits exactly on the boundary);
3. **list consistency** — the reported neighbor list's distances match
   the actual point distances and are sorted.

These checks are O(n^2) (they are *audits*, not algorithms) but chunked
and vectorized, so auditing tens of thousands of points is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..geometry.points import chunked_pairs, pairwise_sq_dists_direct
from .neighborhood import KNeighborhoodSystem

__all__ = ["VerificationReport", "verify_system"]


@dataclass
class VerificationReport:
    """Outcome of an audit; falsy when any point fails."""

    n: int
    k: int
    invalid_radius: List[int] = field(default_factory=list)
    not_maximal: List[int] = field(default_factory=list)
    bad_lists: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.invalid_radius or self.not_maximal or self.bad_lists)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return f"OK: {self.n} points audited against the k={self.k} definition"
        return (
            f"FAILED: invalid_radius={self.invalid_radius[:5]}... "
            f"not_maximal={self.not_maximal[:5]}... bad_lists={self.bad_lists[:5]}..."
        )


def verify_system(
    system: KNeighborhoodSystem,
    *,
    rtol: float = 1e-9,
    chunk: int = 512,
) -> VerificationReport:
    """Audit a k-neighborhood system against its definition.

    Points whose lists are padded (subproblems smaller than k+1 points)
    are exempt from maximality — their ball is legitimately unbounded —
    but still checked for validity of the finite prefix.
    """
    pts = system.points
    n, k = len(system), system.k
    report = VerificationReport(n=n, k=k)
    nbr_sq = system.neighbor_sq_dists
    nbr_idx = system.neighbor_indices
    for lo, hi in chunked_pairs(n, chunk):
        sq = pairwise_sq_dists_direct(pts[lo:hi], pts)
        rows = np.arange(lo, hi)
        sq[rows - lo, rows] = np.inf  # self does not count
        radii_sq = nbr_sq[lo:hi, -1]
        tol = rtol * (1.0 + np.where(np.isfinite(radii_sq), radii_sq, 0.0))
        finite = np.isfinite(radii_sq)
        inside = (sq < (radii_sq - tol)[:, None]) & finite[:, None]
        strictly_inside = inside.sum(axis=1)
        bad_valid = np.flatnonzero(strictly_inside > k - 1)
        report.invalid_radius.extend((bad_valid + lo).tolist())
        within_closed = (sq <= (radii_sq + tol)[:, None]).sum(axis=1)
        bad_max = np.flatnonzero(finite & (within_closed < k))
        report.not_maximal.extend((bad_max + lo).tolist())
        # list consistency: reported distances equal actual distances
        for i in range(lo, hi):
            ids = nbr_idx[i]
            real = ids >= 0
            if not real.any():
                continue
            actual = sq[i - lo, ids[real]]
            claimed = nbr_sq[i, real]
            finite_prefix = nbr_sq[i, real]
            sorted_ok = bool((np.diff(finite_prefix) >= -1e-12).all())
            if not np.allclose(actual, claimed, rtol=1e-7, atol=1e-9) or not sorted_ok:
                report.bad_lists.append(i)
    return report
