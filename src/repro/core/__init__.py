"""The paper's algorithms: query structure (Sec. 3), punting processes
(Sec. 4), the O(log^2 n) simple DnC (Sec. 5) and the O(log n) fast DnC
(Sec. 6), plus the k-neighborhood/k-NN-graph result types they share.
"""

from .graph_separators import (
    GraphSeparatorNode,
    elimination_fill,
    build_separator_tree,
    check_separation,
    nested_dissection_order,
    separator_profile,
)
from .config import (
    DTYPES,
    ENGINE_REGISTRY,
    ENGINES,
    KERNEL_BACKENDS,
    KERNEL_REGISTRY,
    CommonConfig,
    EngineSpec,
    KernelSpec,
    supports_renamed_fields,
)
from .correction import (
    MarchResult,
    apply_candidate_pairs,
    apply_candidate_pairs_batch,
    march_balls,
    query_correction_pairs,
)
from .fast_dnc import (
    FastDnCConfig,
    FastDnCResult,
    FastDnCStats,
    parallel_nearest_neighborhood,
)
from .knn_graph import adjacency_lists, knn_graph_edges, max_degree, to_networkx
from .neighborhood import (
    KNeighborhoodSystem,
    merge_neighbor_lists,
    merge_neighbor_lists_many,
)
from .online import (
    CommitInfo,
    MutableIndex,
    UpdateStats,
    equivalence_report,
    online_sample_size,
    tree_signature,
)
from .partition_tree import PartitionNode
from .punting import (
    DuplicationTrace,
    ab_tree_trials,
    punted_weighted_depth,
    simulate_ab_tree,
    simulate_duplication,
)
from .query_points import knn_query
from .query import NeighborhoodQueryStructure, QueryConfig, QueryNode, QueryStats
from .verify import VerificationReport, verify_system
from .simple_dnc import SimpleDnCConfig, SimpleDnCResult, SimpleDnCStats, simple_parallel_dnc

__all__ = [
    "GraphSeparatorNode",
    "build_separator_tree",
    "check_separation",
    "elimination_fill",
    "nested_dissection_order",
    "separator_profile",
    "CommonConfig",
    "EngineSpec",
    "ENGINE_REGISTRY",
    "ENGINES",
    "KernelSpec",
    "KERNEL_REGISTRY",
    "KERNEL_BACKENDS",
    "DTYPES",
    "supports_renamed_fields",
    "MarchResult",
    "apply_candidate_pairs",
    "apply_candidate_pairs_batch",
    "march_balls",
    "query_correction_pairs",
    "FastDnCConfig",
    "FastDnCResult",
    "FastDnCStats",
    "parallel_nearest_neighborhood",
    "adjacency_lists",
    "knn_graph_edges",
    "max_degree",
    "to_networkx",
    "KNeighborhoodSystem",
    "merge_neighbor_lists",
    "merge_neighbor_lists_many",
    "PartitionNode",
    "CommitInfo",
    "MutableIndex",
    "UpdateStats",
    "equivalence_report",
    "online_sample_size",
    "tree_signature",
    "DuplicationTrace",
    "ab_tree_trials",
    "punted_weighted_depth",
    "simulate_ab_tree",
    "simulate_duplication",
    "knn_query",
    "NeighborhoodQueryStructure",
    "QueryConfig",
    "QueryNode",
    "QueryStats",
    "SimpleDnCConfig",
    "SimpleDnCResult",
    "SimpleDnCStats",
    "simple_parallel_dnc",
    "VerificationReport",
    "verify_system",
]
