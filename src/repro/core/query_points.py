"""k-NN queries for *new* points against a built partition tree.

The divide and conquer's partition tree (Section 6) is not only scaffolding
for corrections — it is a search structure.  For a query point q:

1. descend to q's leaf and take the k nearest among the leaf's points
   (a first, possibly too-large, radius estimate);
2. march the ball B(q, r_k) down the tree exactly like a straddling ball
   in Fast Correction (Lemma 6.3's reachability guarantees every point
   within r_k is found);
3. merge the found candidates — the radius can only shrink, so one round
   is exact.

This turns every :class:`~repro.core.fast_dnc.FastDnCResult` into a
reusable index: build once with the paper's algorithm, query forever.

Descent runs over a contiguous :class:`~repro.kernels.FlatTree` layout
when the caller supplies one (``repro.serve`` and ``repro.Index`` cache
it per snapshot/version); otherwise it falls back to the pointer-walking
generator.  Both paths classify every query with the same row-local
side tests, so results are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..geometry.points import as_points, pairwise_sq_dists_direct
from ..kernels.layout import FlatTree
from .correction import march_balls
from .neighborhood import merge_neighbor_lists_many
from .partition_tree import PartitionNode

__all__ = ["knn_query"]


def knn_query(
    tree: PartitionNode,
    points: np.ndarray,
    queries: np.ndarray,
    k: int = 1,
    *,
    layout: Optional[FlatTree] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k nearest data points for each query row.

    Parameters
    ----------
    tree:
        Partition tree over ``points`` (e.g. ``FastDnCResult.tree``).
    points:
        The (n, d) data array the tree's leaf indices refer to.
    queries:
        (q, d) query points (need not be data points).
    k:
        Neighbors per query, ``1 <= k <= n``.
    layout:
        Optional :class:`~repro.kernels.FlatTree` of ``tree``; when given
        (and sphere-only), phase-1 descent runs over the contiguous
        layout through the active kernel backend instead of the pointer
        walk — same leaves, same results, less interpreter traffic.

    Returns
    -------
    (indices, sq_dists):
        Each (q, k), sorted ascending by (distance, index); padded with
        (-1, inf) when fewer than k data points exist.
    """
    pts = as_points(points, min_points=1, dtype=None)
    qs = as_points(queries, dtype=None)
    if pts.shape[1] != qs.shape[1]:
        raise ValueError(
            f"dimension mismatch: data is {pts.shape[1]}-D, queries are {qs.shape[1]}-D"
        )
    n = pts.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must satisfy 1 <= k <= n, got k={k}, n={n}")
    nq = qs.shape[0]
    out_idx = np.full((nq, k), -1, dtype=np.int64)
    out_sq = np.full((nq, k), np.inf)
    if nq == 0:
        return out_idx, out_sq

    # phase 1: leaf estimates, by vectorized group descent — all queries
    # landing in one leaf share a single distance-matrix evaluation, and
    # every row's k best come out of one flat stream merge
    if layout is not None:
        groups = layout.leaf_groups(qs)
    else:
        groups = ((leaf.indices, rows) for leaf, rows in tree.leaves_of_points(qs))
    cand_rows, cand_ids, cand_sq = [], [], []
    for ids, rows in groups:
        if not ids.shape[0]:
            continue
        sq = pairwise_sq_dists_direct(qs[rows], pts[ids])
        take = min(k, ids.shape[0])
        if take < ids.shape[0]:
            sel = np.argpartition(sq, take - 1, axis=1)[:, :take]
            sq = np.take_along_axis(sq, sel, axis=1)
            picked = ids[sel]
        else:
            picked = np.broadcast_to(ids, (rows.shape[0], ids.shape[0]))
        cand_rows.append(np.repeat(rows, picked.shape[1]))
        cand_ids.append(picked.ravel())
        cand_sq.append(sq.ravel())
    if cand_rows:
        out_idx, out_sq = merge_neighbor_lists_many(
            np.concatenate(cand_rows),
            np.concatenate(cand_ids),
            np.concatenate(cand_sq),
            nq,
            k,
        )
    radii = np.sqrt(out_sq[:, -1])  # inf when the leaf was too small

    # phase 2: march the query balls; reachability finds every point
    # within the current k-th distance, so one flat merge of the marched
    # candidates against the leaf estimates is exact
    result = march_balls(tree, pts, qs, radii)
    if result.pairs:
        rows = result.ball_rows
        cands = result.point_ids
        # upcast before subtracting: float32 storage still compares in
        # float64 (copy=False keeps the f64 path allocation-free)
        diff = pts[cands].astype(np.float64, copy=False) - qs[rows].astype(
            np.float64, copy=False
        )
        sq = np.einsum("md,md->m", diff, diff)
        out_idx, out_sq = merge_neighbor_lists_many(
            np.concatenate([rows, np.repeat(np.arange(nq, dtype=np.int64), k)]),
            np.concatenate([cands, out_idx.ravel()]),
            np.concatenate([sq, out_sq.ravel()]),
            nq,
            k,
        )
    return out_idx, out_sq
