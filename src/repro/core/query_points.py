"""k-NN queries for *new* points against a built partition tree.

The divide and conquer's partition tree (Section 6) is not only scaffolding
for corrections — it is a search structure.  For a query point q:

1. descend to q's leaf and take the k nearest among the leaf's points
   (a first, possibly too-large, radius estimate);
2. march the ball B(q, r_k) down the tree exactly like a straddling ball
   in Fast Correction (Lemma 6.3's reachability guarantees every point
   within r_k is found);
3. merge the found candidates — the radius can only shrink, so one round
   is exact.

This turns every :class:`~repro.core.fast_dnc.FastDnCResult` into a
reusable index: build once with the paper's algorithm, query forever.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..geometry.points import as_points, pairwise_sq_dists_direct
from .correction import march_balls
from .neighborhood import merge_neighbor_lists
from .partition_tree import PartitionNode

__all__ = ["knn_query"]


def knn_query(
    tree: PartitionNode,
    points: np.ndarray,
    queries: np.ndarray,
    k: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k nearest data points for each query row.

    Parameters
    ----------
    tree:
        Partition tree over ``points`` (e.g. ``FastDnCResult.tree``).
    points:
        The (n, d) data array the tree's leaf indices refer to.
    queries:
        (q, d) query points (need not be data points).
    k:
        Neighbors per query, ``1 <= k <= n``.

    Returns
    -------
    (indices, sq_dists):
        Each (q, k), sorted ascending by (distance, index); padded with
        (-1, inf) when fewer than k data points exist.
    """
    pts = as_points(points, min_points=1)
    qs = as_points(queries)
    if pts.shape[1] != qs.shape[1]:
        raise ValueError(
            f"dimension mismatch: data is {pts.shape[1]}-D, queries are {qs.shape[1]}-D"
        )
    n = pts.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must satisfy 1 <= k <= n, got k={k}, n={n}")
    nq = qs.shape[0]
    out_idx = np.full((nq, k), -1, dtype=np.int64)
    out_sq = np.full((nq, k), np.inf)
    if nq == 0:
        return out_idx, out_sq

    # phase 1: leaf estimates
    radii = np.empty(nq)
    for i in range(nq):
        leaf = tree.leaf_of_point(qs[i])
        ids = leaf.indices
        if ids.shape[0]:
            sq = pairwise_sq_dists_direct(qs[i : i + 1], pts[ids])[0]
            take = min(k, ids.shape[0])
            sel = np.argpartition(sq, take - 1)[:take] if take < ids.shape[0] else np.arange(ids.shape[0])
            out_idx[i], out_sq[i] = merge_neighbor_lists(
                ids[sel], sq[sel], np.empty(0, dtype=np.int64), np.empty(0), k
            )
        radii[i] = np.sqrt(out_sq[i, -1])  # inf when the leaf was too small

    # phase 2: march the query balls; reachability finds every point
    # within the current k-th distance, so merging is exact
    result = march_balls(tree, pts, qs, radii)
    if result.pairs:
        order = np.argsort(result.ball_rows, kind="stable")
        rows = result.ball_rows[order]
        cands = result.point_ids[order]
        bounds = np.flatnonzero(np.concatenate(([True], rows[1:] != rows[:-1])))
        bounds = np.append(bounds, rows.shape[0])
        for b in range(bounds.shape[0] - 1):
            lo, hi = bounds[b], bounds[b + 1]
            qi = int(rows[lo])
            ids = cands[lo:hi]
            diff = pts[ids] - qs[qi]
            sq = np.einsum("md,md->m", diff, diff)
            out_idx[qi], out_sq[qi] = merge_neighbor_lists(
                out_idx[qi], out_sq[qi], ids, sq, k
            )
    return out_idx, out_sq
