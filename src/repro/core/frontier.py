"""Frontier engine: level-synchronous batched execution of the recursion.

The recursive engines execute the divide and conquer node-at-a-time, so
wall-clock cost is O(#nodes) Python interpreter overhead even though the
cost ledger reports O(log n) depth.  This module restructures the
*executed* shape to match the *accounted* shape: each level of the
partition tree is one **frontier** — a segmented vector of point ids plus
segment offsets — and the whole frontier advances with batched numpy
passes:

- separator search runs in lockstep rounds across every active segment,
  with sampler construction (the iterated-Radon centerpoint SVDs — the
  dominant cost) batched via :func:`~repro.separators.batch.prepare_samplers`
  and candidate evaluation batched via
  :func:`~repro.separators.batch.batched_side_of_points`;
- the divide step is one :func:`~repro.pvm.primitives.segmented_split`
  over the concatenated ids of the level;
- base cases resolve segment-by-segment as the frontier reaches them;
- the same :class:`~repro.core.partition_tree.PartitionNode` tree is then
  reconstructed and correction runs level-by-level bottom-up.

Equivalence contract
--------------------
A frontier run is *indistinguishable* from a recursive run with the same
seed: identical neighbor arrays, identical partition tree, and an
identical (depth, work) ledger.  Three mechanisms make this exact:

1. **Per-node RNG** — both engines derive each node's generator from the
   seed root and the node's 0/1 path (:func:`~repro.util.rng.path_rng`),
   so streams don't depend on traversal order.
2. **Bit-stable batching** — every batched numpy pass is bitwise equal to
   its per-node counterpart (row-local sphere tests; stacked LAPACK SVDs;
   integer segmented splits).  Hyperplane candidates, whose BLAS product
   is not batch-stable, are evaluated per segment.
3. **Analytic per-node cost folds** — the frontier never charges the
   machine while executing; it replays each node's charge sequence as a
   local Cost fold (punt-path costs are captured on a sub-machine seeded
   with the fold so far, keeping float association identical to the
   recursive engine's untraced frames), composes the folds bottom-up with
   the same ``pre . (left || right) . post`` algebra, and charges the
   root's total once.

Observability differs by design: instead of one span per node, the
frontier emits one ``frontier.level`` span per level and phase (``build``
then ``correct``) with segment-count and straddler attributes; phase
totals still accumulate in ``machine.sections`` via
:meth:`~repro.pvm.machine.Machine.attribute`.  See ``docs/engines.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import kernels
from ..geometry.balls import BallSystem
from ..geometry.spheres import Sphere
from ..pvm.cost import Cost, ZERO
from ..pvm.machine import Machine
from ..separators.batch import (
    batched_side_of_points,
    prepare_samplers,
    side_split_is_good,
)
from ..separators.hyperplane import _SELECTION_ROUNDS, median_hyperplane
from ..separators.quality import default_delta
from ..separators.unit_time import _ATTEMPT_SERIAL_COST
from ..util.rng import path_rng
from .correction import (
    apply_candidate_pairs,
    apply_candidate_pairs_batch,
    march_balls,
    query_correction_pairs,
)
from .neighborhood import brute_force_neighbors
from .partition_tree import PartitionNode

__all__ = ["run_fast_frontier", "run_simple_frontier"]

# Mirrors the ``refresh_every`` default of
# :func:`repro.separators.unit_time.find_good_separator`.
_REFRESH_EVERY = 16


@dataclass
class _Seg:
    """One frontier segment = one partition-tree node in flight.

    ``ids`` is a view into the level's flat id vector; ``pre_cost`` folds
    the node's divide/base charges in recursion order, ``post_cost`` its
    correction charges, and ``total_cost`` the composed subtree cost.
    """

    ids: np.ndarray
    level: int
    path: Tuple[int, ...]
    rng: Optional[np.random.Generator] = None
    separator: object = None
    side: Optional[np.ndarray] = None
    attempts: int = 0
    is_leaf: bool = False
    pre_cost: Cost = ZERO
    divide_cost: Cost = ZERO
    post_cost: Cost = ZERO
    total_cost: Cost = ZERO
    left: Optional["_Seg"] = None
    right: Optional["_Seg"] = None
    node: Optional[PartitionNode] = None


class _FrontierBase:
    """Shared frontier machinery: level loop, tree linking, cost algebra."""

    _NS = ""

    def __init__(
        self, points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ) -> None:
        self.points = points
        self.k = k
        self.machine = machine
        self.root_ss = root_ss
        self.config = config
        self.stats = stats
        self.nbr_idx = nbr_idx
        self.nbr_sq = nbr_sq
        self.base = base
        self.dim = points.shape[1]
        self.select_depth = 1.0 if k == 1 else 1.0 + math.log2(math.log2(k) + 2.0)

    # -- level loop ------------------------------------------------------

    def run(self) -> PartitionNode:
        n = self.points.shape[0]
        root = _Seg(ids=np.arange(n, dtype=np.int64), level=0, path=())
        levels = self._build_levels([root])
        self._link_nodes(levels)
        self._correct_levels(levels)
        with self.machine.span("frontier.total"):
            self.machine.charge(self._compose_costs(levels))
        return root.node

    def _build_levels(self, frontier: List[_Seg]) -> List[List[_Seg]]:
        """Advance ``frontier`` level by level until every segment has
        resolved, returning the per-level segment lists."""
        levels: List[List[_Seg]] = []
        while frontier:
            levels.append(frontier)
            lvl = frontier[0].level
            points_at_level = int(sum(s.ids.shape[0] for s in frontier))
            with self.machine.span(
                "frontier.level",
                phase="build",
                level=lvl,
                segments=len(frontier),
                points=points_at_level,
            ) as span:
                frontier = self._build_level(frontier, span)
        return levels

    def solve_subtree(self, seg: _Seg) -> List[List[_Seg]]:
        """Solve one subtree to completion: build all its levels, link its
        partition nodes, run its bottom-up correction and compose its
        costs — exactly the serial recursion restricted to ``seg``.

        Unlike :meth:`run`, no root charge happens here: the composed
        subtree total lands in ``seg.total_cost`` and the caller (the
        ``frontier-mp`` master) folds it into the global root charge.
        This is the coarse-grained entry point the multiprocess engine
        ships to workers — because it *is* the serial code, every RNG
        draw, punt decision and float fold matches the serial engine's
        by construction.
        """
        levels = self._build_levels([seg])
        self._link_nodes(levels)
        self._correct_levels(levels)
        self._compose_costs(levels)
        return levels

    def _rng_of(self, seg: _Seg) -> np.random.Generator:
        if seg.rng is None:
            seg.rng = path_rng(self.root_ss, seg.path)
        return seg.rng

    def _leaf(self, seg: _Seg) -> None:
        """Resolve a segment as a base case (mirrors the recursive brute)."""
        m = seg.ids.shape[0]
        seg.is_leaf = True
        self.stats.base_cases += 1
        self.machine.metrics.observe(f"{self._NS}.base_case_sizes", m)
        base_cost = Cost(float(m), float(m) * float(m))
        seg.pre_cost = seg.pre_cost.then(base_cost)
        self.machine.attribute("base", base_cost)
        brute_force_neighbors(self.points, seg.ids, self.k, self.nbr_idx, self.nbr_sq)

    def _split_segments(self, split_segs: List[_Seg]) -> List[_Seg]:
        """Divide every accepted segment at once: one fused classify+pack
        kernel pass over the level's concatenated ids and raw sides
        (interior = ``side < 0`` first keeps the recursive engine's stable
        ``ids[side < 0]`` / ``ids[side > 0]`` ordering bit-for-bit)."""
        lengths = np.array([s.ids.shape[0] for s in split_segs], dtype=np.int64)
        flat_ids = np.concatenate([s.ids for s in split_segs])
        sides = np.concatenate([s.side for s in split_segs])
        seg_ids = np.repeat(np.arange(len(split_segs)), lengths)
        out, false_counts = kernels.segmented_split_sides(flat_ids, sides, seg_ids)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        children: List[_Seg] = []
        for j, seg in enumerate(split_segs):
            lo, hi = int(offsets[j]), int(offsets[j + 1])
            cut = lo + int(false_counts[j])
            seg.left = _Seg(ids=out[lo:cut], level=seg.level + 1, path=seg.path + (0,))
            seg.right = _Seg(ids=out[cut:hi], level=seg.level + 1, path=seg.path + (1,))
            children.append(seg.left)
            children.append(seg.right)
        return children

    def _link_nodes(self, levels: List[List[_Seg]]) -> None:
        for level_segs in reversed(levels):
            for seg in level_segs:
                if seg.is_leaf:
                    seg.node = PartitionNode(indices=seg.ids)
                else:
                    seg.node = PartitionNode(
                        indices=seg.ids,
                        separator=seg.separator,
                        left=seg.left.node,
                        right=seg.right.node,
                    )

    def _correct_levels(self, levels: List[List[_Seg]]) -> None:
        """Bottom-up correction sweep: children always correct before their
        parent reads the (updated) neighbor radii, exactly as in the
        recursive post-order; same-level segments are index-disjoint."""
        for level_segs in reversed(levels):
            internal = [s for s in level_segs if not s.is_leaf]
            if not internal:
                continue
            with self.machine.span(
                "frontier.level",
                phase="correct",
                level=internal[0].level,
                segments=len(internal),
            ) as span:
                straddlers = 0
                for seg in internal:
                    straddlers += self._correct_node(seg)
                    self.machine.attribute("correct", seg.post_cost)
                if span is not None:
                    span.attrs["straddlers"] = int(straddlers)

    def _compose_costs(self, levels: List[List[_Seg]]) -> Cost:
        """Fold per-node costs bottom-up with the recursion's algebra:
        ``pre . (left || right) . post`` per internal node."""
        for level_segs in reversed(levels):
            for seg in level_segs:
                if seg.is_leaf:
                    seg.total_cost = seg.pre_cost
                else:
                    branches = ZERO.beside(seg.left.total_cost).beside(seg.right.total_cost)
                    seg.total_cost = seg.pre_cost.then(branches).then(seg.post_cost)
        return levels[0][0].total_cost

    # -- punt-path capture ----------------------------------------------

    def _captured_query_pairs(self, cost: Cost, system: BallSystem, opposite_ids, rng):
        """Run the query-structure correction on a sub-machine seeded with
        the node's cost fold so far.

        Seeding keeps the float association of subsequent charges identical
        to the recursive engine, where they fold flat into the same frame.
        The sub-machine shares the metrics registry; its counters are
        merged back directly (not via ``bump``, which would double-count
        the metrics side).
        """
        sub = Machine(scan=self.machine.scan_policy, metrics=self.machine.metrics)
        sub.charge(cost)
        ball_rows, point_ids = query_correction_pairs(
            system, self.points[opposite_ids], opposite_ids, sub, rng, self.config.query
        )
        for key, value in sub.counters.items():
            self.machine.counters[key] = self.machine.counters.get(key, 0) + value
        return sub, ball_rows, point_ids

    # -- subclass hooks --------------------------------------------------

    def _build_level(self, segs: List[_Seg], span) -> List[_Seg]:
        raise NotImplementedError

    def _correct_node(self, seg: _Seg) -> int:
        raise NotImplementedError


class _FastFrontier(_FrontierBase):
    """Frontier execution of Section 6's Parallel Nearest Neighborhood."""

    _NS = "fast"

    def _build_level(self, segs: List[_Seg], span) -> List[_Seg]:
        active: List[_Seg] = []
        for seg in segs:
            self.stats.nodes += 1
            if seg.ids.shape[0] <= self.base:
                self._leaf(seg)
            else:
                active.append(seg)
        if span is not None:
            span.attrs["base_segments"] = len(segs) - len(active)
        if not active:
            return []
        self._find_separators(active)
        split_segs = [s for s in active if s.separator is not None]
        for seg in active:
            if seg.separator is None:
                # pathological multiset: brute-force this segment, exactly
                # like the recursive SeparatorFailure handler.
                self.stats.punts_separator += 1
                self._leaf(seg)
        if span is not None:
            span.attrs["separator_failures"] = len(active) - len(split_segs)
        if not split_segs:
            return []
        for seg in split_segs:
            m = seg.ids.shape[0]
            seg.pre_cost = (
                seg.pre_cost
                .then(self.machine.ewise_cost(m, 2.0))
                .then(self.machine.scan_cost(m).then(self.machine.permute_cost(m)))
            )
        return self._split_segments(split_segs)

    def _find_separators(self, active: List[_Seg]) -> None:
        """Lockstep replication of ``find_good_separator`` across segments.

        Round ``r`` performs attempt ``r`` of every still-searching
        segment: the per-attempt charges fold into each segment's divide
        cost in the recursive order, draw failures skip the refresh check
        (as the recursive ``continue`` does), candidate quality is
        evaluated in one batched pass, and every 16th attempt the failed
        segments rebuild their samplers together.  Each segment consumes
        only its own per-node generator, so acceptance happens at exactly
        the attempt the recursive engine would accept.
        """
        machine = self.machine
        config = self.config
        target = default_delta(self.dim, config.epsilon)
        subs = [self.points[seg.ids] for seg in active]
        samplers = prepare_samplers(
            subs, [self._rng_of(seg) for seg in active], sample_size=config.sample_size
        )
        divide: List[Cost] = [ZERO] * len(active)
        searching = list(range(len(active)))
        for attempt in range(1, config.max_attempts + 1):
            if not searching:
                break
            drew: List[int] = []
            candidates: List[object] = []
            for i in searching:
                m = subs[i].shape[0]
                divide[i] = (
                    divide[i]
                    .then(machine.serial_cost(_ATTEMPT_SERIAL_COST))
                    .then(machine.ewise_cost(m, 3.0))
                    .then(machine.scan_cost(m))
                )
                machine.bump("separator_attempts")
                try:
                    candidate = samplers[i].draw()
                except RuntimeError:
                    machine.bump("separator_draw_failures")
                    continue
                drew.append(i)
                candidates.append(candidate)
            accepted = set()
            if drew:
                sides = batched_side_of_points(candidates, [subs[i] for i in drew])
                for i, candidate, side in zip(drew, candidates, sides):
                    if side_split_is_good(side, target):
                        seg = active[i]
                        seg.separator = candidate
                        seg.side = side
                        seg.attempts = attempt
                        self.stats.separator_attempts += attempt
                        accepted.add(i)
            searching = [i for i in searching if i not in accepted]
            if attempt % _REFRESH_EVERY == 0:
                # only segments that drew (and failed quality) this round
                # reach the recursive engine's refresh line
                refresh = [i for i in searching if i in set(drew)]
                if refresh:
                    rebuilt = prepare_samplers(
                        [subs[i] for i in refresh],
                        [self._rng_of(active[i]) for i in refresh],
                        sample_size=config.sample_size,
                    )
                    for i, sampler in zip(refresh, rebuilt):
                        samplers[i] = sampler
        for i, seg in enumerate(active):
            seg.pre_cost = seg.pre_cost.then(divide[i])
            seg.divide_cost = divide[i]
            machine.attribute("divide", divide[i])

    # -- correction (mirrors _Runner.correct) ----------------------------

    def _correct_levels(self, levels: List[List[_Seg]]) -> None:
        """Level-batched override: classify every segment's balls against
        its separator in one pass, run the per-node correction decisions,
        and defer all candidate-pair merges to one vectorised flush.

        Deferring within a level is bitwise-safe because same-level nodes
        hold disjoint index sets: every read a correction performs (ball
        radii, straddler lists) touches only rows its own node owns, which
        no other same-level node's merge can alter.  The flush still
        happens before the parent level runs, preserving the recursive
        post-order's child-before-parent dependency.
        """
        for level_segs in reversed(levels):
            internal = [s for s in level_segs if not s.is_leaf]
            if not internal:
                continue
            with self.machine.span(
                "frontier.level",
                phase="correct",
                level=internal[0].level,
                segments=len(internal),
            ) as span:
                punts_before = self.stats.punts_iota + self.stats.punts_marching
                classified = self._classify_level(internal)
                self._pending_owners: List[np.ndarray] = []
                self._pending_cands: List[np.ndarray] = []
                straddlers = 0
                for seg, (cls_in, cls_ex) in zip(internal, classified):
                    straddlers += self._correct_node(seg, cls_in, cls_ex)
                    self.machine.attribute("correct", seg.post_cost)
                self._flush_level_pairs()
                if span is not None:
                    span.attrs["straddlers"] = int(straddlers)
                    span.attrs["punts"] = int(
                        self.stats.punts_iota
                        + self.stats.punts_marching
                        - punts_before
                    )

    def _classify_level(self, internal: List[_Seg]):
        """Both-side ball classification for every internal segment of one
        level, sphere separators batched into a single flat pass.

        The sphere test (``|center - c| - r`` against the ball radius) is
        row-local, so the batched result is bitwise identical to per-node
        :meth:`~repro.geometry.spheres.Sphere.classify_balls`; the rare
        hyperplane separator falls back to the per-node call.
        """
        classified = [None] * len(internal)
        sides: List[Tuple[int, np.ndarray]] = []
        for j, seg in enumerate(internal):
            sep = seg.node.separator
            if isinstance(sep, Sphere):
                sides.append((j, seg.left.ids))
                sides.append((j, seg.right.ids))
            else:
                classified[j] = (
                    sep.classify_balls(
                        self.points[seg.left.ids],
                        np.sqrt(self.nbr_sq[seg.left.ids, -1]),
                    ),
                    sep.classify_balls(
                        self.points[seg.right.ids],
                        np.sqrt(self.nbr_sq[seg.right.ids, -1]),
                    ),
                )
        if sides:
            lengths = np.array([ids.shape[0] for _, ids in sides], dtype=np.int64)
            flat_ids = np.concatenate([ids for _, ids in sides])
            centers = np.stack(
                [internal[j].node.separator.center for j, _ in sides], axis=0
            )
            sep_radii = np.array(
                [internal[j].node.separator.radius for j, _ in sides], dtype=np.float64
            )
            rows = np.repeat(np.arange(len(sides)), lengths)
            ball_radii = np.sqrt(self.nbr_sq[flat_ids, -1])
            cls_flat = kernels.classify_level_spheres(
                self.points, flat_ids, rows, centers, sep_radii, ball_radii
            )
            bounds = np.concatenate(([0], np.cumsum(lengths)))
            for pair in range(0, len(sides), 2):
                j = sides[pair][0]
                classified[j] = (
                    cls_flat[bounds[pair] : bounds[pair + 1]],
                    cls_flat[bounds[pair + 1] : bounds[pair + 2]],
                )
        return classified

    def _flush_level_pairs(self) -> None:
        if self._pending_owners:
            apply_candidate_pairs_batch(
                self.points,
                self.nbr_idx,
                self.nbr_sq,
                np.concatenate(self._pending_owners),
                np.concatenate(self._pending_cands),
                self.k,
            )
        self._pending_owners = []
        self._pending_cands = []

    def _correct_node(self, seg: _Seg, cls_in: np.ndarray, cls_ex: np.ndarray) -> int:
        node = seg.node
        m = node.size
        machine = self.machine
        in_ids = seg.left.ids
        ex_ids = seg.right.ids
        cost = ZERO.then(machine.ewise_cost(m, 2.0)).then(machine.scan_cost(m))
        straddle_in = in_ids[cls_in == 0]
        straddle_ex = ex_ids[cls_ex == 0]
        iota = straddle_in.shape[0] + straddle_ex.shape[0]
        self.stats.straddler_fraction.append((m, iota))
        node.meta["iota"] = iota
        node.meta["punted"] = False
        if iota == 0:
            self.stats.corrections_none += 1
            seg.post_cost = cost
            return iota
        if iota >= self.config.iota_budget(m, self.dim, self.k):
            self.stats.punts_iota += 1
            node.meta["punted"] = True
            cost = self._query_correct(cost, straddle_in, ex_ids, self._rng_of(seg))
            cost = self._query_correct(cost, straddle_ex, in_ids, self._rng_of(seg))
            seg.post_cost = cost
            return iota
        cost, ok_a = self._fast_correct(cost, seg, straddle_in, node.right, m)
        cost, ok_b = self._fast_correct(cost, seg, straddle_ex, node.left, m)
        if ok_a and ok_b:
            self.stats.corrections_fast += 1
        else:
            node.meta["punted"] = True
        seg.post_cost = cost
        return iota

    def _fast_correct(
        self,
        cost: Cost,
        seg: _Seg,
        straddlers: np.ndarray,
        opposite_tree: Optional[PartitionNode],
        m: int,
    ) -> Tuple[Cost, bool]:
        if straddlers.shape[0] == 0 or opposite_tree is None:
            return cost, True
        centers = self.points[straddlers]
        radii = np.sqrt(self.nbr_sq[straddlers, -1])
        cap = self.config.active_cap(m, self.dim, self.k)
        result = march_balls(opposite_tree, self.points, centers, radii, active_cap=cap)
        self.stats.marching_level_active.append((m, list(result.level_active)))
        if not result.succeeded:
            self.stats.punts_marching += 1
            cost = self._query_correct(
                cost, straddlers, opposite_tree.indices, self._rng_of(seg)
            )
            return cost, False
        work = float(result.label_tests + result.leaf_tests + result.pairs * (self.k + 1))
        cost = cost.then(Cost(self.config.fc_depth + self.select_depth, max(work, 1.0)))
        self._pending_owners.append(straddlers[result.ball_rows])
        self._pending_cands.append(result.point_ids)
        return cost, True

    def _query_correct(
        self, cost: Cost, straddlers: np.ndarray, opposite_ids: np.ndarray, rng
    ) -> Cost:
        if straddlers.shape[0] == 0 or opposite_ids.shape[0] == 0:
            return cost
        self.machine.metrics.inc("fast.punt_corrections")
        radii = np.sqrt(self.nbr_sq[straddlers, -1])
        system = BallSystem(self.points[straddlers], radii)
        sub, ball_rows, point_ids = self._captured_query_pairs(
            cost, system, opposite_ids, rng
        )
        sub.charge(
            Cost(self.select_depth, float(max(1, point_ids.shape[0] * (self.k + 1))))
        )
        self._pending_owners.append(straddlers[ball_rows])
        self._pending_cands.append(point_ids)
        return sub.total


class _SimpleFrontier(_FrontierBase):
    """Frontier execution of Section 5's Simple Parallel DnC."""

    _NS = "simple"

    def _build_level(self, segs: List[_Seg], span) -> List[_Seg]:
        active: List[_Seg] = []
        for seg in segs:
            self.stats.nodes += 1
            if seg.ids.shape[0] <= self.base:
                self._leaf(seg)
            else:
                active.append(seg)
        if span is not None:
            span.attrs["base_segments"] = len(segs) - len(active)
        split_segs: List[_Seg] = []
        for seg in active:
            if self._divide_segment(seg):
                split_segs.append(seg)
        if not split_segs:
            return []
        return self._split_segments(split_segs)

    def _divide_segment(self, seg: _Seg) -> bool:
        """Try a median-hyperplane cut of one segment; returns whether the
        segment split (``separator``/``side`` set) or degenerated to a
        leaf.  Shared by the serial frontier and the worker-side shard
        kernel of the ``frontier-mp`` engine."""
        machine = self.machine
        m = seg.ids.shape[0]
        sub = self.points[seg.ids]
        axis = seg.level % self.dim if self.config.rotate_axes else None
        divide = ZERO
        plane = None
        # the recursive engine retries with axis=None on failure —
        # charging and bumping per attempt even when the first attempt
        # already had axis=None
        for try_axis in (axis, None):
            attempt_cost = machine.ewise_cost(m, _SELECTION_ROUNDS).then(
                machine.scan_cost(m).scaled(_SELECTION_ROUNDS)
            )
            divide = divide.then(attempt_cost)
            machine.bump("hyperplane_cuts")
            try:
                plane = median_hyperplane(sub, axis=try_axis)
                break
            except ValueError:
                plane = None
        if plane is None:
            seg.pre_cost = seg.pre_cost.then(divide)
            seg.divide_cost = divide
            machine.attribute("divide", divide)
            self.stats.degenerate_cuts += 1
            self._leaf(seg)
            return False
        side = plane.side_of_points(sub)
        divide = (
            divide
            .then(machine.ewise_cost(m, 2.0))
            .then(machine.scan_cost(m).then(machine.permute_cost(m)))
        )
        seg.pre_cost = seg.pre_cost.then(divide)
        seg.divide_cost = divide
        machine.attribute("divide", divide)
        interior = int(np.count_nonzero(side < 0))
        if interior == 0 or interior == m:
            self.stats.degenerate_cuts += 1
            self._leaf(seg)
            return False
        seg.separator = plane
        seg.side = side
        return True

    def _correct_node(self, seg: _Seg) -> int:
        node = seg.node
        sep = node.separator
        m = node.size
        machine = self.machine
        cost = ZERO
        total_straddlers = 0
        in_ids, ex_ids = seg.left.ids, seg.right.ids
        for straddle_side, opposite in ((in_ids, ex_ids), (ex_ids, in_ids)):
            if straddle_side.shape[0] == 0 or opposite.shape[0] == 0:
                continue
            radii = np.sqrt(self.nbr_sq[straddle_side, -1])
            cls = sep.classify_balls(self.points[straddle_side], radii)
            cost = cost.then(machine.ewise_cost(straddle_side.shape[0], 2.0))
            straddlers = straddle_side[cls == 0]
            self.stats.straddler_fraction.append((m, int(straddlers.shape[0])))
            if straddlers.shape[0] == 0:
                continue
            total_straddlers += int(straddlers.shape[0])
            system = BallSystem(
                self.points[straddlers], np.sqrt(self.nbr_sq[straddlers, -1])
            )
            sub, ball_rows, point_ids = self._captured_query_pairs(
                cost, system, opposite, self._rng_of(seg)
            )
            sub.charge(
                Cost(self.select_depth, float(max(1, point_ids.shape[0] * (self.k + 1))))
            )
            apply_candidate_pairs(
                self.points,
                self.nbr_idx,
                self.nbr_sq,
                straddlers,
                ball_rows,
                point_ids,
                self.k,
            )
            cost = sub.total
        seg.post_cost = cost
        return total_straddlers


def run_fast_frontier(
    points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
) -> PartitionNode:
    """Frontier-engine drive of the fast algorithm; same contract (and,
    seed-for-seed, the same output and ledger) as the recursive
    ``_Runner`` in :mod:`repro.core.fast_dnc`."""
    return _FastFrontier(
        points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ).run()


def run_simple_frontier(
    points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
) -> PartitionNode:
    """Frontier-engine drive of the simple algorithm; same contract (and,
    seed-for-seed, the same output and ledger) as the recursive closures
    in :mod:`repro.core.simple_dnc`."""
    return _SimpleFrontier(
        points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ).run()
