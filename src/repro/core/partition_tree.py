"""Partition trees of spheres produced by the divide and conquer.

The fast algorithm (Section 6) does not only *use* separators to divide —
it keeps them: the recursion's tree of spheres is exactly the structure
the Fast Correction marches straddling balls down (Lemma 6.3).  A
:class:`PartitionNode` therefore records the separator, the global indices
of the points it governs, and its children; leaves hold the indices
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

from ..geometry.spheres import Hyperplane, Sphere

__all__ = ["PartitionNode"]

SeparatorLike = Union[Sphere, Hyperplane]


def _as_float(points: np.ndarray) -> np.ndarray:
    """Float view of query points, preserving float32 storage.

    Descent arithmetic upcasts float32 coordinates elementwise inside the
    side-test kernels, so keeping the array in its stored dtype avoids a
    full silent upcast copy per query batch without changing a single
    classified side.
    """
    pts = np.asarray(points)
    if pts.dtype not in (np.float32, np.float64):
        pts = pts.astype(np.float64)
    return pts


@dataclass
class PartitionNode:
    """One node of the divide-and-conquer partition tree.

    ``indices`` are global point ids (into the original array) of every
    point in this node's subproblem.  Internal nodes have a ``separator``
    and exactly two children (interior = left, exterior = right); leaves
    have neither.
    """

    indices: np.ndarray
    separator: Optional[SeparatorLike] = None
    left: Optional["PartitionNode"] = None
    right: Optional["PartitionNode"] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        internal = self.separator is not None
        if internal != (self.left is not None and self.right is not None):
            raise ValueError("internal nodes need a separator and two children; leaves neither")

    @property
    def is_leaf(self) -> bool:
        return self.separator is None

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    def height(self) -> int:
        """Length (in edges) of the longest root-leaf path.

        Iterative (explicit stack): degenerate workloads can produce trees
        far deeper than Python's recursion limit.
        """
        best = 0
        stack = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                best = max(best, depth)
            else:
                stack.append((node.left, depth + 1))  # type: ignore[arg-type]
                stack.append((node.right, depth + 1))  # type: ignore[arg-type]
        return best

    def leaves(self) -> Iterator["PartitionNode"]:
        """All leaves, left to right (iterative, deep-tree safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def nodes(self) -> Iterator["PartitionNode"]:
        """All nodes, preorder (iterative, deep-tree safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def leaf_of_point(self, point: np.ndarray) -> "PartitionNode":
        """Descend by point-in-sphere tests to the leaf owning ``point``.

        On-separator points descend left (interior), matching the paper's
        query convention.
        """
        node = self
        p = _as_float(point)[None, :]
        while not node.is_leaf:
            side = node.separator.side_of_points(p)[0]  # type: ignore[union-attr]
            node = node.left if side < 0 else node.right  # type: ignore[assignment]
        return node

    def leaves_of_points(
        self, points: np.ndarray
    ) -> Iterator[tuple["PartitionNode", np.ndarray]]:
        """Group-descend many points at once: yields ``(leaf, rows)``.

        Vectorized :meth:`leaf_of_point`: every tree node tests all of its
        surviving rows in one ``side_of_points`` call, so the descent costs
        O(nodes touched) array operations instead of O(points x height)
        scalar ones.  Each row takes exactly the per-point route (side < 0
        left, else right), so ``leaf`` is identical to
        ``leaf_of_point(points[r])`` for every yielded row ``r``; leaves
        arrive left to right and the yielded ``rows`` partition the input.
        """
        pts = _as_float(points)
        if pts.shape[0] == 1:  # scalar descent, skip the group bookkeeping
            yield self.leaf_of_point(pts[0]), np.zeros(1, dtype=np.int64)
            return
        stack = [(self, np.arange(pts.shape[0], dtype=np.int64))]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                yield node, rows
                continue
            side = node.separator.side_of_points(pts[rows])  # type: ignore[union-attr]
            interior = side < 0
            right_rows = rows[~interior]
            if right_rows.shape[0]:
                stack.append((node.right, right_rows))  # type: ignore[arg-type]
            left_rows = rows[interior]
            if left_rows.shape[0]:
                stack.append((node.left, left_rows))  # type: ignore[arg-type]

    def check_partition(self) -> bool:
        """Invariant: children's indices partition the parent's (as sets)."""
        for node in self.nodes():
            if node.is_leaf:
                continue
            combined = np.sort(
                np.concatenate([node.left.indices, node.right.indices])  # type: ignore[union-attr]
            )
            if combined.shape != node.indices.shape or not np.array_equal(
                combined, np.sort(node.indices)
            ):
                return False
        return True
