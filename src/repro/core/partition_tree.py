"""Partition trees of spheres produced by the divide and conquer.

The fast algorithm (Section 6) does not only *use* separators to divide —
it keeps them: the recursion's tree of spheres is exactly the structure
the Fast Correction marches straddling balls down (Lemma 6.3).  A
:class:`PartitionNode` therefore records the separator, the global indices
of the points it governs, and its children; leaves hold the indices
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

from ..geometry.spheres import Hyperplane, Sphere

__all__ = ["PartitionNode"]

SeparatorLike = Union[Sphere, Hyperplane]


@dataclass
class PartitionNode:
    """One node of the divide-and-conquer partition tree.

    ``indices`` are global point ids (into the original array) of every
    point in this node's subproblem.  Internal nodes have a ``separator``
    and exactly two children (interior = left, exterior = right); leaves
    have neither.
    """

    indices: np.ndarray
    separator: Optional[SeparatorLike] = None
    left: Optional["PartitionNode"] = None
    right: Optional["PartitionNode"] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        internal = self.separator is not None
        if internal != (self.left is not None and self.right is not None):
            raise ValueError("internal nodes need a separator and two children; leaves neither")

    @property
    def is_leaf(self) -> bool:
        return self.separator is None

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    def height(self) -> int:
        """Length (in edges) of the longest root-leaf path.

        Iterative (explicit stack): degenerate workloads can produce trees
        far deeper than Python's recursion limit.
        """
        best = 0
        stack = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                best = max(best, depth)
            else:
                stack.append((node.left, depth + 1))  # type: ignore[arg-type]
                stack.append((node.right, depth + 1))  # type: ignore[arg-type]
        return best

    def leaves(self) -> Iterator["PartitionNode"]:
        """All leaves, left to right (iterative, deep-tree safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def nodes(self) -> Iterator["PartitionNode"]:
        """All nodes, preorder (iterative, deep-tree safe)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def leaf_of_point(self, point: np.ndarray) -> "PartitionNode":
        """Descend by point-in-sphere tests to the leaf owning ``point``.

        On-separator points descend left (interior), matching the paper's
        query convention.
        """
        node = self
        p = np.asarray(point, dtype=np.float64)[None, :]
        while not node.is_leaf:
            side = node.separator.side_of_points(p)[0]  # type: ignore[union-attr]
            node = node.left if side < 0 else node.right  # type: ignore[assignment]
        return node

    def check_partition(self) -> bool:
        """Invariant: children's indices partition the parent's (as sets)."""
        for node in self.nodes():
            if node.is_leaf:
                continue
            combined = np.sort(
                np.concatenate([node.left.indices, node.right.indices])  # type: ignore[union-attr]
            )
            if combined.shape != node.indices.shape or not np.array_equal(
                combined, np.sort(node.indices)
            ):
                return False
        return True
