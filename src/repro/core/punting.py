"""The Punting Lemma machinery (Sections 4 and 6.4 of the paper).

Two stochastic processes are analysed in the paper and simulated here:

**Probabilistic (a, b)-trees** (Section 4).  A complete binary tree with n
leaves; a node whose subtree has m leaves gets weight ``a(m)`` with
probability ``1 - 1/m`` and ``b(m)`` with probability ``1/m``.  ``RD(n)``
is the maximum over leaves of the sum of weights along the root path.  The
Punting Lemma (4.1): for the (0, log m)-tree,

    Pr[RD(n) > 2c log n] <= n * A * e^{-c log n},   A = e^{rho/(1-rho)},
    rho = sqrt(e)/2,

and Corollary 4.1 adds a constant ``C`` per node.  This models
"run-A-first-if-unlucky-then-run-B": weight 0 is the fast correction,
weight log m is the punt.

**The weighted duplication process** (Section 6.4, Lemma 6.5).  Models the
ball-marching: a node of weight w either (w.p. ``1/w^beta``) duplicates its
full weight into both children (a bad separator that cuts everything) or
splits ``w`` into ``w0`` and ``w - w0 + w^alpha`` where an *adversary*
picks ``w0`` (the ``w^alpha`` term is the expected duplication of a good
separator).  ``X(W, K)`` is the total leaf weight; Lemma 6.5 bounds it by
``O(g(W) log W)`` with ``g(W) = W + 2^{(1-alpha)K}(1+eps) K W^alpha``.

Both simulators are vectorized level-by-level so tails can be estimated
from thousands of trials in the experiments (E6, E7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..util.rng import as_generator

__all__ = [
    "simulate_ab_tree",
    "ab_tree_trials",
    "DuplicationTrace",
    "simulate_duplication",
    "punted_weighted_depth",
]


def simulate_ab_tree(
    n: int,
    rng: object = None,
    *,
    a: Callable[[int], float] = lambda m: 0.0,
    b: Callable[[int], float] = lambda m: math.log2(m),
) -> float:
    """One draw of RD(n): the max weighted root-leaf depth.

    ``n`` must be a power of two >= 2.  Level ``l`` (root = 0) has ``2^l``
    nodes, each with ``m = n / 2^l`` leaves below; each independently takes
    weight ``b(m)`` with probability ``1/m``, else ``a(m)``.  Leaves
    themselves (m = 1) carry no weight.  Vectorized: path sums propagate
    down by repetition.
    """
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    gen = as_generator(rng)
    levels = int(math.log2(n))
    path = np.zeros(1)
    for level in range(levels):
        m = n >> level
        count = 1 << level
        bad = gen.random(count) < (1.0 / m)
        weights = np.where(bad, float(b(m)), float(a(m)))
        path = np.repeat(path + weights, 2)
    return float(path.max())


def ab_tree_trials(
    n: int,
    trials: int,
    rng: object = None,
    *,
    a: Callable[[int], float] = lambda m: 0.0,
    b: Callable[[int], float] = lambda m: math.log2(m),
) -> np.ndarray:
    """Independent draws of RD(n) (for tail-vs-bound plots, experiment E6)."""
    gen = as_generator(rng)
    return np.array([simulate_ab_tree(n, gen, a=a, b=b) for _ in range(trials)])


@dataclass
class DuplicationTrace:
    """One run of the Section 6.4 duplication process."""

    level_totals: List[float]
    leaf_total: float
    duplications: int

    @property
    def max_level_total(self) -> float:
        return max(self.level_totals)


def simulate_duplication(
    W: float,
    K: int,
    rng: object = None,
    *,
    alpha: float = 0.9,
    beta: Optional[float] = None,
    w_bar: float = 8.0,
    adversary: str = "half",
) -> DuplicationTrace:
    """Simulate the weighted duplication process on a depth-K binary tree.

    Parameters mirror Lemma 6.5: ``alpha`` in ((2d-1)/(2d), 1) and
    ``beta = alpha - (d-1)/d`` (default: chosen so alpha + beta > 1 via
    ``beta = 2*alpha - 1`` when not given, the d-free analogue).  The
    ``adversary`` picks ``w0`` on a good step: ``"half"`` (w/2),
    ``"extreme"`` (keeps everything left), or ``"random"``.

    Node recursion: weight ``w`` at height ``k``; stop when ``k == 0`` or
    ``w <= w_bar``; else with probability ``w^-beta`` both children get
    ``w`` (a duplication event), otherwise children get ``w0`` and
    ``w - w0 + w^alpha``.
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    b = beta if beta is not None else max(0.05, 2 * alpha - 1.0)
    if adversary not in ("half", "extreme", "random"):
        raise ValueError(f"unknown adversary {adversary!r}")
    gen = as_generator(rng)
    level_totals: List[float] = []
    leaf_total = 0.0
    duplications = 0
    frontier = np.array([W], dtype=np.float64)
    heights = K
    for k in range(heights, -1, -1):
        if frontier.size == 0:
            break
        level_totals.append(float(frontier.sum()))
        stopped = (frontier <= w_bar) | (k == 0)
        leaf_total += float(frontier[stopped].sum())
        active = frontier[~stopped]
        if active.size == 0:
            frontier = np.empty(0)
            continue
        dup = gen.random(active.size) < active ** (-b)
        duplications += int(dup.sum())
        dup_children = np.repeat(active[dup], 2)
        good = active[~dup]
        if adversary == "half":
            w0 = good / 2.0
        elif adversary == "extreme":
            w0 = good.copy()
        else:
            w0 = gen.random(good.size) * good
        left = w0
        right = good - w0 + good**alpha
        frontier = np.concatenate([dup_children, left, right])
        # drop zero-weight children (adversary "extreme" leaves nothing left)
        frontier = frontier[frontier > 0]
    return DuplicationTrace(level_totals=level_totals, leaf_total=leaf_total, duplications=duplications)


def punted_weighted_depth(tree) -> float:
    """Max over root-leaf paths of ``sum(log2 m_v)`` over punted nodes.

    ``tree`` is a :class:`~repro.core.partition_tree.PartitionNode` whose
    internal nodes carry ``meta["punted"]`` (set by the fast algorithm);
    this is the random variable the Punting Lemma bounds for the real run
    (Theorem 6.1's weight assignment w(v)).
    """

    def walk(node) -> float:
        own = math.log2(max(2, node.size)) if node.meta.get("punted") else 0.0
        if node.is_leaf:
            return own
        return own + max(walk(node.left), walk(node.right))

    return walk(tree)
