"""k-nearest-neighbor graphs (Definition 1.1 of the paper).

The graph has an edge ``(p_i, p_j)`` whenever either point is among the
other's k nearest.  Given the k-neighborhood system (which every algorithm
in :mod:`repro.core` produces), building the edge set is the cheap last
step the paper dispatches in one sentence: symmetrise the directed lists,
deduplicate, done — O(log n) depth with scans, O(nk) work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..pvm.machine import Machine
from .neighborhood import KNeighborhoodSystem

__all__ = ["knn_graph_edges", "adjacency_lists", "to_networkx", "max_degree"]


def knn_graph_edges(system: KNeighborhoodSystem, machine: Optional[Machine] = None) -> np.ndarray:
    """Undirected edge set as a sorted, deduplicated (m, 2) int array.

    Each row ``(i, j)`` has ``i < j``.  Padded (-1) neighbor slots are
    ignored.  When a :class:`~repro.pvm.machine.Machine` is supplied the
    symmetrisation is charged as one elementwise pass plus a constant
    number of scans over the nk directed arcs (sort-by-scan radix over
    fixed-width keys).
    """
    n, k = len(system), system.k
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = system.neighbor_indices.reshape(-1)
    keep = dst >= 0
    src, dst = src[keep], dst[keep]
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    if lo.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if machine is not None:
        # run the real scan-vector program: encode arcs as integers, sort
        # with the split radix sort (O(log n) one-bit passes), deduplicate
        # by comparing sorted neighbors (one elementwise pass + pack)
        from ..pvm.primitives import pack
        from ..pvm.sorting import split_radix_sort

        machine.charge(machine.ewise_cost(int(src.shape[0]), 2.0))  # min/max encode
        keys = lo * n + hi
        bits = max(1, int(keys.max()).bit_length())
        sorted_keys, _ = split_radix_sort(machine, keys, bits=bits)
        first = np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        machine.charge(machine.ewise_cost(int(sorted_keys.shape[0])))
        uniq = pack(machine, sorted_keys, first)
        machine.charge(machine.ewise_cost(int(uniq.shape[0]), 2.0))  # decode
        return np.stack([uniq // n, uniq % n], axis=1)
    edges = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return edges


def adjacency_lists(system: KNeighborhoodSystem) -> list[np.ndarray]:
    """Per-vertex sorted neighbor arrays of the undirected graph."""
    edges = knn_graph_edges(system)
    n = len(system)
    deg = np.zeros(n, dtype=np.int64)
    np.add.at(deg, edges[:, 0], 1)
    np.add.at(deg, edges[:, 1], 1)
    out: list[list[int]] = [[] for _ in range(n)]
    for a, b in edges:
        out[a].append(int(b))
        out[b].append(int(a))
    return [np.array(sorted(v), dtype=np.int64) for v in out]


def max_degree(system: KNeighborhoodSystem) -> int:
    """Maximum degree of the undirected graph (bounded by tau_d * k + k)."""
    edges = knn_graph_edges(system)
    if edges.shape[0] == 0:
        return 0
    n = len(system)
    deg = np.zeros(n, dtype=np.int64)
    np.add.at(deg, edges[:, 0], 1)
    np.add.at(deg, edges[:, 1], 1)
    return int(deg.max())


def to_networkx(system: KNeighborhoodSystem):
    """Export as a ``networkx.Graph`` with point coordinates as node attrs.

    Imported lazily; networkx is an optional (test/benchmark) dependency.
    """
    import networkx as nx

    g = nx.Graph()
    for i, p in enumerate(system.points):
        g.add_node(i, pos=tuple(p))
    g.add_edges_from(map(tuple, knn_graph_edges(system)))
    return g
