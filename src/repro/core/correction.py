"""Correction of straddling balls (Sections 5, 6.1–6.2 of the paper).

After the two half-problems of a divide step are solved, only the balls
that intersect the separator can be wrong (Lemma 6.1): their recursive
radius may still be too large because the true k-th neighbor sits on the
other side.  Correcting ball ``B_i`` means finding every opposite-side
point strictly inside ``B_i`` and re-taking the k best candidates.

Two implementations, exactly as in the paper:

- **Fast Correction** (Section 6.2): march the straddling balls down the
  opposite side's partition tree.  A ball moves into every child whose
  region it can intersect (duplicating at nodes it straddles — the
  *reachability* relation of Lemma 6.3); at the leaves, ball-point
  containment is tested exhaustively.  The march is abandoned (and the
  caller punts) if the number of active ball instances at any level
  exceeds the ``m^(1-eta)`` cap of Lemma 6.2.
- **Query correction** (Section 5 / the punt path): build a
  :class:`~repro.core.query.NeighborhoodQueryStructure` over the straddling
  balls and query every opposite-side point against it.

Both produce (ball, candidate point) pairs; :func:`apply_candidate_pairs`
merges them into the global neighbor lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.balls import BallSystem
from ..pvm.machine import Machine
from .neighborhood import merge_neighbor_lists
from .partition_tree import PartitionNode
from .query import NeighborhoodQueryStructure, QueryConfig

__all__ = [
    "MarchResult",
    "march_balls",
    "apply_candidate_pairs",
    "apply_candidate_pairs_batch",
    "query_correction_pairs",
]


@dataclass
class MarchResult:
    """Outcome of marching straddlers down a partition tree."""

    ball_rows: np.ndarray
    point_ids: np.ndarray
    level_active: List[int] = field(default_factory=list)
    label_tests: int = 0
    leaf_tests: int = 0
    succeeded: bool = True

    @property
    def pairs(self) -> int:
        return int(self.ball_rows.shape[0])


def march_balls(
    tree: PartitionNode,
    points: np.ndarray,
    ball_centers: np.ndarray,
    ball_radii: np.ndarray,
    *,
    active_cap: Optional[float] = None,
) -> MarchResult:
    """March balls down ``tree`` and report strict-containment pairs.

    ``ball_centers``/``ball_radii`` describe the straddling balls (rows are
    the caller's ball identifiers); ``points`` is the *global* coordinate
    array the tree's leaf indices refer to.  A ball with infinite radius
    reaches every leaf and contains every point.

    Returns a :class:`MarchResult` whose ``ball_rows[i]``/``point_ids[i]``
    are one (ball row, global point id) candidate pair.  When ``active_cap``
    is given and the number of active ball instances on some level exceeds
    it, marching stops early with ``succeeded=False`` (the caller punts to
    the query structure — Lemma 6.2's low-probability branch).
    """
    nballs = ball_centers.shape[0]
    result = MarchResult(
        ball_rows=np.empty(0, dtype=np.int64), point_ids=np.empty(0, dtype=np.int64)
    )
    if nballs == 0:
        return result
    out_rows: List[np.ndarray] = []
    out_pts: List[np.ndarray] = []
    frontier: List[Tuple[PartitionNode, np.ndarray]] = [
        (tree, np.arange(nballs, dtype=np.int64))
    ]
    while frontier:
        level_count = sum(rows.shape[0] for _, rows in frontier)
        result.level_active.append(level_count)
        if active_cap is not None and level_count > active_cap:
            result.succeeded = False
            return result
        next_frontier: List[Tuple[PartitionNode, np.ndarray]] = []
        for node, rows in frontier:
            if node.is_leaf:
                pts_ids = node.indices
                if pts_ids.shape[0] == 0 or rows.shape[0] == 0:
                    continue
                centers = ball_centers[rows]
                radii = ball_radii[rows]
                qq = points[pts_ids]
                result.leaf_tests += rows.shape[0] * pts_ids.shape[0]
                # diff-based kernel: leaves are small, and containment at
                # tiny radii must not suffer GEMM cancellation; upcast
                # before subtracting so float32 storage still compares
                # in float64 (copy=False: f64 inputs pass through)
                centers = centers.astype(np.float64, copy=False)
                qq = qq.astype(np.float64, copy=False)
                diff = centers[:, None, :] - qq[None, :, :]
                sq = np.einsum("bnd,bnd->bn", diff, diff)
                inside = sq < np.square(radii)[:, None]
                inside |= np.isinf(radii)[:, None]
                bi, pi = np.nonzero(inside)
                out_rows.append(rows[bi])
                out_pts.append(pts_ids[pi])
                continue
            sep = node.separator
            cls = sep.classify_balls(ball_centers[rows], ball_radii[rows])  # type: ignore[union-attr]
            result.label_tests += int(rows.shape[0])
            left_rows = rows[cls <= 0]
            right_rows = rows[cls >= 0]
            if left_rows.shape[0]:
                next_frontier.append((node.left, left_rows))  # type: ignore[arg-type]
            if right_rows.shape[0]:
                next_frontier.append((node.right, right_rows))  # type: ignore[arg-type]
        frontier = next_frontier
    if out_rows:
        result.ball_rows = np.concatenate(out_rows)
        result.point_ids = np.concatenate(out_pts)
    return result


def apply_candidate_pairs(
    points: np.ndarray,
    nbr_idx: np.ndarray,
    nbr_sq: np.ndarray,
    owner_ids: np.ndarray,
    ball_rows: np.ndarray,
    point_ids: np.ndarray,
    k: int,
) -> int:
    """Merge candidate pairs into the global neighbor lists, in place.

    ``owner_ids[r]`` is the global point owning ball row ``r``.  For each
    owner with candidates, its list is re-taken as the k best of (current
    list ∪ candidates).  Self-pairs are ignored.  Returns the number of
    owners whose lists changed.
    """
    if ball_rows.shape[0] == 0:
        return 0
    owners = owner_ids[ball_rows]
    keep = owners != point_ids
    owners, cands = owners[keep], point_ids[keep]
    if owners.shape[0] == 0:
        return 0
    diff = points[owners].astype(np.float64, copy=False) - points[cands].astype(
        np.float64, copy=False
    )
    cand_sq = np.einsum("ij,ij->i", diff, diff)
    order = np.argsort(owners, kind="stable")
    owners, cands, cand_sq = owners[order], cands[order], cand_sq[order]
    boundaries = np.flatnonzero(np.concatenate(([True], owners[1:] != owners[:-1])))
    boundaries = np.append(boundaries, owners.shape[0])
    changed = 0
    for b in range(boundaries.shape[0] - 1):
        lo, hi = boundaries[b], boundaries[b + 1]
        g = owners[lo]
        new_idx, new_sq = merge_neighbor_lists(
            nbr_idx[g], nbr_sq[g], cands[lo:hi], cand_sq[lo:hi], k
        )
        if not np.array_equal(new_idx, nbr_idx[g]) or not np.array_equal(new_sq, nbr_sq[g]):
            changed += 1
        nbr_idx[g] = new_idx
        nbr_sq[g] = new_sq
    return changed


def apply_candidate_pairs_batch(
    points: np.ndarray,
    nbr_idx: np.ndarray,
    nbr_sq: np.ndarray,
    owners: np.ndarray,
    cands: np.ndarray,
    k: int,
) -> int:
    """Fully vectorised :func:`apply_candidate_pairs` over global pairs.

    ``owners[i]`` is the global point whose list candidate ``cands[i]``
    may enter.  Per owner the result is bitwise identical to
    :func:`merge_neighbor_lists` (dedupe by id keeping the smallest
    distance, order by (distance, id), take the k best, pad with
    ``-1``/``inf``) — no distance is ever recomputed differently, only
    copied — so the frontier engine can defer every correction of one tree
    level (whose owners are disjoint across same-level nodes) into a
    single call.  Returns the number of owners whose lists changed.
    """
    if owners.shape[0] == 0:
        return 0
    keep = owners != cands
    owners, cands = owners[keep], cands[keep]
    if owners.shape[0] == 0:
        return 0
    diff = points[owners].astype(np.float64, copy=False) - points[cands].astype(
        np.float64, copy=False
    )
    cand_sq = np.einsum("ij,ij->i", diff, diff)
    uniq_owners = np.unique(owners)
    t = uniq_owners.shape[0]
    cur_idx = nbr_idx[uniq_owners]
    cur_sq = nbr_sq[uniq_owners]
    # one flat pool of (owner-row, candidate id, squared distance) holding
    # both the current lists and the new candidates
    pool_rows = np.concatenate(
        [np.repeat(np.arange(t), k), np.searchsorted(uniq_owners, owners)]
    )
    pool_ids = np.concatenate([cur_idx.ravel(), cands])
    pool_sq = np.concatenate([cur_sq.ravel(), cand_sq])
    real = pool_ids >= 0
    pool_rows, pool_ids, pool_sq = pool_rows[real], pool_ids[real], pool_sq[real]
    # collapse duplicate (owner, id) entries to their smallest distance
    order = np.lexsort((pool_sq, pool_ids, pool_rows))
    pool_rows, pool_ids, pool_sq = pool_rows[order], pool_ids[order], pool_sq[order]
    first = np.concatenate(
        ([True], (pool_rows[1:] != pool_rows[:-1]) | (pool_ids[1:] != pool_ids[:-1]))
    )
    pool_rows, pool_ids, pool_sq = pool_rows[first], pool_ids[first], pool_sq[first]
    # order survivors by (distance, id) within each owner, keep the k best
    order = np.lexsort((pool_ids, pool_sq, pool_rows))
    pool_rows, pool_ids, pool_sq = pool_rows[order], pool_ids[order], pool_sq[order]
    starts = np.searchsorted(pool_rows, np.arange(t))
    rank = np.arange(pool_rows.shape[0]) - starts[pool_rows]
    keep = rank < k
    pool_rows, pool_ids, pool_sq, rank = (
        pool_rows[keep],
        pool_ids[keep],
        pool_sq[keep],
        rank[keep],
    )
    new_idx = np.full((t, k), -1, dtype=np.int64)
    new_sq = np.full((t, k), np.inf)
    new_idx[pool_rows, rank] = pool_ids
    new_sq[pool_rows, rank] = pool_sq
    changed = int(
        np.count_nonzero(
            np.any(new_idx != cur_idx, axis=1) | np.any(new_sq != cur_sq, axis=1)
        )
    )
    nbr_idx[uniq_owners] = new_idx
    nbr_sq[uniq_owners] = new_sq
    return changed


def query_correction_pairs(
    straddlers: BallSystem,
    opposite_points: np.ndarray,
    opposite_ids: np.ndarray,
    machine: Optional[Machine],
    seed: object,
    config: QueryConfig,
) -> Tuple[np.ndarray, np.ndarray]:
    """The punt path: query structure over straddlers, probe opposite points.

    Returns ``(ball_rows, point_ids)`` candidate pairs with global point
    ids, shaped like :func:`march_balls` output.  Build and query costs are
    charged to ``machine`` (the O(log m)-depth fallback of the Punting
    Lemma analysis).
    """
    if len(straddlers) == 0 or opposite_points.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if machine is not None:
        with machine.span(
            "correct.query",
            straddlers=len(straddlers),
            opposite=int(opposite_points.shape[0]),
        ):
            structure = NeighborhoodQueryStructure(
                straddlers, machine=machine, seed=seed, config=config
            )
            point_rows, ball_rows = structure.query_many(opposite_points)
    else:
        structure = NeighborhoodQueryStructure(straddlers, machine=machine, seed=seed, config=config)
        point_rows, ball_rows = structure.query_many(opposite_points)
    return ball_rows, opposite_ids[point_rows]
