"""Parallel Nearest Neighborhood — the O(log n) algorithm (Section 6).

The headline contribution: compute the k-neighborhood system (and hence the
k-NN graph) of n points in R^d in randomized O(log n) depth with n
processors on the scan-vector model.

Structure, following the paper's pseudo-code verbatim:

1. base case: small subproblems solved by testing all pairs ("in m time
   using m processors");
2. otherwise, repeat the Unit Time Sphere Separator Algorithm until a
   sphere delta-splits the points;
3. recurse on interior and exterior *in parallel*;
4. **Correction**: if the straddler count ``iota`` is at most ``m^mu``,
   run Fast Correction (march straddlers down the opposite partition tree
   in O(1) depth, Lemma 6.3); otherwise *punt* — rebuild via the
   neighborhood query structure in O(log m) depth.  By the Punting Lemma
   (4.1) the punts cost only a constant factor overall.

The implementation is exact (Las-Vegas): randomness moves cost between the
fast path and the punt path but the returned neighbor lists always equal
the brute-force answer (up to distance ties).  Every probabilistic event
the analysis tracks — separator retries, iota sizes, marching level
actives, punts — is recorded in :class:`FastDnCStats` for experiments
E5/E7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..geometry.balls import BallSystem
from .. import kernels
from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from ..obs.metrics import MetricsView
from ..pvm.cost import Cost
from ..pvm.machine import Machine
from ..separators.quality import default_delta
from ..separators.unit_time import SeparatorFailure, find_good_separator
from ..util.recursion import estimated_tree_levels, recursion_guard
from ..util.rng import path_rng, seed_sequence_root
from .config import CommonConfig, supports_renamed_fields
from .correction import apply_candidate_pairs, march_balls, query_correction_pairs
from .neighborhood import KNeighborhoodSystem, brute_force_neighbors
from .partition_tree import PartitionNode
from .query import QueryConfig

__all__ = ["FastDnCConfig", "FastDnCStats", "FastDnCResult", "parallel_nearest_neighborhood"]

SeparatorLike = Union[Sphere, Hyperplane]


@supports_renamed_fields
@dataclass(frozen=True)
class FastDnCConfig(CommonConfig):
    """Parameters of the fast algorithm.

    ``mu`` (via ``mu_slack``) is the straddler-budget exponent of the
    separator theorem, ``(d-1)/d + slack``; a node whose straddler count
    exceeds ``iota_factor * m^mu`` punts immediately.  The marching cap is
    ``active_factor * m^active_exponent`` with ``active_exponent =
    mu + active_slack`` (Lemma 6.2's ``m^(1-eta)``).  ``base_case_size``
    (deprecated alias ``m0``) and ``base_factor`` set the brute-force
    base-case threshold ``max(base_case_size, base_factor * (k+1))`` —
    large enough that no recursive subproblem ever has fewer than k+1
    points on both sides of a split.  ``fc_depth`` is the constant depth
    charged for a successful Fast Correction (the paper's constant number
    of label-and-scan phases).  ``base_case_size``, ``seed``, ``mu``,
    ``iota_budget`` and ``base_size`` come from
    :class:`~repro.core.config.CommonConfig`.
    """

    base_factor: int = 4
    epsilon: float = 0.05
    mu_slack: float = 0.10
    iota_factor: float = 3.0
    active_factor: float = 4.0
    active_slack: float = 0.05
    max_attempts: int = 48
    sample_size: Optional[int] = None
    fc_depth: float = 4.0
    query: QueryConfig = field(default_factory=lambda: QueryConfig())

    def active_cap(self, m: int, d: int, k: int = 1) -> float:
        expo = min(0.99, self.mu(d) + self.active_slack)
        return max(8.0, self.active_factor * k ** (1.0 / d) * m**expo)


class FastDnCStats(MetricsView):
    """Event counts and probabilistic traces of one run.

    A thin view over a :class:`~repro.obs.metrics.Metrics` registry (keys
    namespaced ``fast.*``); the historical attribute surface — ``nodes``,
    ``base_cases``, ``separator_attempts``, ``punts_iota``,
    ``punts_marching``, ``punts_separator``, ``straddler_fraction``,
    ``marching_level_active``, ``corrections_fast``, ``corrections_none``
    — is unchanged.
    """

    _NS = "fast"
    _COUNTER_FIELDS = (
        "nodes",
        "base_cases",
        "separator_attempts",
        "punts_iota",
        "punts_marching",
        "punts_separator",
        "corrections_fast",
        "corrections_none",
    )
    _SERIES_FIELDS = ("straddler_fraction", "marching_level_active")

    @property
    def punts(self) -> int:
        """Total punt events (iota + marching + separator failures)."""
        return self.punts_iota + self.punts_marching + self.punts_separator


@dataclass
class FastDnCResult:
    """Output bundle: exact neighbor lists, the partition tree, statistics,
    and the machine whose ledger holds the parallel cost."""

    system: KNeighborhoodSystem
    tree: PartitionNode
    stats: FastDnCStats
    machine: Machine

    @property
    def cost(self) -> Cost:
        return self.machine.total


def parallel_nearest_neighborhood(
    points: np.ndarray,
    k: int = 1,
    *,
    machine: Optional[Machine] = None,
    seed: object = None,
    config: FastDnCConfig = FastDnCConfig(),
) -> FastDnCResult:
    """Compute the exact k-neighborhood system by sphere-separator DnC.

    Parameters
    ----------
    points:
        (n, d) input points, n >= 1.
    k:
        Neighbors per point (fixed small k is the paper's regime; any
        ``1 <= k < n`` works, with the predicted extra ``O(log log k)``
        depth factor charged on corrections).
    machine:
        Cost ledger; a fresh unit-scan :class:`Machine` by default.
    seed:
        RNG or seed (cost-only randomness; the output is deterministic
        up to distance ties).  ``None`` falls back to ``config.seed``.
    config:
        :class:`FastDnCConfig`.

    Returns
    -------
    FastDnCResult
        With exact ``system`` (validated against brute force in the test
        suite), the partition ``tree``, and ``stats``.
    """
    pts = as_points(points, min_points=1, dtype=config.np_dtype())
    n, d = pts.shape
    if not 1 <= k < max(2, n):
        raise ValueError(f"k must satisfy 1 <= k < n, got k={k}, n={n}")
    if machine is None:
        machine = Machine()
    root_ss = seed_sequence_root(seed if seed is not None else config.seed)
    stats = FastDnCStats(metrics=machine.metrics)
    nbr_idx = np.full((n, k), -1, dtype=np.int64)
    nbr_sq = np.full((n, k), np.inf)
    base = config.base_size(k)
    ids = np.arange(n, dtype=np.int64)
    with kernels.use_backend(config.kernels):
        if config.engine == "frontier":
            from .frontier import run_fast_frontier

            tree = run_fast_frontier(
                pts, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
            )
        elif config.engine == "frontier-mp":
            from ..parallel.engine import run_fast_frontier_mp

            tree = run_fast_frontier_mp(
                pts, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
            )
        else:
            runner = _Runner(
                pts, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
            )
            levels = estimated_tree_levels(n, base, default_delta(d, config.epsilon))
            with recursion_guard(levels):
                tree = runner.solve(ids)
    system = KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
    return FastDnCResult(system=system, tree=tree, stats=stats, machine=machine)


class _Runner:
    """Recursion state shared across the divide and conquer.

    Randomness is *per node*: each partition-tree node derives its own
    generator from the run's seed root and the node's 0/1 path
    (:func:`~repro.util.rng.path_rng`), so the stream a node consumes does
    not depend on traversal order.  The frontier engine
    (:mod:`repro.core.frontier`) derives the same streams, which is what
    makes the two engines produce identical runs from identical seeds.
    """

    def __init__(
        self,
        points: np.ndarray,
        k: int,
        machine: Machine,
        root_ss: np.random.SeedSequence,
        config: FastDnCConfig,
        stats: FastDnCStats,
        nbr_idx: np.ndarray,
        nbr_sq: np.ndarray,
        base: int,
    ) -> None:
        self.points = points
        self.k = k
        self.machine = machine
        self.root_ss = root_ss
        self.config = config
        self.stats = stats
        self.nbr_idx = nbr_idx
        self.nbr_sq = nbr_sq
        self.base = base
        self.dim = points.shape[1]

    # -- base case -----------------------------------------------------------

    def brute_force(self, ids: np.ndarray) -> None:
        """All-pairs k nearest within the subset; paper's deterministic base.

        Charged as depth m, work m^2 ("in m time using m processors").
        """
        m = ids.shape[0]
        self.stats.base_cases += 1
        self.machine.metrics.observe("fast.base_case_sizes", m)
        with self.machine.section("base"):
            self.machine.charge(Cost(float(m), float(m) * float(m)))
        brute_force_neighbors(self.points, ids, self.k, self.nbr_idx, self.nbr_sq)

    # -- recursion -------------------------------------------------------------

    def solve(self, ids: np.ndarray, level: int = 0, path: Tuple[int, ...] = ()) -> PartitionNode:
        with self.machine.span("fast.node", level=level, m=int(ids.shape[0])) as span:
            return self._solve(ids, level, path, span)

    def _solve(self, ids: np.ndarray, level: int, path: Tuple[int, ...], span) -> PartitionNode:
        m = ids.shape[0]
        self.stats.nodes += 1
        if m <= self.base:
            self.brute_force(ids)
            return PartitionNode(indices=ids)
        rng = path_rng(self.root_ss, path)
        sub = self.points[ids]
        try:
            with self.machine.section("divide"):
                separator, attempts = find_good_separator(
                    sub,
                    self.machine,
                    seed=rng,
                    epsilon=self.config.epsilon,
                    max_attempts=self.config.max_attempts,
                    sample_size=self.config.sample_size,
                )
            self.stats.separator_attempts += attempts
            if span is not None:
                span.attrs["separator_attempts"] = attempts
        except SeparatorFailure:
            # pathological multiset (e.g. almost all points identical):
            # solve this subproblem exhaustively — correctness first.
            self.stats.punts_separator += 1
            if span is not None:
                span.attrs["punted"] = True
            self.brute_force(ids)
            return PartitionNode(indices=ids)
        side = separator.side_of_points(sub)
        self.machine.charge(self.machine.ewise_cost(m, 2.0))
        self.machine.charge(self.machine.scan_cost(m).then(self.machine.permute_cost(m)))
        in_ids = ids[side < 0]
        ex_ids = ids[side > 0]
        children: List[Optional[PartitionNode]] = [None, None]
        with self.machine.parallel() as par:
            with par.branch():
                children[0] = self.solve(in_ids, level + 1, path + (0,))
            with par.branch():
                children[1] = self.solve(ex_ids, level + 1, path + (1,))
        node = PartitionNode(
            indices=ids, separator=separator, left=children[0], right=children[1]
        )
        with self.machine.section("correct"):
            self.correct(node, in_ids, ex_ids, rng)
        if span is not None:
            span.attrs["iota"] = node.meta.get("iota", 0)
            span.attrs["punted"] = node.meta.get("punted", False)
        return node

    # -- correction --------------------------------------------------------------

    def correct(
        self,
        node: PartitionNode,
        in_ids: np.ndarray,
        ex_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Fix straddling balls of both sides (Correction of Section 6.1)."""
        sep = node.separator
        assert sep is not None
        m = node.size
        d = self.dim
        radii_in = np.sqrt(self.nbr_sq[in_ids, -1])
        radii_ex = np.sqrt(self.nbr_sq[ex_ids, -1])
        cls_in = sep.classify_balls(self.points[in_ids], radii_in)
        cls_ex = sep.classify_balls(self.points[ex_ids], radii_ex)
        self.machine.charge(self.machine.ewise_cost(m, 2.0))
        self.machine.charge(self.machine.scan_cost(m))
        straddle_in = in_ids[cls_in == 0]
        straddle_ex = ex_ids[cls_ex == 0]
        iota = straddle_in.shape[0] + straddle_ex.shape[0]
        self.stats.straddler_fraction.append((m, iota))
        node.meta["iota"] = iota
        node.meta["punted"] = False
        if iota == 0:
            self.stats.corrections_none += 1
            return
        if iota >= self.config.iota_budget(m, d, self.k):
            self.stats.punts_iota += 1
            node.meta["punted"] = True
            self._query_correct(straddle_in, ex_ids, rng)
            self._query_correct(straddle_ex, in_ids, rng)
            return
        ok_a = self._fast_correct(node, straddle_in, node.right, m, rng)
        ok_b = self._fast_correct(node, straddle_ex, node.left, m, rng)
        if ok_a and ok_b:
            self.stats.corrections_fast += 1
        else:
            node.meta["punted"] = True

    def _fast_correct(
        self,
        node: PartitionNode,
        straddlers: np.ndarray,
        opposite_tree: Optional[PartitionNode],
        m: int,
        rng: np.random.Generator,
    ) -> bool:
        """Fast Correction of Section 6.2; returns False when it punted."""
        if straddlers.shape[0] == 0 or opposite_tree is None:
            return True
        centers = self.points[straddlers]
        radii = np.sqrt(self.nbr_sq[straddlers, -1])
        cap = self.config.active_cap(m, self.dim, self.k)
        with self.machine.span(
            "correct.march", m=int(m), straddlers=int(straddlers.shape[0])
        ) as span:
            result = march_balls(
                opposite_tree, self.points, centers, radii, active_cap=cap
            )
            self.stats.marching_level_active.append((m, list(result.level_active)))
            if span is not None:
                span.attrs["succeeded"] = result.succeeded
            if not result.succeeded:
                self.stats.punts_marching += 1
                opposite_ids = opposite_tree.indices
                self._query_correct(straddlers, opposite_ids, rng)
                return False
            # constant-depth charge for the label-and-scan phases (Lemma 6.3),
            # plus the k-selection step (O(log log k) for k > 1, Section 6.2)
            select_depth = 1.0 if self.k == 1 else 1.0 + math.log2(math.log2(self.k) + 2.0)
            work = float(result.label_tests + result.leaf_tests + result.pairs * (self.k + 1))
            self.machine.charge(Cost(self.config.fc_depth + select_depth, max(work, 1.0)))
            apply_candidate_pairs(
                self.points,
                self.nbr_idx,
                self.nbr_sq,
                straddlers,
                result.ball_rows,
                result.point_ids,
                self.k,
            )
        return True

    def _query_correct(
        self, straddlers: np.ndarray, opposite_ids: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Punt path: query-structure correction (Parallel Neighborhood
        Querying of Section 3.3), O(log m) depth."""
        if straddlers.shape[0] == 0 or opposite_ids.shape[0] == 0:
            return
        self.machine.metrics.inc("fast.punt_corrections")
        with self.machine.span(
            "correct.punt",
            straddlers=int(straddlers.shape[0]),
            opposite=int(opposite_ids.shape[0]),
        ):
            radii = np.sqrt(self.nbr_sq[straddlers, -1])
            system = BallSystem(self.points[straddlers], radii)
            ball_rows, point_ids = query_correction_pairs(
                system,
                self.points[opposite_ids],
                opposite_ids,
                self.machine,
                rng,
                self.config.query,
            )
            select_depth = 1.0 if self.k == 1 else 1.0 + math.log2(math.log2(self.k) + 2.0)
            self.machine.charge(
                Cost(select_depth, float(max(1, point_ids.shape[0] * (self.k + 1))))
            )
            apply_candidate_pairs(
                self.points,
                self.nbr_idx,
                self.nbr_sq,
                straddlers,
                ball_rows,
                point_ids,
                self.k,
            )
