"""Per-op micro-benchmarks of the kernel layer.

Drives every registered kernel op on synthetic workloads sized by ``n``
and reports ns/element per (op, backend) — the table behind the
``repro bench kernels`` CLI subcommand and the nightly spot-check
artifact.  Results flow through the existing telemetry surfaces: one
``kernels.bench`` span per measurement on the caller's machine tracer
and ``kernels.bench.ns_per_element`` observations in the metrics
registry, so ``--events-out`` / ``--metrics-out`` capture them like any
other run.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..pvm.machine import Machine
from . import kernel_table, numba_available, resolve_backend, use_backend
from .layout import FlatTree

__all__ = ["bench_backends", "run_kernel_bench", "format_table"]


def _workloads(n: int, d: int, k: int, rng: np.random.Generator) -> Dict[str, tuple]:
    """Synthetic inputs per op; ``elements`` = n for flat ops, m^2 for blocks."""
    pts = rng.random((n, d))
    center = np.full(d, 0.5)
    normal = np.zeros(d)
    normal[0] = 1.0
    radii = np.sqrt(rng.random(n)) * 0.05
    m = min(n, 512)  # base-case-sized block for the O(m^2) kernel
    sub = pts[:m]
    n_segs = max(1, n // 256)
    seg_ids = np.sort(rng.integers(0, n_segs, size=n)).astype(np.int64)
    sides = np.where(rng.random(n) < 0.5, -1, 1).astype(np.int8)
    flat_ids = rng.permutation(n).astype(np.int64)
    rows = (seg_ids % max(1, n_segs // 2)).astype(np.int64)
    sep_centers = rng.random((max(1, n_segs // 2), d))
    sep_radii = np.full(max(1, n_segs // 2), 0.25)
    cand_rows = rng.integers(0, max(1, n // 4), size=2 * n).astype(np.int64)
    cand_idx = rng.integers(0, n, size=2 * n).astype(np.int64)
    cand_sq = rng.random(2 * n)
    return {
        "sphere_side": ((pts, center, 0.4), n),
        "hyperplane_side": ((pts, normal, 0.5), n),
        "classify_balls_sphere": ((pts, radii, center, 0.4), n),
        "classify_level_spheres": ((pts, flat_ids, rows, sep_centers, sep_radii, radii), n),
        "segmented_split_sides": ((flat_ids, sides, seg_ids), n),
        "block_topk": ((sub, min(k, m - 1)), m * m),
        "merge_candidate_stream": (
            (cand_rows, cand_idx, cand_sq, max(1, n // 4), k),
            2 * n,
        ),
    }


def bench_backends(
    n: int = 100_000,
    d: int = 2,
    k: int = 8,
    repeats: int = 3,
    backends: Optional[List[str]] = None,
    seed: int = 0,
    machine: Optional[Machine] = None,
) -> List[dict]:
    """Measure every op on every requested backend; best-of-``repeats``.

    Returns rows ``{op, backend, n, elements, seconds, ns_per_element}``.
    A jitted backend gets one untimed warmup call per op so compilation
    never lands in the measurement.
    """
    if backends is None:
        backends = ["numpy"] + (["numba"] if numba_available() else [])
    rng = np.random.default_rng(seed)
    work = _workloads(n, d, k, rng)
    out: List[dict] = []
    for backend in backends:
        resolved = resolve_backend(backend)
        with use_backend(resolved):
            table = kernel_table()
            for op, (args, elements) in work.items():
                fn = table[op]
                fn(*args)  # warmup (jit compile + cache touch)
                best = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    fn(*args)
                    best = min(best, time.perf_counter() - t0)
                row = {
                    "op": op,
                    "backend": resolved,
                    "n": n,
                    "elements": elements,
                    "seconds": best,
                    "ns_per_element": best / elements * 1e9,
                }
                out.append(row)
                if machine is not None:
                    with machine.span(
                        "kernels.bench",
                        op=op,
                        backend=resolved,
                        elements=elements,
                        ns_per_element=row["ns_per_element"],
                    ):
                        pass
                    machine.metrics.observe(
                        "kernels.bench.ns_per_element", row["ns_per_element"]
                    )
    return out


def bench_descend(
    n: int, d: int, repeats: int, backends: List[str], seed: int, machine=None
) -> List[dict]:
    """Descent micro-bench (needs a built tree, so it is opt-in)."""
    from ..api import build_index

    rng = np.random.default_rng(seed)
    pts = rng.random((min(n, 50_000), d))
    index = build_index(pts, k=2, seed=seed)
    flat = FlatTree.from_tree(index.tree)
    if flat is None:
        return []
    qs = rng.random((n, d))
    out: List[dict] = []
    for backend in backends:
        resolved = resolve_backend(backend)
        with use_backend(resolved):
            flat.descend(qs)  # warmup
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                flat.descend(qs)
                best = min(best, time.perf_counter() - t0)
            out.append(
                {
                    "op": "descend_spheres",
                    "backend": resolved,
                    "n": n,
                    "elements": n,
                    "seconds": best,
                    "ns_per_element": best / n * 1e9,
                }
            )
    return out


def format_table(rows: List[dict]) -> str:
    """Fixed-width per-op table, numpy column first."""
    header = f"{'op':<26} {'backend':<8} {'elements':>10} {'seconds':>10} {'ns/elem':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['op']:<26} {row['backend']:<8} {row['elements']:>10d} "
            f"{row['seconds']:>10.6f} {row['ns_per_element']:>10.2f}"
        )
    return "\n".join(lines)


def run_kernel_bench(
    n: int = 100_000,
    d: int = 2,
    k: int = 8,
    repeats: int = 3,
    backends: Optional[List[str]] = None,
    seed: int = 0,
    machine: Optional[Machine] = None,
    include_descend: bool = True,
) -> List[dict]:
    """Full kernel micro-bench: flat ops plus (optionally) tree descent."""
    rows = bench_backends(
        n=n, d=d, k=k, repeats=repeats, backends=backends, seed=seed, machine=machine
    )
    if include_descend:
        used = backends or ["numpy"] + (["numba"] if numba_available() else [])
        rows += bench_descend(n, d, repeats, used, seed, machine=machine)
    return rows
