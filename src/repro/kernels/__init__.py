"""`repro.kernels`: pluggable hot-path kernel backends.

The build and query hot paths — sphere/hyperplane side tests, the
frontier's fused classify+split, base-case and oracle brute-force kNN,
the flat candidate-stream merge, and query descent — call through the
dispatcher functions in this package.  Which implementation runs is a
process-global choice from :data:`~repro.kernels.registry.KERNEL_REGISTRY`
(``numpy`` reference or optional ``numba`` jit), selected by
``CommonConfig.kernels`` / ``--kernels`` / ``REPRO_KERNELS`` and
installed with :func:`set_backend` / :func:`use_backend`.

Every backend is bit-identical to the numpy reference on every op —
same neighbor arrays, same trees, same exact (depth, work) ledger —
so switching backends is purely a wall-clock decision.  See
``docs/kernels.md``.
"""

from __future__ import annotations

import numpy as np

from .registry import (
    KERNEL_BACKENDS,
    KERNEL_REGISTRY,
    KERNELS_ENV_VAR,
    KernelSpec,
    active_backend,
    kernel_table,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "KernelSpec",
    "KERNEL_REGISTRY",
    "KERNEL_BACKENDS",
    "KERNELS_ENV_VAR",
    "numba_available",
    "resolve_backend",
    "set_backend",
    "active_backend",
    "use_backend",
    "kernel_table",
    "FlatTree",
    "sphere_side",
    "hyperplane_side",
    "classify_balls_sphere",
    "classify_balls_hyperplane",
    "classify_level_spheres",
    "segmented_split_sides",
    "descend_spheres",
    "block_topk",
    "brute_topk",
    "merge_candidate_stream",
]


def __getattr__(name: str):
    # FlatTree lives in .layout, which imports the geometry/core modules
    # that themselves call into this package — resolve it lazily to keep
    # the import graph acyclic.
    if name == "FlatTree":
        from .layout import FlatTree

        return FlatTree
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def sphere_side(pts: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """+1 exterior / -1 interior per point of a sphere separator."""
    return kernel_table()["sphere_side"](pts, center, radius)


def hyperplane_side(pts: np.ndarray, normal: np.ndarray, offset: float) -> np.ndarray:
    """+1 / -1 halfspace side per point of a hyperplane separator."""
    return kernel_table()["hyperplane_side"](pts, normal, offset)


def classify_balls_sphere(centers, radii, c, r) -> np.ndarray:
    """-1 interior / +1 exterior / 0 intersecting per ball vs a sphere."""
    return kernel_table()["classify_balls_sphere"](centers, radii, c, r)


def classify_balls_hyperplane(centers, radii, normal, offset) -> np.ndarray:
    """-1 / +1 / 0 per ball vs a hyperplane."""
    return kernel_table()["classify_balls_hyperplane"](centers, radii, normal, offset)


def classify_level_spheres(points, flat_ids, rows, centers, sep_radii, ball_radii):
    """Fused per-level ball classification (frontier correct sweep)."""
    return kernel_table()["classify_level_spheres"](
        points, flat_ids, rows, centers, sep_radii, ball_radii
    )


def segmented_split_sides(flat_ids, sides, seg_ids):
    """Fused classify+pack: stable per-segment split by side sign."""
    return kernel_table()["segmented_split_sides"](flat_ids, sides, seg_ids)


def descend_spheres(pts, centers, radii, left, right, leaf_ord):
    """Flat-tree group descent: leaf ordinal per row (see FlatTree)."""
    return kernel_table()["descend_spheres"](pts, centers, radii, left, right, leaf_ord)


def block_topk(sub, kk):
    """All-pairs k nearest within one block (the DnC base-case kernel)."""
    return kernel_table()["block_topk"](sub, kk)


def brute_topk(pts, k, chunk):
    """Chunked all-pairs k nearest over the full input (the oracle kernel)."""
    return kernel_table()["brute_topk"](pts, k, chunk)


def merge_candidate_stream(rows, idx, sq, n_rows, k):
    """Row-wise k-best merge of a flat (row, id, sq) candidate stream."""
    return kernel_table()["merge_candidate_stream"](rows, idx, sq, n_rows, k)
