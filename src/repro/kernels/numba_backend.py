"""Optional numba-jitted kernel backend — bit-identical to the reference.

Design rules that make bit-identity *provable* rather than hoped-for:

- **Float reductions follow numpy's order.**  ``np.linalg.norm(..., axis=1)``
  reduces with pairwise summation, which degenerates to a plain sequential
  loop only when the reduced length is below numpy's pairwise block size
  (8).  The jitted norm-based ops therefore engage only for ``d < 8`` and
  delegate to the numpy reference above that — the partition trees this
  repo builds live in d = 2..5, so the compiled path covers every real
  workload.  The same guard covers the einsum-based block distance matrix.
- **BLAS is never reimplemented.**  The hyperplane side test (gemv) and
  the GEMM inside ``brute_topk`` keep their numpy implementations under
  this backend too; a scalar loop cannot reproduce blocked BLAS
  summation (the same reason `repro.separators.batch` evaluates
  hyperplane candidates per segment).
- **Selection is shared, not duplicated.**  ``block_topk`` jit-compiles
  only the O(m^2 d) distance matrix; the k-smallest selection still runs
  through :func:`repro.geometry.points.kth_smallest_per_row`, so
  argpartition tie-breaking cannot drift between backends.
- **Integer ops and canonical-output ops are free.**  The fused
  segmented split is integer-exact, and the candidate-stream merge has a
  uniquely-defined output (dedupe keep-min, (distance, id) order, k-prefix),
  so any correct implementation is bitwise equal.

When numba is not importable, :func:`build_table` simply returns the
reference table (the registry normally resolves ``numba`` away before
getting here; this is a second belt).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from . import reference

try:  # pragma: no cover - exercised only with the repro[perf] extra
    from numba import njit
except ImportError:  # pragma: no cover
    njit = None

# np.linalg.norm / einsum reductions are sequential below numpy's
# pairwise-summation block size; the jitted loops match only there.
_PAIRWISE_BLOCK = 8


def _jit(fn: Callable) -> Callable:  # pragma: no cover
    return njit(cache=True, fastmath=False)(fn)


def build_table() -> Dict[str, Callable]:
    """The numba op table, falling back per-op to the numpy reference."""
    table = dict(reference.TABLE)
    if njit is None:  # pragma: no cover
        return table
    jitted = _build_jitted()  # pragma: no cover
    table.update(jitted)  # pragma: no cover
    return table  # pragma: no cover


def _build_jitted() -> Dict[str, Callable]:  # pragma: no cover
    """Compile the jitted ops and wrap them with guards/coercions."""

    @_jit
    def _sphere_side(pts, center, radius):
        n, d = pts.shape
        out = np.empty(n, dtype=np.int8)
        for i in range(n):
            ssq = 0.0
            for j in range(d):
                dx = np.float64(pts[i, j]) - center[j]
                ssq += dx * dx
            s = np.sqrt(ssq) - radius
            out[i] = 1 if s > 0.0 else -1
        return out

    @_jit
    def _classify_balls_sphere(centers, radii, c, r):
        n, d = centers.shape
        out = np.zeros(n, dtype=np.int8)
        for i in range(n):
            ssq = 0.0
            for j in range(d):
                dx = np.float64(centers[i, j]) - c[j]
                ssq += dx * dx
            s = np.sqrt(ssq) - r
            rho = radii[i]
            if np.isfinite(rho):
                if s < -rho:
                    out[i] = -1
                elif s > rho:
                    out[i] = 1
        return out

    @_jit
    def _classify_level_spheres(points, flat_ids, rows, centers, sep_radii, ball_radii):
        m = flat_ids.shape[0]
        d = points.shape[1]
        out = np.zeros(m, dtype=np.int8)
        for i in range(m):
            pid = flat_ids[i]
            row = rows[i]
            ssq = 0.0
            for j in range(d):
                dx = np.float64(points[pid, j]) - centers[row, j]
                ssq += dx * dx
            s = np.sqrt(ssq) - sep_radii[row]
            rho = ball_radii[i]
            if np.isfinite(rho):
                if s < -rho:
                    out[i] = -1
                elif s > rho:
                    out[i] = 1
        return out

    @_jit
    def _segmented_split_sides(flat_ids, sides, seg_ids):
        n = flat_ids.shape[0]
        out = np.empty_like(flat_ids)
        n_runs = 0
        if n > 0:
            n_runs = 1
            for i in range(1, n):
                if seg_ids[i] != seg_ids[i - 1]:
                    n_runs += 1
        starts = np.empty(n_runs + 1, dtype=np.int64)
        false_counts = np.zeros(n_runs, dtype=np.int64)
        run = 0
        for i in range(n):
            if i == 0 or seg_ids[i] != seg_ids[i - 1]:
                starts[run] = i
                run += 1
            if sides[i] <= 0:
                false_counts[run - 1] += 1
        starts[n_runs] = n
        for r in range(n_runs):
            lo = starts[r]
            hi = starts[r + 1]
            f = lo
            t = lo + false_counts[r]
            for i in range(lo, hi):
                if sides[i] <= 0:
                    out[f] = flat_ids[i]
                    f += 1
                else:
                    out[t] = flat_ids[i]
                    t += 1
        return out, false_counts

    @_jit
    def _descend_spheres(pts, centers, radii, left, right, leaf_ord):
        n, d = pts.shape
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            node = 0
            while left[node] >= 0:
                ssq = 0.0
                for j in range(d):
                    dx = np.float64(pts[i, j]) - centers[node, j]
                    ssq += dx * dx
                s = np.sqrt(ssq) - radii[node]
                node = right[node] if s > 0.0 else left[node]
            out[i] = leaf_ord[node]
        return out

    @_jit
    def _block_sq_dists(sub):
        m, d = sub.shape
        sq = np.empty((m, m), dtype=np.float64)
        for i in range(m):
            for j in range(m):
                ssq = 0.0
                for t in range(d):
                    dx = np.float64(sub[i, t]) - np.float64(sub[j, t])
                    ssq += dx * dx
                sq[i, j] = ssq
            sq[i, i] = np.inf
        return sq

    @_jit
    def _merge_stream(rows, idx, sq, out_idx, out_sq, k):
        n_rows = out_idx.shape[0]
        m = rows.shape[0]
        # stable counting sort by row
        counts = np.zeros(n_rows + 1, dtype=np.int64)
        for i in range(m):
            counts[rows[i] + 1] += 1
        for r in range(n_rows):
            counts[r + 1] += counts[r]
        cursor = counts[:n_rows].copy()
        srt_id = np.empty(m, dtype=np.int64)
        srt_sq = np.empty(m, dtype=np.float64)
        for i in range(m):
            p = cursor[rows[i]]
            srt_id[p] = idx[i]
            srt_sq[p] = sq[i]
            cursor[rows[i]] += 1
        # per-row dedupe (keep min) + sorted (distance, id) insertion
        for r in range(n_rows):
            cnt = 0
            for t in range(counts[r], counts[r + 1]):
                v = srt_sq[t]
                ident = srt_id[t]
                found = -1
                for j in range(cnt):
                    if out_idx[r, j] == ident:
                        found = j
                        break
                if found >= 0:
                    if v < out_sq[r, found]:
                        for j in range(found, cnt - 1):
                            out_idx[r, j] = out_idx[r, j + 1]
                            out_sq[r, j] = out_sq[r, j + 1]
                        cnt -= 1
                    else:
                        continue
                if cnt == k:
                    lv = out_sq[r, k - 1]
                    if v > lv or (v == lv and ident > out_idx[r, k - 1]):
                        continue
                    cnt -= 1
                j = cnt
                while j > 0 and (
                    out_sq[r, j - 1] > v
                    or (out_sq[r, j - 1] == v and out_idx[r, j - 1] > ident)
                ):
                    out_idx[r, j] = out_idx[r, j - 1]
                    out_sq[r, j] = out_sq[r, j - 1]
                    j -= 1
                out_idx[r, j] = ident
                out_sq[r, j] = v
                cnt += 1
            for j in range(cnt, k):
                out_idx[r, j] = -1
                out_sq[r, j] = np.inf

    # -- guarded wrappers (numpy-facing signatures) ---------------------

    def sphere_side(pts, center, radius):
        if pts.shape[1] >= _PAIRWISE_BLOCK:
            return reference.sphere_side(pts, center, radius)
        return _sphere_side(pts, center, radius)

    def classify_balls_sphere(centers, radii, c, r):
        if centers.shape[1] >= _PAIRWISE_BLOCK:
            return reference.classify_balls_sphere(centers, radii, c, r)
        return _classify_balls_sphere(centers, radii, c, r)

    def classify_level_spheres(points, flat_ids, rows, centers, sep_radii, ball_radii):
        if points.shape[1] >= _PAIRWISE_BLOCK:
            return reference.classify_level_spheres(
                points, flat_ids, rows, centers, sep_radii, ball_radii
            )
        return _classify_level_spheres(
            points,
            np.asarray(flat_ids, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            centers,
            sep_radii,
            ball_radii,
        )

    def segmented_split_sides(flat_ids, sides, seg_ids):
        return _segmented_split_sides(
            np.ascontiguousarray(flat_ids, dtype=np.int64),
            np.ascontiguousarray(sides, dtype=np.int8),
            np.ascontiguousarray(seg_ids, dtype=np.int64),
        )

    def descend_spheres(pts, centers, radii, left, right, leaf_ord):
        if pts.shape[1] >= _PAIRWISE_BLOCK:
            return reference.descend_spheres(pts, centers, radii, left, right, leaf_ord)
        return _descend_spheres(pts, centers, radii, left, right, leaf_ord)

    def block_topk(sub, kk):
        from ..geometry.points import kth_smallest_per_row

        if sub.shape[1] >= _PAIRWISE_BLOCK:
            return reference.block_topk(sub, kk)
        sq = _block_sq_dists(np.ascontiguousarray(sub))
        return kth_smallest_per_row(sq, kk)

    def merge_candidate_stream(rows, idx, sq, n_rows, k):
        out_idx = np.full((n_rows, k), -1, dtype=np.int64)
        out_sq = np.full((n_rows, k), np.inf)
        real = idx >= 0
        rows, idx, sq = rows[real], idx[real], sq[real]
        if idx.size:
            _merge_stream(rows, idx, sq, out_idx, out_sq, k)
        return out_idx, out_sq

    return {
        "sphere_side": sphere_side,
        "classify_balls_sphere": classify_balls_sphere,
        "classify_level_spheres": classify_level_spheres,
        "segmented_split_sides": segmented_split_sides,
        "descend_spheres": descend_spheres,
        "block_topk": block_topk,
        "merge_candidate_stream": merge_candidate_stream,
    }
