"""Pure-numpy reference kernels — the bit-identity baseline.

Each op here is a verbatim transplant of the hot-loop body it replaced
(:mod:`repro.geometry.spheres`, :mod:`repro.core.neighborhood`,
:mod:`repro.core.frontier`, :mod:`repro.baselines.brute_force`,
:mod:`repro.core.partition_tree`), so routing a call site through the
kernel table with the ``numpy`` backend produces byte-for-byte the same
arrays — and the same exact (depth, work) ledger — as before the
refactor.  Compiled backends are validated against these functions
(see ``tests/test_kernels.py``).

Conventions shared by every backend:

- point arrays arrive pre-validated (2-D, float32 or float64,
  C-contiguous); float32 inputs upcast **elementwise** to float64
  inside the arithmetic, which numpy broadcasting and an explicit
  per-element cast agree on bit-for-bit;
- separator parameters (centers, radii, normals, offsets) are float64;
- classification outputs are int8 with the repo-wide convention
  (+1 exterior, -1 interior, 0 intersecting);
- neighbor-selection ops return (indices, squared distances) sorted by
  (distance, id) with (-1, inf) padding.

Two ops intentionally stay numpy under *every* backend: the hyperplane
side test (a BLAS ``gemv`` whose blocked summation a scalar loop cannot
reproduce) and the GEMM inside :func:`brute_topk` — the same reasoning
that keeps hyperplane candidates on the per-segment path in
:mod:`repro.separators.batch`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..geometry.points import (
    chunked_pairs,
    kth_smallest_per_row,
    pairwise_sq_dists,
    pairwise_sq_dists_direct,
    refine_selected_sq_dists,
)
from ..pvm.primitives import segmented_split

__all__ = ["TABLE"]


def sphere_side(pts: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """+1 exterior / -1 interior of a sphere, boundary interior."""
    s = np.linalg.norm(pts - center, axis=1) - radius
    return np.where(s > 0.0, 1, -1).astype(np.int8)


def hyperplane_side(pts: np.ndarray, normal: np.ndarray, offset: float) -> np.ndarray:
    """+1 / -1 halfspace sides; BLAS gemv in every backend (see module doc)."""
    s = pts @ normal - offset
    return np.where(s > 0.0, 1, -1).astype(np.int8)


def classify_balls_sphere(
    centers: np.ndarray, radii: np.ndarray, c: np.ndarray, r: float
) -> np.ndarray:
    """Three-way ball classification against a sphere separator."""
    s = np.linalg.norm(centers - c, axis=1) - r
    out = np.zeros(centers.shape[0], dtype=np.int8)
    finite = np.isfinite(radii)
    out[finite & (s < -radii)] = -1
    out[finite & (s > radii)] = 1
    return out


def classify_balls_hyperplane(
    centers: np.ndarray, radii: np.ndarray, normal: np.ndarray, offset: float
) -> np.ndarray:
    """Three-way ball classification against a hyperplane (gemv path)."""
    s = centers @ normal - offset
    out = np.zeros(centers.shape[0], dtype=np.int8)
    finite = np.isfinite(radii)
    out[finite & (s < -radii)] = -1
    out[finite & (s > radii)] = 1
    return out


def classify_level_spheres(
    points: np.ndarray,
    flat_ids: np.ndarray,
    rows: np.ndarray,
    centers: np.ndarray,
    sep_radii: np.ndarray,
    ball_radii: np.ndarray,
) -> np.ndarray:
    """Fused per-level ball classification for the frontier engine.

    ``flat_ids[i]`` is a point id, ``rows[i]`` selects its segment's
    separator from ``centers``/``sep_radii``; row-local arithmetic makes
    the flat pass bitwise equal to per-node classify_balls.
    """
    s = np.linalg.norm(points[flat_ids] - centers[rows], axis=1)
    s -= sep_radii[rows]
    cls_flat = np.zeros(flat_ids.shape[0], dtype=np.int8)
    finite = np.isfinite(ball_radii)
    cls_flat[finite & (s < -ball_radii)] = -1
    cls_flat[finite & (s > ball_radii)] = 1
    return cls_flat


def segmented_split_sides(
    flat_ids: np.ndarray, sides: np.ndarray, seg_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused classify+pack for the frontier divide step.

    Stable two-way partition of ``flat_ids`` within each segment by the
    sign of ``sides`` (interior ``side < 0`` first), integer-exact:
    returns ``(out, interior_counts)`` like
    :func:`repro.pvm.primitives.segmented_split` on ``sides > 0``.
    """
    return segmented_split(None, flat_ids, sides > 0, seg_ids)


def descend_spheres(
    pts: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    leaf_ord: np.ndarray,
) -> np.ndarray:
    """Group descent over a flat sphere-only tree: per-row leaf ordinal.

    Arrays are the preorder layout of :class:`repro.kernels.layout.FlatTree`;
    ``left[i] < 0`` marks a leaf.  Each node tests all of its surviving
    rows at once with the same row-local arithmetic as
    :meth:`~repro.geometry.spheres.Sphere.side_of_points` (boundary goes
    interior/left), so row ``r`` lands in exactly the leaf
    ``tree.leaf_of_point(pts[r])`` would reach.
    """
    n = pts.shape[0]
    out = np.empty(n, dtype=np.int64)
    stack = [(0, np.arange(n, dtype=np.int64))]
    while stack:
        node, rows = stack.pop()
        if left[node] < 0:
            out[rows] = leaf_ord[node]
            continue
        s = np.linalg.norm(pts[rows] - centers[node], axis=1) - radii[node]
        exterior = s > 0.0
        right_rows = rows[exterior]
        if right_rows.shape[0]:
            stack.append((int(right[node]), right_rows))
        left_rows = rows[~exterior]
        if left_rows.shape[0]:
            stack.append((int(left[node]), left_rows))
    return out


def block_topk(sub: np.ndarray, kk: int) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs k nearest within one block — the DnC base-case kernel.

    Diff-based distances (cancellation-safe), self excluded, selection by
    :func:`~repro.geometry.points.kth_smallest_per_row` (deterministic
    (value, column) tie-break).  Returns ``(local_idx, local_sq)`` of
    shape ``(m, kk)``.
    """
    sq = pairwise_sq_dists_direct(sub, sub)
    np.fill_diagonal(sq, np.inf)
    return kth_smallest_per_row(sq, kk)


def brute_topk(pts: np.ndarray, k: int, chunk: int) -> Tuple[np.ndarray, np.ndarray]:
    """Streaming all-pairs k nearest over the full input — the oracle kernel.

    Chunked GEMM distances (|a|^2+|b|^2-2ab, one GEMM per row block) with
    a final diff-based refinement of the selected entries; numpy in every
    backend (see module doc).  Returns padded ``(n, k)`` arrays.
    """
    n = pts.shape[0]
    kk = min(k, max(0, n - 1))
    nbr_idx = np.full((n, k), -1, dtype=np.int64)
    nbr_sq = np.full((n, k), np.inf)
    if kk == 0:
        return nbr_idx, nbr_sq
    for lo, hi in chunked_pairs(n, chunk):
        sq = pairwise_sq_dists(pts[lo:hi], pts)
        rows = np.arange(lo, hi)
        sq[rows - lo, rows] = np.inf  # exclude self
        idx, vals = kth_smallest_per_row(sq, kk)
        nbr_idx[lo:hi, :kk] = idx
        nbr_sq[lo:hi, :kk] = vals
    # replace GEMM-form distances (cancellation-prone for near-coincident
    # points far from the origin) with exact diff-based values
    return refine_selected_sq_dists(pts, pts, nbr_idx, nbr_sq)


def merge_candidate_stream(
    rows: np.ndarray,
    idx: np.ndarray,
    sq: np.ndarray,
    n_rows: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise k-best merge of a flat candidate stream.

    The output is *canonical* — duplicates (row, id) collapsed to their
    smallest distance, survivors sorted by (distance, id), rows padded to
    k with (-1, inf) — so any correct implementation is bit-identical.
    This one is three lexsorts and a positional scatter.
    """
    out_idx = np.full((n_rows, k), -1, dtype=np.int64)
    out_sq = np.full((n_rows, k), np.inf)
    real = idx >= 0
    rows, idx, sq = rows[real], idx[real], sq[real]
    if not idx.size:
        return out_idx, out_sq
    # group by (row, id) with the smallest distance first, keep group heads
    order = np.lexsort((sq, idx, rows))
    rows, idx, sq = rows[order], idx[order], sq[order]
    keep = np.concatenate(([True], (rows[1:] != rows[:-1]) | (idx[1:] != idx[:-1])))
    rows, idx, sq = rows[keep], idx[keep], sq[keep]
    # canonical (distance, id) order within each row, then each row's k best
    order = np.lexsort((idx, sq, rows))
    rows, idx, sq = rows[order], idx[order], sq[order]
    pos = np.arange(rows.shape[0], dtype=np.int64)
    starts = np.concatenate(([True], rows[1:] != rows[:-1]))
    pos -= np.maximum.accumulate(np.where(starts, pos, 0))
    keep = pos < k
    out_idx[rows[keep], pos[keep]] = idx[keep]
    out_sq[rows[keep], pos[keep]] = sq[keep]
    return out_idx, out_sq


TABLE = {
    "sphere_side": sphere_side,
    "hyperplane_side": hyperplane_side,
    "classify_balls_sphere": classify_balls_sphere,
    "classify_balls_hyperplane": classify_balls_hyperplane,
    "classify_level_spheres": classify_level_spheres,
    "segmented_split_sides": segmented_split_sides,
    "descend_spheres": descend_spheres,
    "block_topk": block_topk,
    "brute_topk": brute_topk,
    "merge_candidate_stream": merge_candidate_stream,
}
