"""Kernel backend registry: named, pluggable hot-path kernel tables.

Mirrors the ``ENGINE_REGISTRY`` pattern in :mod:`repro.core.config`: a
small frozen spec per backend, a registry dict keyed by name, and a
tuple of valid names for CLI/config validation.  A *backend* here is a
table of per-op callables (see :mod:`repro.kernels.reference` for the
op inventory); every backend is required to be **bit-identical** to the
``numpy`` reference table on every op, which is what lets the exact
(depth, work) ledger gate stay untouched while wall-clock drops.

Resolution order for the active backend:

1. an explicit name (``CommonConfig.kernels`` or ``--kernels``),
2. the ``REPRO_KERNELS`` environment variable,
3. ``auto``: ``numba`` when importable, else ``numpy``.

Requesting ``numba`` when numba is not importable warns once and falls
back to ``numpy`` — by the bit-identity contract the results are the
same, so a missing accelerator is never an error.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "KernelSpec",
    "KERNEL_REGISTRY",
    "KERNEL_BACKENDS",
    "KERNELS_ENV_VAR",
    "numba_available",
    "resolve_backend",
    "set_backend",
    "active_backend",
    "use_backend",
    "kernel_table",
]

KERNELS_ENV_VAR = "REPRO_KERNELS"


@dataclass(frozen=True)
class KernelSpec:
    """Description of one kernel backend (name + one-line summary)."""

    name: str
    summary: str
    compiled: bool = False


KERNEL_REGISTRY: Dict[str, KernelSpec] = {
    "numpy": KernelSpec(
        name="numpy",
        summary="pure-numpy reference kernels; always available, the bit-identity baseline",
    ),
    "numba": KernelSpec(
        name="numba",
        summary=(
            "numba-jitted hot loops, bit-identical to the numpy reference; "
            "delegates per-op to numpy where a compiled reduction cannot "
            "reproduce BLAS/pairwise summation"
        ),
        compiled=True,
    ),
}

KERNEL_BACKENDS = tuple(KERNEL_REGISTRY)

_NUMBA_OK: Optional[bool] = None
_WARNED_FALLBACK = False

# Lazily-built op tables, one per backend name.
_TABLES: Dict[str, Dict[str, Callable]] = {}

# Name of the currently-installed backend; resolved lazily on first use
# so that importing repro never pays for a numba probe.
_ACTIVE: Optional[str] = None


def numba_available() -> bool:
    """True when the optional numba dependency is importable."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except ImportError:
            _NUMBA_OK = False
    return _NUMBA_OK


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a requested backend name to an installable one.

    ``None``/``"auto"`` consults the ``REPRO_KERNELS`` environment
    variable, then picks ``numba`` when importable and ``numpy``
    otherwise.  An explicit ``"numba"`` without numba installed warns
    once and resolves to ``numpy`` (bit-identical by contract).
    """
    global _WARNED_FALLBACK
    if name is None or name == "auto":
        env = os.environ.get(KERNELS_ENV_VAR)
        if env and env != "auto":
            name = env
        else:
            return "numba" if numba_available() else "numpy"
    if name not in KERNEL_REGISTRY:
        raise ValueError(f"unknown kernel backend {name!r}; expected one of {KERNEL_BACKENDS} or 'auto'")
    if name == "numba" and not numba_available():
        if not _WARNED_FALLBACK:
            warnings.warn(
                "kernel backend 'numba' requested but numba is not importable; "
                "falling back to the bit-identical numpy reference kernels "
                "(install the repro[perf] extra to enable it)",
                RuntimeWarning,
                stacklevel=2,
            )
            _WARNED_FALLBACK = True
        return "numpy"
    return name


def _build_table(name: str) -> Dict[str, Callable]:
    from . import reference

    if name == "numpy":
        return dict(reference.TABLE)
    if name == "numba":
        from . import numba_backend

        return numba_backend.build_table()
    raise ValueError(f"unknown kernel backend {name!r}")  # pragma: no cover


def kernel_table(name: Optional[str] = None) -> Dict[str, Callable]:
    """The op table for ``name`` (default: the active backend)."""
    resolved = active_backend() if name is None else resolve_backend(name)
    table = _TABLES.get(resolved)
    if table is None:
        table = _TABLES[resolved] = _build_table(resolved)
    return table


def active_backend() -> str:
    """Name of the currently-installed backend (resolving lazily)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend(None)
    return _ACTIVE


def set_backend(name: Optional[str]) -> str:
    """Install ``name`` (after resolution) as the process-global backend."""
    global _ACTIVE
    _ACTIVE = resolve_backend(name)
    return _ACTIVE


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Context manager: install a backend, restore the previous on exit."""
    global _ACTIVE
    previous = _ACTIVE
    installed = set_backend(name)
    try:
        yield installed
    finally:
        _ACTIVE = previous
