"""Contiguous, child-major flat layout of a partition tree.

The pointer-chasing :class:`~repro.core.partition_tree.PartitionNode`
tree is the right structure for building and correction, but query-time
descent only needs four facts per node: sphere center, sphere radius,
children, and — at the leaves — the member ids.  :class:`FlatTree`
packs those into preorder numpy arrays with the leaf id lists
concatenated child-major (left to right), so descent runs through the
``descend_spheres`` kernel (array stack walk on numpy, a tight scalar
loop on numba) with zero Python-object traffic.

The layout is sphere-only: trees containing a hyperplane separator (the
rare MTTV great-circle pull-back) return ``None`` from
:meth:`FlatTree.from_tree` and callers keep the generator-based
:meth:`~repro.core.partition_tree.PartitionNode.leaves_of_points` path.
Descent over the flat layout visits the same separators with the same
row-local arithmetic, so the leaf each row reaches — and every array
the query path derives from it — is bit-identical to the pointer walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..geometry.spheres import Sphere
from ..core.partition_tree import PartitionNode

__all__ = ["FlatTree"]


@dataclass(frozen=True)
class FlatTree:
    """Preorder array form of a sphere-only partition tree.

    ``left``/``right`` hold preorder node indices (-1 at leaves);
    ``centers``/``radii`` are zero where unused; ``leaf_ord`` maps a
    leaf node to its left-to-right ordinal (-1 at internal nodes); leaf
    ``leaf_ids`` are stored contiguously, leaf ``j`` owning
    ``leaf_ids[leaf_offsets[j]:leaf_offsets[j + 1]]``.
    """

    centers: np.ndarray
    radii: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_ord: np.ndarray
    leaf_ids: np.ndarray
    leaf_offsets: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.left.shape[0])

    @property
    def n_leaves(self) -> int:
        return int(self.leaf_offsets.shape[0] - 1)

    @staticmethod
    def from_tree(tree: PartitionNode) -> Optional["FlatTree"]:
        """Flatten ``tree``; ``None`` when any separator is not a sphere."""
        centers: List[Optional[np.ndarray]] = []
        radii: List[float] = []
        left: List[int] = []
        right: List[int] = []
        leaf_ord: List[int] = []
        leaf_blocks: List[np.ndarray] = []
        dim = None
        # iterative preorder with parent back-patching (deep-tree safe)
        stack: List[Tuple[PartitionNode, int, int]] = [(tree, -1, 0)]
        while stack:
            node, parent, slot = stack.pop()
            my = len(left)
            if parent >= 0:
                if slot == 0:
                    left[parent] = my
                else:
                    right[parent] = my
            if node.is_leaf:
                centers.append(None)
                radii.append(0.0)
                left.append(-1)
                right.append(-1)
                leaf_ord.append(len(leaf_blocks))
                leaf_blocks.append(np.asarray(node.indices, dtype=np.int64))
                continue
            sep = node.separator
            if not isinstance(sep, Sphere):
                return None
            if dim is None:
                dim = sep.center.shape[0]
            centers.append(sep.center)
            radii.append(sep.radius)
            left.append(-2)  # patched by the children
            right.append(-2)
            leaf_ord.append(-1)
            # push right first so the left child is visited (and numbered)
            # next: preorder, leaves emerge left to right
            stack.append((node.right, my, 1))  # type: ignore[arg-type]
            stack.append((node.left, my, 0))  # type: ignore[arg-type]
        if dim is None:  # single-leaf tree: no separators to read d from
            dim = 1
        n = len(left)
        centers_arr = np.zeros((n, dim), dtype=np.float64)
        for i, c in enumerate(centers):
            if c is not None:
                centers_arr[i] = c
        lengths = [b.shape[0] for b in leaf_blocks]
        offsets = np.zeros(len(leaf_blocks) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return FlatTree(
            centers=centers_arr,
            radii=np.asarray(radii, dtype=np.float64),
            left=np.asarray(left, dtype=np.int64),
            right=np.asarray(right, dtype=np.int64),
            leaf_ord=np.asarray(leaf_ord, dtype=np.int64),
            leaf_ids=(
                np.concatenate(leaf_blocks)
                if leaf_blocks
                else np.zeros(0, dtype=np.int64)
            ),
            leaf_offsets=offsets,
        )

    def descend(self, pts: np.ndarray) -> np.ndarray:
        """Leaf ordinal per row of ``pts``, via the active kernel backend."""
        from . import descend_spheres

        return descend_spheres(
            pts, self.centers, self.radii, self.left, self.right, self.leaf_ord
        )

    def leaf_groups(self, pts: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(member_ids, rows)`` per leaf that received rows.

        Leaves arrive left to right with ``rows`` ascending — the exact
        order and grouping of
        :meth:`~repro.core.partition_tree.PartitionNode.leaves_of_points`
        (stable sort on the descent's leaf ordinals preserves both).
        """
        ordinals = self.descend(pts)
        order = np.argsort(ordinals, kind="stable")
        sorted_ord = ordinals[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], sorted_ord[1:] != sorted_ord[:-1]))
        )
        bounds = np.append(bounds, sorted_ord.shape[0])
        for b in range(bounds.shape[0] - 1):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            leaf = int(sorted_ord[lo])
            ids = self.leaf_ids[self.leaf_offsets[leaf] : self.leaf_offsets[leaf + 1]]
            yield ids, order[lo:hi]
