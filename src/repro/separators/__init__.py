"""Sphere separators (Miller–Teng–Thurston–Vavasis) and baseline cuts.

Implements Section 2 of the paper: the random sphere separator pipeline
(stereographic lift, approximate centerpoint, conformal centering, random
great circle, explicit pull-back), the unit-time variant with its retry
loop, quality measurement (split ratios and intersection numbers), and the
hyperplane median-cut baseline the paper improves on.
"""

from .greatcircle import random_great_circle, random_unit_vector
from .hyperplane import find_median_hyperplane, median_hyperplane
from .mttv import MTTVSeparatorSampler, default_sample_size, mttv_separator
from .quality import (
    SeparatorReport,
    ball_split,
    default_delta,
    is_good_point_split,
    point_split,
)
from .unit_time import SeparatorFailure, UnitTimeSeparator, find_good_separator

__all__ = [
    "random_great_circle",
    "random_unit_vector",
    "find_median_hyperplane",
    "median_hyperplane",
    "MTTVSeparatorSampler",
    "default_sample_size",
    "mttv_separator",
    "SeparatorReport",
    "ball_split",
    "default_delta",
    "is_good_point_split",
    "point_split",
    "SeparatorFailure",
    "UnitTimeSeparator",
    "find_good_separator",
]
