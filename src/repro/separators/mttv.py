"""The Miller–Teng–Thurston–Vavasis random sphere separator.

Pipeline (Section 2 of the paper; full algorithm in [6, 10]):

1. **Lift** the points of R^d stereographically onto S^d in R^{d+1}.
2. **Centerpoint**: compute an approximate centerpoint of the lifted points
   (iterated Radon points; on a constant-size random sample for the
   unit-time variant).
3. **Conformal centering**: rotate the centerpoint onto the pole axis and
   apply the dilation ``sqrt((1-r)/(1+r))`` so its image is the sphere's
   center.
4. **Random great circle** through the (transformed) center — uniform.
5. **Pull back** the circle through the inverse conformal map and the
   stereographic lift to an *explicit* sphere (or, degenerately, a
   hyperplane) in R^d.

The theorem: for a k-ply neighborhood system, the result delta-splits with
``delta = (d+1)/(d+2)`` in expectation and cuts ``O(k^{1/d} n^{(d-1)/d})``
balls in expectation.  We expose the transform, the explicit pull-back, and
a sign-test classifier through the transform itself so tests can verify the
two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..geometry.centerpoints import coordinate_median, iterated_radon_centerpoint
from ..geometry.conformal import ConformalMap
from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from ..geometry.stereographic import SphereCap, circle_to_separator, lift
from ..util.rng import as_generator
from .greatcircle import random_great_circle

__all__ = ["MTTVSeparatorSampler", "mttv_separator", "default_sample_size"]

SeparatorLike = Union[Sphere, Hyperplane]


def default_sample_size(d: int) -> int:
    """Constant (in n) sample size for the unit-time variant.

    Large enough that the sample centerpoint is a decent centerpoint of
    the full set with constant probability (MTTV suggest O(1); we use
    ``8 (d+2)^2`` which keeps the Radon iteration cheap in fixed d).
    """
    return 8 * (d + 2) ** 2


@dataclass
class MTTVSeparatorSampler:
    """A prepared sampler: centerpoint and conformal map are computed once,
    then :meth:`draw` produces i.i.d. candidate separators in O(1) time.

    This mirrors the paper's usage: the recursion repeatedly re-draws
    circles from the *same* distribution until one delta-splits.

    Parameters
    ----------
    points:
        (n, d) input points (the separator only needs ball centers).
    seed:
        RNG or seed; drives sampling, centerpoint grouping and circles.
    sample_size:
        If given (and < n), the centerpoint is computed on a random sample
        of this size — the unit-time regime.  ``None`` uses all points.
    centerpoint:
        ``"radon"`` (default, the analysed algorithm) or ``"median"``
        (coordinatewise median of the lifted points; cheap heuristic).
    """

    points: np.ndarray
    seed: object = None
    sample_size: Optional[int] = None
    centerpoint: str = "radon"

    def __post_init__(self) -> None:
        pts = as_points(self.points, min_points=1)
        self.points = pts
        self.rng = as_generator(self.seed)
        self.dim = pts.shape[1]
        n = pts.shape[0]
        if self.sample_size is not None and self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if self.sample_size is not None and self.sample_size < n:
            idx = self.rng.choice(n, size=self.sample_size, replace=False)
            base = pts[idx]
        else:
            base = pts
        lifted = lift(base)
        if self.centerpoint == "radon":
            z = iterated_radon_centerpoint(lifted, self.rng)
        elif self.centerpoint == "median":
            z = coordinate_median(lifted)
        else:
            raise ValueError(f"unknown centerpoint method {self.centerpoint!r}")
        self.center_estimate = z
        self.map = ConformalMap.centering(z)

    def draw(self, *, max_retries: int = 16) -> SeparatorLike:
        """One candidate separator: a random great circle pulled back to R^d.

        Retries (up to ``max_retries``) when the pull-back degenerates
        numerically (circle through / too close to the pole).
        """
        last_err: Exception | None = None
        for _ in range(max_retries):
            circle = random_great_circle(self.rng, self.dim + 1)
            try:
                original = self.map.pull_back_circle(circle)
                return circle_to_separator(original)
            except ValueError as err:
                last_err = err
        raise RuntimeError(f"could not draw a non-degenerate separator: {last_err}")

    def side_via_transform(self, points: np.ndarray, circle: SphereCap) -> np.ndarray:
        """Sign classification by pushing points forward through the map.

        Used by property tests to confirm the explicit pulled-back
        separator classifies points identically (up to a global flip) to
        the sign of ``normal . T(lift(p))``.
        """
        y = lift(as_points(points))
        ty = self.map.apply_to_sphere_points(y)
        return np.where(circle.side_of(ty) > 0, 1, -1).astype(np.int8)


def mttv_separator(
    points: np.ndarray,
    seed: object = None,
    *,
    sample_size: Optional[int] = None,
    centerpoint: str = "radon",
) -> SeparatorLike:
    """Convenience: build a sampler and draw a single separator."""
    return MTTVSeparatorSampler(
        points, seed=seed, sample_size=sample_size, centerpoint=centerpoint
    ).draw()
