"""The Miller–Teng–Thurston–Vavasis random sphere separator.

Pipeline (Section 2 of the paper; full algorithm in [6, 10]):

1. **Lift** the points of R^d stereographically onto S^d in R^{d+1}.
2. **Centerpoint**: compute an approximate centerpoint of the lifted points
   (iterated Radon points; on a constant-size random sample for the
   unit-time variant).
3. **Conformal centering**: rotate the centerpoint onto the pole axis and
   apply the dilation ``sqrt((1-r)/(1+r))`` so its image is the sphere's
   center.
4. **Random great circle** through the (transformed) center — uniform.
5. **Pull back** the circle through the inverse conformal map and the
   stereographic lift to an *explicit* sphere (or, degenerately, a
   hyperplane) in R^d.

The theorem: for a k-ply neighborhood system, the result delta-splits with
``delta = (d+1)/(d+2)`` in expectation and cuts ``O(k^{1/d} n^{(d-1)/d})``
balls in expectation.  We expose the transform, the explicit pull-back, and
a sign-test classifier through the transform itself so tests can verify the
two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..geometry.centerpoints import coordinate_median, iterated_radon_centerpoint
from ..geometry.conformal import ConformalMap
from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from ..geometry.stereographic import SphereCap, circle_to_separator, lift
from ..util.rng import as_generator
from .greatcircle import random_great_circle

__all__ = ["MTTVSeparatorSampler", "mttv_separator", "default_sample_size", "sampled_lift"]

SeparatorLike = Union[Sphere, Hyperplane]


def default_sample_size(d: int) -> int:
    """Constant (in n) sample size for the unit-time variant.

    Large enough that the sample centerpoint is a decent centerpoint of
    the full set with constant probability (MTTV suggest O(1); we use
    ``8 (d+2)^2`` which keeps the Radon iteration cheap in fixed d).
    """
    return 8 * (d + 2) ** 2


def sampled_lift(
    points: np.ndarray, rng: np.random.Generator, sample_size: Optional[int]
) -> np.ndarray:
    """Stage one of sampler construction: (sub)sample, then lift to S^d.

    When ``sample_size`` is given and smaller than ``n``, a uniform sample
    without replacement is drawn from ``rng`` (one ``choice`` call — the
    only RNG consumption of this stage).
    """
    n = points.shape[0]
    if sample_size is not None and sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    if sample_size is not None and sample_size < n:
        idx = rng.choice(n, size=sample_size, replace=False)
        base = points[idx]
    else:
        base = points
    return lift(base)


@dataclass
class MTTVSeparatorSampler:
    """A prepared sampler: centerpoint and conformal map are computed once,
    then :meth:`draw` produces i.i.d. candidate separators in O(1) time.

    This mirrors the paper's usage: the recursion repeatedly re-draws
    circles from the *same* distribution until one delta-splits.

    Parameters
    ----------
    points:
        (n, d) input points (the separator only needs ball centers).
    seed:
        RNG or seed; drives sampling, centerpoint grouping and circles.
    sample_size:
        If given (and < n), the centerpoint is computed on a random sample
        of this size — the unit-time regime.  ``None`` uses all points.
    centerpoint:
        ``"radon"`` (default, the analysed algorithm) or ``"median"``
        (coordinatewise median of the lifted points; cheap heuristic).
    """

    points: np.ndarray
    seed: object = None
    sample_size: Optional[int] = None
    centerpoint: str = "radon"

    def __post_init__(self) -> None:
        pts = as_points(self.points, min_points=1)
        self.points = pts
        self.rng = as_generator(self.seed)
        self.dim = pts.shape[1]
        lifted = sampled_lift(pts, self.rng, self.sample_size)
        if self.centerpoint == "radon":
            z = iterated_radon_centerpoint(lifted, self.rng)
        elif self.centerpoint == "median":
            z = coordinate_median(lifted)
        else:
            raise ValueError(f"unknown centerpoint method {self.centerpoint!r}")
        self._finish(z)

    def _finish(self, z: np.ndarray) -> None:
        self.center_estimate = z
        self.map = ConformalMap.centering(z)

    @classmethod
    def from_center_estimate(
        cls,
        points: np.ndarray,
        seed: object,
        z: np.ndarray,
        *,
        sample_size: Optional[int] = None,
        centerpoint: str = "radon",
    ) -> "MTTVSeparatorSampler":
        """Assemble a sampler around a precomputed lifted-space centerpoint.

        The frontier engine computes the centerpoints of many subproblems
        in one batched pass (:func:`iterated_radon_centerpoint_many`) and
        then finishes construction here; ``z`` must be exactly what
        ``__post_init__`` would have computed for the same arguments, so
        the assembled sampler is indistinguishable from a directly
        constructed one.
        """
        sampler = cls.__new__(cls)
        sampler.points = as_points(points, min_points=1)
        sampler.seed = seed
        sampler.sample_size = sample_size
        sampler.centerpoint = centerpoint
        sampler.rng = as_generator(seed)
        sampler.dim = sampler.points.shape[1]
        sampler._finish(z)
        return sampler

    def draw(self, *, max_retries: int = 16) -> SeparatorLike:
        """One candidate separator: a random great circle pulled back to R^d.

        Retries (up to ``max_retries``) when the pull-back degenerates
        numerically (circle through / too close to the pole).
        """
        last_err: Exception | None = None
        for _ in range(max_retries):
            circle = random_great_circle(self.rng, self.dim + 1)
            try:
                original = self.map.pull_back_circle(circle)
                return circle_to_separator(original)
            except ValueError as err:
                last_err = err
        raise RuntimeError(f"could not draw a non-degenerate separator: {last_err}")

    def side_via_transform(self, points: np.ndarray, circle: SphereCap) -> np.ndarray:
        """Sign classification by pushing points forward through the map.

        Used by property tests to confirm the explicit pulled-back
        separator classifies points identically (up to a global flip) to
        the sign of ``normal . T(lift(p))``.
        """
        y = lift(as_points(points))
        ty = self.map.apply_to_sphere_points(y)
        return np.where(circle.side_of(ty) > 0, 1, -1).astype(np.int8)


def mttv_separator(
    points: np.ndarray,
    seed: object = None,
    *,
    sample_size: Optional[int] = None,
    centerpoint: str = "radon",
) -> SeparatorLike:
    """Convenience: build a sampler and draw a single separator."""
    return MTTVSeparatorSampler(
        points, seed=seed, sample_size=sample_size, centerpoint=centerpoint
    ).draw()
