"""Uniform random great circles on S^d.

A great circle is determined by its unit normal; sampling the normal
uniformly from S^d (a normalised Gaussian) makes the circle uniform, which
is the distribution the MTTV split-ratio and intersection-number guarantees
are proved for.
"""

from __future__ import annotations

import numpy as np

from ..geometry.stereographic import SphereCap

__all__ = ["random_great_circle", "random_unit_vector"]


def random_unit_vector(rng: np.random.Generator, m: int) -> np.ndarray:
    """A uniform random point of the unit sphere in R^m."""
    if m < 1:
        raise ValueError("ambient dimension must be >= 1")
    while True:
        v = rng.standard_normal(m)
        norm = np.linalg.norm(v)
        if norm > 1e-12:
            return v / norm


def random_great_circle(rng: np.random.Generator, ambient_dim: int) -> SphereCap:
    """A uniform random great circle of S^{ambient_dim - 1} in R^ambient_dim."""
    return SphereCap(random_unit_vector(rng, ambient_dim), 0.0)
