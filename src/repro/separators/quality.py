"""Separator quality measures (Definition 2.1 of the paper).

A sphere S is an *f(n)-separator that delta-splits* a neighborhood system B
when it cuts at most f(n) balls and leaves at most ``delta * n`` balls
strictly inside / strictly outside.  This module measures both quantities
for explicit separators, plus the point-split ratio that the divide and
conquer actually tests (the graph — hence the ball system — is unknown
during the recursion; see Section 1's discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..geometry.balls import BallSystem
from ..geometry.spheres import Hyperplane, SideCounts, Sphere

__all__ = ["SeparatorReport", "point_split", "ball_split", "is_good_point_split", "default_delta"]

SeparatorLike = Union[Sphere, Hyperplane]


def default_delta(d: int, epsilon: float = 0.05) -> float:
    """The paper's target splitting ratio ``(d+1)/(d+2) + epsilon``."""
    if d < 1:
        raise ValueError("dimension must be >= 1")
    if not 0 <= epsilon < 1.0 / (d + 2):
        raise ValueError(f"epsilon must be in [0, 1/(d+2)) = [0, {1.0/(d+2):.4f}), got {epsilon}")
    return (d + 1) / (d + 2) + epsilon


@dataclass(frozen=True, slots=True)
class SeparatorReport:
    """Quality summary of one separator against points and (optionally) balls."""

    n_points: int
    interior_points: int
    exterior_points: int
    split_ratio: float
    ball_counts: SideCounts | None = None

    @property
    def intersection_number(self) -> int | None:
        return None if self.ball_counts is None else self.ball_counts.intersecting


def point_split(separator: SeparatorLike, points: np.ndarray) -> SeparatorReport:
    """Interior/exterior point counts and the split ratio max/n."""
    side = separator.side_of_points(points)
    n = side.shape[0]
    interior = int(np.count_nonzero(side < 0))
    exterior = n - interior
    ratio = max(interior, exterior) / n if n else 0.0
    return SeparatorReport(n, interior, exterior, ratio)


def ball_split(separator: SeparatorLike, balls: BallSystem) -> SeparatorReport:
    """Full quality report including the intersection number iota_B(S)."""
    cls = balls.classify(separator)
    interior = int(np.count_nonzero(cls == -1))
    exterior = int(np.count_nonzero(cls == 1))
    cut = int(np.count_nonzero(cls == 0))
    side = separator.side_of_points(balls.centers)
    n = len(balls)
    pin = int(np.count_nonzero(side < 0))
    ratio = max(pin, n - pin) / n if n else 0.0
    return SeparatorReport(n, pin, n - pin, ratio, SideCounts(interior, exterior, cut))


def is_good_point_split(separator: SeparatorLike, points: np.ndarray, delta: float) -> bool:
    """The recursion's acceptance test: both sides nonempty, ratio <= delta."""
    rep = point_split(separator, points)
    if rep.n_points < 2:
        return False
    if rep.interior_points == 0 or rep.exterior_points == 0:
        return False
    return rep.split_ratio <= delta
