"""Hyperplane cuts — the Bentley / Cole–Goodrich baseline.

Bentley's multi-dimensional divide and conquer "picks the hyperplane by
translating a fixed hyperplane until the points are divided in half".  The
paper's critique (Section 1): the number of k-NN balls crossing such a cut
can be Omega(n), which is exactly what experiment E8 measures against the
sphere separator.

``median_hyperplane`` reproduces the baseline cut: an axis-aligned
hyperplane through the median coordinate.  In the scan-vector model the
median is found by randomized selection with scans — expected O(1) rounds
of (elementwise compare + scan); we charge a small constant number of such
rounds.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane
from ..pvm.machine import Machine

__all__ = ["median_hyperplane", "find_median_hyperplane"]

# expected rounds of randomized selection-by-scan charged per cut
_SELECTION_ROUNDS = 4.0


def median_hyperplane(points: np.ndarray, axis: Optional[int] = None) -> Hyperplane:
    """Axis-aligned hyperplane through the median, splitting points ~ in half.

    ``axis=None`` picks the axis of largest spread (Bentley rotates through
    axes level by level; largest spread is the standard robust choice and
    any fixed rule satisfies the analysis).  The threshold is nudged to the
    midpoint between the two middle order statistics so that, in generic
    position, sides differ by at most one point.  Raises ``ValueError``
    when every candidate axis is degenerate (all coordinates equal).
    """
    pts = as_points(points, min_points=2)
    n, d = pts.shape
    axes = [axis] if axis is not None else list(np.argsort(-(pts.max(0) - pts.min(0))))
    for ax in axes:
        col = pts[:, ax]
        lo = np.partition(col, (n - 1) // 2)[(n - 1) // 2]
        hi = np.partition(col, n // 2)[n // 2]
        threshold = 0.5 * (lo + hi)
        below = int(np.count_nonzero(col <= threshold))
        if 0 < below < n:
            normal = np.zeros(d)
            normal[ax] = 1.0
            return Hyperplane(normal, threshold)
        # threshold may equal the min or max under heavy duplication; try
        # pushing the plane to the other side of the tie block
        uniq = np.unique(col)
        if uniq.shape[0] >= 2:
            mid = 0.5 * (uniq[0] + uniq[1]) if below == n else 0.5 * (uniq[-2] + uniq[-1])
            below = int(np.count_nonzero(col <= mid))
            if 0 < below < n:
                normal = np.zeros(d)
                normal[ax] = 1.0
                return Hyperplane(normal, mid)
    raise ValueError("all points identical along every axis; no hyperplane splits them")


def find_median_hyperplane(
    points: np.ndarray, machine: Machine, axis: Optional[int] = None
) -> Tuple[Hyperplane, int]:
    """Median cut with scan-vector cost accounting.

    Charges ``_SELECTION_ROUNDS`` rounds of (compare + scan) over n — the
    expected cost of randomized median selection with a SCAN primitive.
    Returns ``(hyperplane, 1)`` (one "attempt", for symmetry with
    :func:`repro.separators.unit_time.find_good_separator`).
    """
    pts = as_points(points, min_points=2)
    n = pts.shape[0]
    machine.charge(machine.ewise_cost(n, _SELECTION_ROUNDS))
    machine.charge(machine.scan_cost(n).scaled(_SELECTION_ROUNDS))
    machine.bump("hyperplane_cuts")
    return median_hyperplane(pts, axis=axis), 1
