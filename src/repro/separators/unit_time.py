"""The Unit Time Sphere Separator Algorithm and its retry loop.

The paper's building block: a randomized algorithm that, in O(1) depth with
n processors, produces a sphere that ``(d+1)/(d+2) + eps``-splits the point
set with constant probability (probability >= 1/2 is all the analysis
needs; each recursion node retries until success, and the Bernoulli-trials
argument of Theorem 3.1 bounds the total number of retries along any
root-leaf path).

Cost accounting per attempt (n = current subproblem size):

- constant work for the sampled centerpoint + conformal map + circle
  (the sample is O(1) in n), charged as a constant serial cost;
- one elementwise pass to classify all n points against the candidate
  (depth O(1), work O(n));
- one SCAN to count the sides (depth 1 in the paper's model).

``find_good_separator`` implements "iteratively apply Unit Time Sphere
Separator Algorithm until finding a good sphere separator" from the
pseudo-code of Section 3.3, and reports the number of attempts so the
experiments can verify the geometric-retries claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from ..pvm.machine import Machine
from ..util.rng import as_generator
from .mttv import MTTVSeparatorSampler, default_sample_size
from .quality import default_delta, is_good_point_split

__all__ = ["SeparatorFailure", "UnitTimeSeparator", "find_good_separator"]

SeparatorLike = Union[Sphere, Hyperplane]

# Constant serial charge per attempt covering the O(1)-size sample work
# (lift + Radon iterations + map + circle draw).  The exact constant is
# irrelevant to every asymptotic claim; it only needs to be n-independent.
_ATTEMPT_SERIAL_COST = 8.0


class SeparatorFailure(RuntimeError):
    """Raised when no acceptable separator was found within the budget.

    The divide and conquer catches this and falls back to a brute-force
    solve of the offending subproblem (correctness is never at risk; this
    is the Las-Vegas convention of the paper's "random time" algorithms).
    """


@dataclass
class UnitTimeSeparator:
    """Prepared unit-time separator for one subproblem's point set."""

    points: np.ndarray
    seed: object = None
    sample_size: Optional[int] = None
    centerpoint: str = "radon"

    def __post_init__(self) -> None:
        pts = as_points(self.points, min_points=2)
        self.points = pts
        self.rng = as_generator(self.seed)
        d = pts.shape[1]
        size = self.sample_size if self.sample_size is not None else default_sample_size(d)
        self._sampler = MTTVSeparatorSampler(
            pts, seed=self.rng, sample_size=size, centerpoint=self.centerpoint
        )

    def refresh(self) -> None:
        """Recompute the sample/centerpoint (used after repeated failures)."""
        d = self.points.shape[1]
        size = self.sample_size if self.sample_size is not None else default_sample_size(d)
        self._sampler = MTTVSeparatorSampler(
            self.points, seed=self.rng, sample_size=size, centerpoint=self.centerpoint
        )

    def attempt(self, machine: Machine) -> SeparatorLike:
        """One unit-time attempt; charges O(1)-depth, O(n)-work."""
        n = self.points.shape[0]
        machine.charge(machine.serial_cost(_ATTEMPT_SERIAL_COST))
        machine.charge(machine.ewise_cost(n, 3.0))  # classify all points
        machine.charge(machine.scan_cost(n))  # count the sides
        machine.bump("separator_attempts")
        return self._sampler.draw()


def find_good_separator(
    points: np.ndarray,
    machine: Machine,
    seed: object = None,
    *,
    delta: Optional[float] = None,
    epsilon: float = 0.05,
    max_attempts: int = 64,
    refresh_every: int = 16,
    sample_size: Optional[int] = None,
    centerpoint: str = "radon",
) -> Tuple[SeparatorLike, int]:
    """Retry unit-time attempts until a separator delta-splits the points.

    Returns ``(separator, attempts)``.  Raises :class:`SeparatorFailure`
    after ``max_attempts`` failures (e.g. heavily duplicated inputs where
    no sphere can split the multiset).
    """
    pts = as_points(points, min_points=2)
    d = pts.shape[1]
    target = default_delta(d, epsilon) if delta is None else float(delta)
    unit = UnitTimeSeparator(pts, seed=seed, sample_size=sample_size, centerpoint=centerpoint)
    with machine.span("separator.search", n=int(pts.shape[0]), d=d) as span:
        for attempt in range(1, max_attempts + 1):
            try:
                candidate = unit.attempt(machine)
            except RuntimeError:
                machine.bump("separator_draw_failures")
                continue
            if is_good_point_split(candidate, pts, target):
                if span is not None:
                    span.attrs["attempts"] = attempt
                return candidate, attempt
            if attempt % refresh_every == 0:
                unit.refresh()
        if span is not None:
            span.attrs["attempts"] = max_attempts
            span.attrs["failed"] = True
    raise SeparatorFailure(
        f"no {target:.3f}-splitting separator in {max_attempts} attempts "
        f"(n={pts.shape[0]}, d={d})"
    )
