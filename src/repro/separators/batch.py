"""Batched separator construction and evaluation for the frontier engine.

The frontier engine (:mod:`repro.core.frontier`) carries *all* active
subproblems of one tree level at once, so the per-node separator pipeline
is reorganised into cross-segment batches:

- :func:`prepare_samplers` builds one MTTV sampler per segment with the
  iterated-Radon centerpoint SVDs of every segment stacked into single
  LAPACK calls (:func:`~repro.geometry.centerpoints.iterated_radon_centerpoint_many`)
  — the dominant cost of separator search.
- :func:`batched_side_of_points` classifies the concatenation of all
  segments against their candidate separators in one vectorised pass for
  spheres (the common case), falling back to per-segment evaluation for
  hyperplane candidates, whose BLAS matrix–vector product is not
  guaranteed bit-stable under batching.
- :func:`side_split_is_good` applies the recursion's acceptance test to a
  precomputed side vector.

Everything here is bit-for-bit equivalent to the per-node code paths in
:mod:`repro.separators.mttv` / :mod:`repro.separators.quality`: each
segment consumes its own generator in the same order, so the recursive
and frontier engines draw identical separators from identical seeds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..geometry.centerpoints import coordinate_median, iterated_radon_centerpoint_many
from ..geometry.points import as_points
from ..geometry.spheres import Hyperplane, Sphere
from .mttv import MTTVSeparatorSampler, default_sample_size, sampled_lift

__all__ = ["prepare_samplers", "batched_side_of_points", "side_split_is_good"]

SeparatorLike = Union[Sphere, Hyperplane]


def prepare_samplers(
    point_sets: Sequence[np.ndarray],
    rngs: Sequence[np.random.Generator],
    *,
    sample_size: Optional[int] = None,
    centerpoint: str = "radon",
) -> List[MTTVSeparatorSampler]:
    """One :class:`MTTVSeparatorSampler` per point set, centerpoints batched.

    Mirrors :class:`~repro.separators.unit_time.UnitTimeSeparator`
    construction (and ``refresh``): the sample size is resolved per set via
    :func:`default_sample_size` when not given, the subsample ``choice``
    and the Radon permutations come from each set's own generator in
    construction order, and the resulting samplers are indistinguishable
    from independently constructed ones.
    """
    if len(point_sets) != len(rngs):
        raise ValueError("need exactly one rng per point set")
    sets = [as_points(p, min_points=1) for p in point_sets]
    sizes = []
    lifted = []
    for pts, rng in zip(sets, rngs):
        size = sample_size if sample_size is not None else default_sample_size(pts.shape[1])
        sizes.append(size)
        lifted.append(sampled_lift(pts, rng, size))
    if centerpoint == "radon":
        centers = iterated_radon_centerpoint_many(lifted, list(rngs))
    elif centerpoint == "median":
        centers = [coordinate_median(lift) for lift in lifted]
    else:
        raise ValueError(f"unknown centerpoint method {centerpoint!r}")
    return [
        MTTVSeparatorSampler.from_center_estimate(
            pts, rng, z, sample_size=size, centerpoint=centerpoint
        )
        for pts, rng, z, size in zip(sets, rngs, centers, sizes)
    ]


def batched_side_of_points(
    separators: Sequence[SeparatorLike],
    point_sets: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """``separator.side_of_points(points)`` for many pairs, spheres batched.

    Sphere segments are concatenated and classified in one flat pass with
    per-row centers/radii gathered by segment — the signed distance
    ``|x - c| - r`` is a row-local computation, so the result is bitwise
    identical to the per-segment call.  Hyperplane candidates (the rare
    degenerate pull-backs) are evaluated per segment.
    """
    if len(separators) != len(point_sets):
        raise ValueError("need exactly one point set per separator")
    sides: List[Optional[np.ndarray]] = [None] * len(separators)
    sphere_pos = [i for i, sep in enumerate(separators) if isinstance(sep, Sphere)]
    for i, sep in enumerate(separators):
        if not isinstance(sep, Sphere):
            sides[i] = sep.side_of_points(point_sets[i])
    if sphere_pos:
        lengths = np.array([point_sets[i].shape[0] for i in sphere_pos], dtype=np.int64)
        flat = np.concatenate([point_sets[i] for i in sphere_pos], axis=0)
        centers = np.stack([separators[i].center for i in sphere_pos], axis=0)
        radii = np.array([separators[i].radius for i in sphere_pos], dtype=np.float64)
        rows = np.repeat(np.arange(len(sphere_pos)), lengths)
        s = np.linalg.norm(flat - centers[rows], axis=1) - radii[rows]
        side_flat = np.where(s > 0.0, 1, -1).astype(np.int8)
        bounds = np.concatenate(([0], np.cumsum(lengths)))
        for j, i in enumerate(sphere_pos):
            sides[i] = side_flat[bounds[j] : bounds[j + 1]]
    return sides  # type: ignore[return-value]


def side_split_is_good(side: np.ndarray, delta: float) -> bool:
    """The acceptance test of :func:`~repro.separators.quality.is_good_point_split`,
    applied to an already-computed side vector."""
    n = side.shape[0]
    if n < 2:
        return False
    interior = int(np.count_nonzero(side < 0))
    exterior = n - interior
    if interior == 0 or exterior == 0:
        return False
    return max(interior, exterior) / n <= delta
