"""Seeded random-number plumbing.

Every randomized component takes either a seed or a ``numpy.random.Generator``;
this module normalises that and provides independent child streams so that
nested algorithms (separator retries inside recursive calls) stay
reproducible regardless of execution order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["as_generator", "spawn", "seed_sequence_root", "path_rng"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` (None, int, SeedSequence, or Generator) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_sequence_root(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalise ``seed`` into a :class:`~numpy.random.SeedSequence` root.

    The root anchors a tree of per-node generators (see :func:`path_rng`):
    both execution engines derive the generator of a partition-tree node
    from the root and the node's 0/1 path alone, so the RNG stream a node
    sees is independent of traversal order — the keystone of the
    recursive/frontier engine-equivalence guarantee.

    ``None`` draws fresh OS entropy (once, here).  A ``Generator`` is
    consumed for a single 64-bit integer to derive the root, keeping runs
    that share a generator statistically independent.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def path_rng(root: np.random.SeedSequence, path: tuple = ()) -> np.random.Generator:
    """Generator for the tree node addressed by ``path`` (0/1 steps) under ``root``.

    Implemented with SeedSequence spawn keys: the node's key is the root's
    spawn key extended by the path, so distinct nodes get provably distinct,
    well-mixed streams and the same node always gets the same stream.
    """
    node = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + tuple(path)
    )
    return np.random.default_rng(node)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent child generators of ``rng``."""
    if n < 0:
        raise ValueError("cannot spawn a negative number of streams")
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - numpy < 1.25 fallback
        seed_seq = rng.bit_generator._seed_seq  # type: ignore[attr-defined]
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
