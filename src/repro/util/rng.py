"""Seeded random-number plumbing.

Every randomized component takes either a seed or a ``numpy.random.Generator``;
this module normalises that and provides independent child streams so that
nested algorithms (separator retries inside recursive calls) stay
reproducible regardless of execution order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["as_generator", "spawn"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` (None, int, SeedSequence, or Generator) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent child generators of ``rng``."""
    if n < 0:
        raise ValueError("cannot spawn a negative number of streams")
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - numpy < 1.25 fallback
        seed_seq = rng.bit_generator._seed_seq  # type: ignore[attr-defined]
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
