"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

__all__ = ["check_positive_int", "check_probability", "check_in_range"]


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1] and return it."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return v


def check_in_range(value: float, name: str, low: float, high: float, *, open_ends: bool = False) -> float:
    """Validate that ``value`` lies in [low, high] (or (low, high)) and return it."""
    v = float(value)
    ok = low < v < high if open_ends else low <= v <= high
    if not ok:
        brackets = "()" if open_ends else "[]"
        raise ValueError(f"{name} must be in {brackets[0]}{low}, {high}{brackets[1]}, got {value}")
    return v
