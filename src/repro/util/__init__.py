"""Shared utilities: RNG plumbing, recursion headroom, argument validation."""

from .recursion import estimated_tree_levels, recursion_guard
from .rng import as_generator, path_rng, seed_sequence_root, spawn
from .validation import check_in_range, check_positive_int, check_probability

__all__ = [
    "as_generator",
    "spawn",
    "seed_sequence_root",
    "path_rng",
    "recursion_guard",
    "estimated_tree_levels",
    "check_in_range",
    "check_positive_int",
    "check_probability",
]
