"""Shared utilities: RNG plumbing and argument validation."""

from .rng import as_generator, spawn
from .validation import check_in_range, check_positive_int, check_probability

__all__ = [
    "as_generator",
    "spawn",
    "check_in_range",
    "check_positive_int",
    "check_probability",
]
