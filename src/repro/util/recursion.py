"""Recursion-depth headroom for the node-at-a-time engines.

The recursive engines (:mod:`repro.core.fast_dnc`, :mod:`repro.core.simple_dnc`)
descend one Python frame chain per partition-tree path.  Adversarial
workloads — long collinear chains, heavy duplication, extreme ``epsilon`` —
can drive the tree deep enough to blow through CPython's default
recursion limit (1000) even though the algorithm itself is fine.

:func:`recursion_guard` raises :func:`sys.setrecursionlimit` for the
duration of a solve when the estimated frame need exceeds the current
limit, and restores it afterwards.  It only ever *raises* the limit
(never lowers it below the ambient setting), and it sizes the raise from
an analytic bound on the tree depth rather than a blanket huge constant.
"""

from __future__ import annotations

import math
import sys
from contextlib import contextmanager

__all__ = ["recursion_guard", "estimated_tree_levels"]

# Measured ceiling on Python frames consumed per partition-tree level by
# the recursive engines (solve frame, context managers, separator search,
# nested query-structure builds); generous so the estimate errs safe.
FRAMES_PER_LEVEL = 24

# Frames reserved beyond the estimate for whatever the caller is nested in.
_SLACK = 256


def estimated_tree_levels(n: int, base: int, ratio: float) -> int:
    """Upper bound on tree depth when each split keeps at most ``ratio`` of
    the points on its larger side.

    For the fast engine ``ratio`` is the separator quality ``delta`` — a
    theorem-backed guarantee.  A ``ratio`` outside ``(0, 1)`` (degenerate
    configuration) falls back to the trivial linear bound: every split
    strictly shrinks both sides, so depth never exceeds ``n``.
    """
    base = max(base, 1)
    if n <= base:
        return 1
    if not 0.0 < ratio < 1.0:
        return n
    levels = math.log(n / base) / math.log(1.0 / ratio)
    return min(n, int(math.ceil(levels)) + 2)


def _stack_depth() -> int:
    frame = sys._getframe()
    depth = 0
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


@contextmanager
def recursion_guard(levels: int):
    """Temporarily ensure headroom for ``levels`` tree levels of recursion.

    No-op when the current limit already suffices; otherwise raises the
    interpreter recursion limit for the ``with`` body and restores the
    previous value on exit.
    """
    needed = _stack_depth() + max(levels, 1) * FRAMES_PER_LEVEL + _SLACK
    current = sys.getrecursionlimit()
    if needed <= current:
        yield
        return
    sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(current)
