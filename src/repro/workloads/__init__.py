"""Point-set generators: synthetic distributions and the adversarial
constructions behind the paper's hyperplane-vs-sphere motivation."""

from .io import WorkloadRecord, load_workload, regenerate, save_workload
from .adversarial import concentric_shells, plane_hugger, slab_pairs
from .synthetic import (
    WORKLOADS,
    annulus,
    clustered,
    collinear,
    gaussian,
    grid_jitter,
    make_workload,
    spiral,
    two_moons,
    uniform_ball,
    uniform_cube,
    with_duplicates,
)

__all__ = [
    "WorkloadRecord",
    "load_workload",
    "regenerate",
    "save_workload",
    "concentric_shells",
    "plane_hugger",
    "slab_pairs",
    "WORKLOADS",
    "annulus",
    "clustered",
    "collinear",
    "gaussian",
    "grid_jitter",
    "make_workload",
    "spiral",
    "two_moons",
    "uniform_ball",
    "uniform_cube",
    "with_duplicates",
]
