"""Workload persistence: save/load point sets with provenance.

Experiments should be re-runnable bit-for-bit; these helpers store points
together with the generator name, parameters and seed that produced them,
so a saved workload can be both reloaded and *regenerated* and the two
checked against each other.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .synthetic import make_workload

__all__ = ["save_workload", "load_workload", "regenerate", "WorkloadRecord"]

PathLike = Union[str, Path]


class WorkloadRecord:
    """Points plus the recipe that made them."""

    __slots__ = ("points", "name", "n", "d", "seed")

    def __init__(self, points: np.ndarray, name: str, n: int, d: int, seed: Optional[int]) -> None:
        self.points = points
        self.name = name
        self.n = n
        self.d = d
        self.seed = seed

    def matches_recipe(self) -> bool:
        """True when regenerating from the stored recipe reproduces the
        stored points exactly (seed recorded and generator unchanged)."""
        if self.seed is None:
            return False
        fresh = make_workload(self.name, self.n, self.d, self.seed)
        return fresh.shape == self.points.shape and bool(np.array_equal(fresh, self.points))


def save_workload(
    path: PathLike,
    points: np.ndarray,
    *,
    name: str = "custom",
    seed: Optional[int] = None,
) -> None:
    """Write points + provenance to an ``.npz`` file."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    meta = json.dumps({"name": name, "n": int(pts.shape[0]), "d": int(pts.shape[1]), "seed": seed})
    np.savez(path, points=pts, meta=np.frombuffer(meta.encode(), dtype=np.uint8))


def load_workload(path: PathLike) -> WorkloadRecord:
    """Read a workload saved by :func:`save_workload`."""
    data = np.load(path)
    if "points" not in data.files:
        raise ValueError(f"{path} is not a workload file (no 'points' array)")
    pts = np.asarray(data["points"], dtype=np.float64)
    if "meta" in data.files:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
    else:
        meta = {"name": "custom", "n": pts.shape[0], "d": pts.shape[1], "seed": None}
    return WorkloadRecord(pts, meta["name"], meta["n"], meta["d"], meta["seed"])


def regenerate(record: WorkloadRecord) -> np.ndarray:
    """Re-run the stored recipe (requires a recorded seed)."""
    if record.seed is None:
        raise ValueError("workload has no recorded seed; cannot regenerate")
    return make_workload(record.name, record.n, record.d, record.seed)
