"""Adversarial workloads for the hyperplane-vs-sphere motivation (E8).

Section 1 of the paper: "the number of edges from the k-nearest neighbor
graph that cross the hyperplane may be as large as Omega(n)".  These
generators realise that lower bound: point sets where *every* median
hyperplane cut is crossed by a constant fraction of the k-NN balls, while
a sphere separator still only cuts O(n^{(d-1)/d}).
"""

from __future__ import annotations

import numpy as np

from ..util.rng import as_generator

__all__ = ["slab_pairs", "plane_hugger", "concentric_shells"]


def slab_pairs(n: int, d: int, seed: object = None, *, gap: float = 1e-4, spacing: float = 1.0) -> np.ndarray:
    """n/2 tight point pairs straddling the hyperplane ``x_0 = 0``.

    Pairs sit at ``x_0 = ±gap/2`` and are spread out along the remaining
    axes with ``spacing`` between pairs, so each point's nearest neighbor
    is its partner across the plane: the median cut at ``x_0 = 0`` crosses
    ~n/2 nearest-neighbor balls — the Omega(n) construction.
    """
    rng = as_generator(seed)
    pairs = n // 2
    if d == 1:
        base = np.arange(pairs, dtype=np.float64)[:, None] * spacing
        pts = np.concatenate([base - gap / 2, base + gap / 2], axis=0)[:, :1]
        # 1-D: pairs along the line itself
        return pts[:n]
    side = int(np.ceil(pairs ** (1.0 / (d - 1))))
    axes = [np.arange(side, dtype=np.float64) * spacing for _ in range(d - 1)]
    mesh = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, d - 1)[:pairs]
    mesh = mesh + rng.uniform(-0.05, 0.05, size=mesh.shape) * spacing
    left = np.concatenate([np.full((pairs, 1), -gap / 2), mesh], axis=1)
    right = np.concatenate([np.full((pairs, 1), +gap / 2), mesh], axis=1)
    pts = np.concatenate([left, right], axis=0)
    if pts.shape[0] < n:  # odd n: drop in an extra far-away point
        extra = np.full((n - pts.shape[0], d), 10.0 * spacing * side)
        pts = np.concatenate([pts, extra], axis=0)
    return pts[:n]


def plane_hugger(n: int, d: int, seed: object = None, *, thickness: float = 1e-3) -> np.ndarray:
    """Points uniform in a razor-thin slab around ``x_0 = 0``.

    Any split must cut through the slab; k-NN balls in a slab of m points
    have radius ~ m^{-1/(d-1)} in the slab directions, so a hyperplane
    through the slab's long direction crosses Omega(n^{(d-2)/(d-1)}) balls
    — and the *median* cut along x_0 (the natural first cut) crosses
    Omega(n).
    """
    rng = as_generator(seed)
    pts = rng.random((n, d))
    pts[:, 0] = (pts[:, 0] - 0.5) * thickness
    return pts


def concentric_shells(n: int, d: int, seed: object = None, *, shells: int = 4) -> np.ndarray:
    """Points on nested thin shells — good for spheres, bad for planes.

    A sphere separator can snap between shells (cutting ~0 balls); every
    hyperplane through the center crosses all shells.
    """
    rng = as_generator(seed)
    per = n // shells
    parts = []
    for s in range(shells):
        m = per if s < shells - 1 else n - per * (shells - 1)
        g = rng.standard_normal((m, d))
        g /= np.linalg.norm(g, axis=1, keepdims=True)
        radius = (s + 1.0) / shells
        parts.append(g * radius + rng.standard_normal((m, d)) * (0.001 / shells))
    return np.concatenate(parts, axis=0)
