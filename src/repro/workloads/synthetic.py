"""Synthetic point workloads.

Generators for the distributions the experiments sweep over.  Everything
takes an explicit seed/Generator and returns a float64 (n, d) array; names
match the workload column of EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from ..util.rng import as_generator

__all__ = [
    "uniform_cube",
    "uniform_ball",
    "gaussian",
    "clustered",
    "grid_jitter",
    "annulus",
    "collinear",
    "with_duplicates",
    "two_moons",
    "spiral",
    "WORKLOADS",
    "make_workload",
]


def uniform_cube(n: int, d: int, seed: object = None) -> np.ndarray:
    """n i.i.d. uniform points in the unit cube [0, 1]^d."""
    return as_generator(seed).random((n, d))


def uniform_ball(n: int, d: int, seed: object = None) -> np.ndarray:
    """n i.i.d. uniform points in the unit ball of R^d."""
    rng = as_generator(seed)
    g = rng.standard_normal((n, d))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    r = rng.random(n) ** (1.0 / d)
    return g * r[:, None]


def gaussian(n: int, d: int, seed: object = None, *, scale: float = 1.0) -> np.ndarray:
    """n i.i.d. standard Gaussian points (times ``scale``)."""
    return as_generator(seed).standard_normal((n, d)) * scale


def clustered(
    n: int,
    d: int,
    seed: object = None,
    *,
    clusters: int = 16,
    spread: float = 0.01,
) -> np.ndarray:
    """A mixture of ``clusters`` tight Gaussian blobs in the unit cube.

    Highly non-uniform density — the workload where hyperplane cuts and
    uniform grids struggle while sphere separators keep their guarantees.
    """
    rng = as_generator(seed)
    centers = rng.random((clusters, d))
    assign = rng.integers(0, clusters, size=n)
    return centers[assign] + rng.standard_normal((n, d)) * spread


def grid_jitter(n: int, d: int, seed: object = None, *, jitter: float = 0.1) -> np.ndarray:
    """~n points on a regular grid with per-point jitter (fraction of cell).

    The grid side is ``ceil(n^(1/d))``; exactly n points are returned by
    truncating the lattice enumeration.
    """
    rng = as_generator(seed)
    side = int(np.ceil(n ** (1.0 / d)))
    axes = [np.arange(side, dtype=np.float64) for _ in range(d)]
    mesh = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, d)[:n]
    return (mesh + 0.5 + rng.uniform(-jitter, jitter, size=(mesh.shape[0], d))) / side


def annulus(n: int, d: int, seed: object = None, *, inner: float = 0.8) -> np.ndarray:
    """n points in a thin spherical shell (radius in [inner, 1]).

    Hollow interiors stress the centerpoint step (the "center" of the
    data is empty space).
    """
    rng = as_generator(seed)
    g = rng.standard_normal((n, d))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    r = (inner**d + rng.random(n) * (1 - inner**d)) ** (1.0 / d)
    return g * r[:, None]


def collinear(n: int, d: int, seed: object = None, *, noise: float = 0.0) -> np.ndarray:
    """n points on (or near) a line through the cube — degenerate position."""
    rng = as_generator(seed)
    t = rng.random(n)
    direction = np.ones(d) / np.sqrt(d)
    pts = t[:, None] * direction[None, :]
    if noise > 0:
        pts = pts + rng.standard_normal((n, d)) * noise
    return pts


def with_duplicates(base: np.ndarray, fraction: float, seed: object = None) -> np.ndarray:
    """Replace a fraction of points with exact copies of other points."""
    rng = as_generator(seed)
    pts = np.array(base, dtype=np.float64, copy=True)
    n = pts.shape[0]
    ndup = int(round(fraction * n))
    if ndup:
        dst = rng.choice(n, size=ndup, replace=False)
        src = rng.integers(0, n, size=ndup)
        pts[dst] = pts[src]
    return pts


def two_moons(n: int, d: int, seed: object = None, *, noise: float = 0.05) -> np.ndarray:
    """Two interleaved half-circles (lifted to d dims by zero-padding).

    The classic non-convex clustering shape; a hyperplane cannot separate
    the moons but spheres navigate them naturally.
    """
    rng = as_generator(seed)
    half = n // 2
    t1 = rng.random(half) * np.pi
    t2 = rng.random(n - half) * np.pi
    upper = np.stack([np.cos(t1), np.sin(t1)], axis=1)
    lower = np.stack([1.0 - np.cos(t2), 0.5 - np.sin(t2)], axis=1)
    pts2 = np.concatenate([upper, lower], axis=0)
    pts2 += rng.standard_normal(pts2.shape) * noise
    if d == 2:
        return pts2
    out = np.zeros((n, d))
    out[:, :2] = pts2
    out[:, 2:] = rng.standard_normal((n, d - 2)) * noise
    return out


def spiral(n: int, d: int, seed: object = None, *, turns: float = 3.0, noise: float = 0.01) -> np.ndarray:
    """Points along an Archimedean spiral (zero-padded above 2 dims).

    A 1-dimensional manifold coiled through the plane: nearest-neighbor
    structure follows the arc, so axis-aligned cuts cross many balls while
    spheres can isolate whole coils.
    """
    rng = as_generator(seed)
    t = np.sort(rng.random(n)) * turns * 2 * np.pi
    r = t / (turns * 2 * np.pi)
    pts2 = np.stack([r * np.cos(t), r * np.sin(t)], axis=1)
    pts2 += rng.standard_normal(pts2.shape) * noise
    if d == 2:
        return pts2
    out = np.zeros((n, d))
    out[:, :2] = pts2
    out[:, 2:] = rng.standard_normal((n, d - 2)) * noise
    return out


WORKLOADS = {
    "uniform": uniform_cube,
    "two_moons": two_moons,
    "spiral": spiral,
    "ball": uniform_ball,
    "gaussian": gaussian,
    "clustered": clustered,
    "grid": grid_jitter,
    "annulus": annulus,
    "collinear": collinear,
}


def make_workload(name: str, n: int, d: int, seed: object = None) -> np.ndarray:
    """Dispatch by workload name (keys of :data:`WORKLOADS`)."""
    try:
        gen = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}") from None
    return gen(n, d, seed)
