"""Point-set utilities and distance kernels.

Everything downstream works on plain ``(n, d)`` float64 arrays; this module
centralises validation, bounding boxes, and the chunked vectorized distance
kernels that the brute-force baseline and the correction steps share.

The kernels are written per the hpc guides: no Python-level loops over
points, square distances preferred over square roots until the last step,
and chunking to keep the working set inside cache for large n.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "as_points",
    "bounding_box",
    "diameter_upper_bound",
    "pairwise_sq_dists",
    "pairwise_sq_dists_direct",
    "refine_selected_sq_dists",
    "sq_dists_to",
    "chunked_pairs",
    "kth_smallest_per_row",
]


def as_points(
    points: np.ndarray,
    *,
    min_points: int = 0,
    name: str = "points",
    dtype: Optional[np.dtype] = np.float64,
) -> np.ndarray:
    """Validate and return a float C-contiguous ``(n, d)`` point array.

    ``dtype=np.float64`` (the default) keeps the historical contract of
    always returning float64.  ``dtype=None`` *preserves* float32 input
    without a silent upcast copy (anything that is not already float32
    or float64 still lands in float64); ``dtype=np.float32`` opts into
    compact storage explicitly.

    Raises ``ValueError`` on wrong rank, non-finite coordinates, or fewer
    than ``min_points`` rows.
    """
    if dtype is None:
        have = getattr(points, "dtype", None)
        dtype = np.float32 if have == np.float32 else np.float64
    arr = np.ascontiguousarray(points, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D (n, d) array, got shape {arr.shape}")
    if arr.shape[1] < 1:
        raise ValueError(f"{name} must have dimension >= 1")
    if arr.shape[0] < min_points:
        raise ValueError(f"{name} needs at least {min_points} points, got {arr.shape[0]}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite coordinates")
    return arr


def bounding_box(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(lower, upper) corners of the axis-aligned bounding box."""
    pts = as_points(points, min_points=1)
    return pts.min(axis=0), pts.max(axis=0)


def diameter_upper_bound(points: np.ndarray) -> float:
    """Diagonal of the bounding box — a cheap upper bound on the diameter."""
    lo, hi = bounding_box(points)
    return float(np.linalg.norm(hi - lo))


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All squared distances between rows of ``a`` (m, d) and ``b`` (n, d).

    Uses the ``|a|^2 + |b|^2 - 2 a.b`` expansion (one GEMM instead of an
    (m, n, d) broadcast), clipped at zero against rounding noise.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    aa = np.einsum("ij,ij->i", a, a)
    bb = np.einsum("ij,ij->i", b, b)
    out = aa[:, None] + bb[None, :] - 2.0 * (a @ b.T)
    np.maximum(out, 0.0, out=out)
    return out


def pairwise_sq_dists_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All squared distances between rows of ``a`` and ``b``, diff-based.

    Numerically robust where :func:`pairwise_sq_dists` suffers catastrophic
    cancellation (near-coincident points far from the origin), at the price
    of materialising an (m, n, d) intermediate — use for small blocks
    (base cases, leaf tests), not all-pairs over the full input.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("mnd,mnd->mn", diff, diff)


def refine_selected_sq_dists(
    queries: np.ndarray, data: np.ndarray, nbr_idx: np.ndarray, nbr_sq: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute selected neighbor distances diff-based and re-sort rows.

    ``nbr_idx``/``nbr_sq`` are (n, k) selections (indices into ``data``,
    one row per query) typically produced with the fast GEMM kernel; this
    replaces each finite entry with the exact ``|q_i - data_j|^2`` and
    restores the per-row (distance, index) order.  Padded entries
    (index -1) keep ``inf``.
    """
    q = np.asarray(queries, dtype=np.float64)
    d = np.asarray(data, dtype=np.float64)
    idx = np.asarray(nbr_idx, dtype=np.int64)
    valid = idx >= 0
    safe = np.where(valid, idx, 0)
    diff = q[:, None, :] - d[safe]
    sq = np.einsum("nkd,nkd->nk", diff, diff)
    sq = np.where(valid, sq, np.inf)
    order = np.lexsort((np.where(valid, idx, np.iinfo(np.int64).max), sq), axis=-1)
    rows = np.arange(idx.shape[0])[:, None]
    return idx[rows, order], sq[rows, order]


def sq_dists_to(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Squared distances from every row of ``points`` to a single point ``q``."""
    diff = np.asarray(points, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return np.einsum("ij,ij->i", diff, diff)


def chunked_pairs(n: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` row ranges covering ``range(n)`` in blocks."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    for start in range(0, n, chunk):
        yield start, min(start + chunk, n)


def kth_smallest_per_row(sq: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """For each row, the indices and values of its k smallest entries, sorted.

    Ties broken by column index (via stable ordering on (value, column)),
    so results are deterministic.  Returns ``(indices, values)`` of shape
    (rows, k).  Requires ``k <= sq.shape[1]``.
    """
    m, n = sq.shape
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} columns")
    if k == n:
        part = np.argsort(sq, axis=1, kind="stable")
    else:
        part = np.argpartition(sq, k - 1, axis=1)[:, :k]
        rows = np.arange(m)[:, None]
        order = np.argsort(sq[rows, part], axis=1, kind="stable")
        part = part[rows, order]
    part = part[:, :k]
    rows = np.arange(m)[:, None]
    vals = sq[rows, part]
    # canonicalise ties within the selected k: equal values ordered by column
    order = np.lexsort((part, vals), axis=1)
    part = part[rows, order]
    vals = vals[rows, order]
    return part, vals
