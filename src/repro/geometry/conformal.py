"""Conformal maps of the sphere used by the MTTV separator.

After lifting the input points to S^d and finding an approximate
centerpoint ``z`` (inside the ball), MTTV apply a conformal transformation
that moves (the image of) ``z`` to the origin, so that *any* great circle
afterwards splits the points by a constant ratio.  The transformation is a
composition of

1. an orthogonal map Q taking ``z / |z|`` to the pole axis ``e_{d+1}``
   (a Householder reflection — symmetric, involutive), and
2. a *conformal dilation* D_delta with ``delta = sqrt((1 - r)/(1 + r))``,
   ``r = |z|``: project to R^d from the pole, scale by delta, lift back.

Both maps send circles on S^d to circles on S^d, so the random great circle
chosen in transformed coordinates can be pulled back analytically to a
circle in original sphere coordinates, and from there (via
:mod:`repro.geometry.stereographic`) to an explicit sphere or hyperplane in
R^d.  Circles are transported by the sphere<->plane correspondence: a
dilation by ``delta`` on S^d corresponds in the plane to scaling an explicit
sphere's center and radius by ``delta`` (or a hyperplane's offset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .spheres import Hyperplane, Sphere
from .stereographic import SphereCap, circle_to_separator, lift, project, separator_to_circle

__all__ = ["ConformalMap", "rotation_to_pole"]


def rotation_to_pole(u: np.ndarray) -> np.ndarray:
    """Orthogonal (m, m) matrix Q with ``Q u = e_m`` for a unit vector u.

    Implemented as the Householder reflection swapping u and e_m; Q is
    symmetric and its own inverse, which keeps the inverse-transport code
    trivial.  Returns the identity when u is (numerically) the pole itself.
    """
    u = np.asarray(u, dtype=np.float64)
    m = u.shape[0]
    norm = np.linalg.norm(u)
    if norm == 0:
        raise ValueError("cannot rotate the zero vector to the pole")
    u = u / norm
    pole = np.zeros(m)
    pole[-1] = 1.0
    v = u - pole
    vv = float(v @ v)
    if vv < 1e-30:
        return np.eye(m)
    return np.eye(m) - 2.0 * np.outer(v, v) / vv


@dataclass(frozen=True)
class ConformalMap:
    """The MTTV centering map: rotate ``center_direction`` to the pole, then
    dilate by ``delta`` in the plane.

    Attributes
    ----------
    rotation:
        Orthogonal ``(d+2? no: d+1, d+1)`` matrix applied to lifted points.
    delta:
        Dilation factor in (0, 1]; 1 means no dilation.
    """

    rotation: np.ndarray
    delta: float

    def __post_init__(self) -> None:
        q = np.asarray(self.rotation, dtype=np.float64)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError("rotation must be a square matrix")
        if not np.allclose(q @ q.T, np.eye(q.shape[0]), atol=1e-8):
            raise ValueError("rotation must be orthogonal")
        if self.delta <= 0 or not np.isfinite(self.delta):
            raise ValueError(f"dilation factor must be positive finite, got {self.delta}")
        object.__setattr__(self, "rotation", q)
        object.__setattr__(self, "delta", float(self.delta))

    @classmethod
    def centering(cls, centerpoint: np.ndarray) -> "ConformalMap":
        """Map sending (approximately) ``centerpoint`` (inside the ball,
        |z| < 1) to the sphere's center.

        Uses the MTTV recipe: rotate z to the positive pole axis, then
        dilate by ``sqrt((1 - r)/(1 + r))`` where ``r = |z|``.
        """
        z = np.asarray(centerpoint, dtype=np.float64)
        r = float(np.linalg.norm(z))
        if r >= 1.0:
            # a centerpoint of points on the sphere always lies inside, but
            # numerical noise from Radon iterations can push it out; clamp.
            z = z * (1.0 - 1e-9) / r
            r = 1.0 - 1e-9
        if r < 1e-12:
            return cls(np.eye(z.shape[0]), 1.0)
        q = rotation_to_pole(z / r)
        delta = float(np.sqrt((1.0 - r) / (1.0 + r)))
        return cls(q, delta)

    @property
    def ambient_dim(self) -> int:
        return self.rotation.shape[0]

    # -- point transport ----------------------------------------------------

    def apply_to_sphere_points(self, y: np.ndarray) -> np.ndarray:
        """Transport points on S^d: rotate, then dilate through the plane.

        Points that land (numerically) on the pole after rotation are
        nudged inward; the dilation is undefined exactly at the pole.
        """
        arr = np.asarray(y, dtype=np.float64) @ self.rotation.T
        if self.delta == 1.0:
            return arr
        # guard the pole before projecting
        last = arr[:, -1]
        bad = last >= 1.0 - 1e-12
        if bad.any():
            arr = arr.copy()
            arr[bad, -1] = 1.0 - 1e-12
            head = arr[bad, :-1]
            norms = np.linalg.norm(head, axis=1, keepdims=True)
            unit = np.where(norms > 0, head / norms, np.full_like(head, 0.0))
            if (norms == 0).any():
                unit[(norms == 0)[:, 0], 0] = 1.0
            arr[bad, :-1] = unit * np.sqrt(max(0.0, 1.0 - (1.0 - 1e-12) ** 2))
        plane = project(arr)
        return lift(self.delta * plane)

    # -- circle transport ----------------------------------------------------

    def pull_back_circle(self, circle: SphereCap) -> SphereCap:
        """Preimage (in original sphere coordinates) of a circle given in
        transformed coordinates.

        Inverse dilation is transported through the plane correspondence:
        the circle's planar preimage under the lift is scaled by
        ``1/delta``; the inverse rotation is the (symmetric) rotation
        itself applied to the circle normal.
        """
        undilated = _scale_circle(circle, 1.0 / self.delta)
        # inverse rotation: y -> Q^T y, so the circle {a.y = b} pulls back to
        # {(Q a).y = b}; Q is symmetric (Householder) but use .T for clarity.
        a0 = self.rotation.T @ undilated.normal
        return SphereCap(a0, undilated.offset)


def _scale_circle(circle: SphereCap, factor: float) -> SphereCap:
    """Transport a circle on S^d through plane-scaling by ``factor``.

    The circle is pulled down to an explicit sphere/hyperplane in R^d,
    scaled about the origin, and pushed back up.  Degenerate pull-backs
    (circle through the pole) scale as hyperplanes, which is exact.
    """
    if factor == 1.0:
        return circle
    sep = circle_to_separator(circle)
    scaled: Union[Sphere, Hyperplane]
    if isinstance(sep, Sphere):
        scaled = Sphere(sep.center * factor, sep.radius * factor)
    else:
        scaled = Hyperplane(sep.normal, sep.offset * factor)
    return separator_to_circle(scaled)
