"""Neighborhood systems: finite collections of balls (Section 2 of the paper).

A *d-dimensional neighborhood system* is a set of balls ``B_i = B(p_i, r_i)``.
Key quantities reproduced here:

- **ply** of a point (how many balls cover it) and the k-ply property;
- the **k-neighborhood system** property (each ball's open interior contains
  at most k centers);
- the **intersection number** ``iota_B(S)`` of a separator — the size of the
  separator set ``B_O(S)``;
- the Density Lemma (Lemma 2.1) check: a k-neighborhood system is
  ``tau_d * k``-ply, with ``tau_d`` the kissing number.

These are the objects the query structure of Section 3 indexes and that the
correction steps of Sections 5–6 march around.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .points import as_points, pairwise_sq_dists, sq_dists_to
from .spheres import Separator

__all__ = ["BallSystem"]


@dataclass(frozen=True)
class BallSystem:
    """A finite collection of balls ``B(center_i, radius_i)`` in R^d.

    ``radii`` may contain ``inf`` (balls of sub-problems too small to pin
    down a k-th neighbor); such balls cover every point and intersect every
    separator.
    """

    centers: np.ndarray
    radii: np.ndarray

    def __post_init__(self) -> None:
        centers = as_points(self.centers, name="centers")
        radii = np.asarray(self.radii, dtype=np.float64)
        if radii.shape != (centers.shape[0],):
            raise ValueError(
                f"radii shape {radii.shape} does not match {centers.shape[0]} centers"
            )
        if np.any(np.isnan(radii)) or np.any(radii < 0):
            raise ValueError("radii must be non-negative (inf allowed, nan not)")
        object.__setattr__(self, "centers", centers)
        object.__setattr__(self, "radii", radii)

    def __len__(self) -> int:
        return self.centers.shape[0]

    @property
    def dim(self) -> int:
        return self.centers.shape[1]

    # -- coverage ---------------------------------------------------------

    def covering(self, point: np.ndarray, *, closed: bool = False) -> np.ndarray:
        """Indices of balls whose interior (or closure) contains ``point``."""
        sq = sq_dists_to(self.centers, point)
        r2 = np.square(self.radii)
        mask = sq <= r2 if closed else sq < r2
        mask |= np.isinf(self.radii)
        return np.flatnonzero(mask)

    def ply_of(self, points: np.ndarray, *, closed: bool = False) -> np.ndarray:
        """Ply of each query point: number of balls covering it."""
        pts = as_points(points)
        sq = pairwise_sq_dists(pts, self.centers)
        r2 = np.square(self.radii)[None, :]
        mask = sq <= r2 if closed else sq < r2
        mask |= np.isinf(self.radii)[None, :]
        return mask.sum(axis=1)

    def max_ply_at_centers(self) -> int:
        """Max ply over the ball centers (a practical lower bound on ply).

        The true ply is a sup over all of R^d; for k-neighborhood systems
        the Density Lemma bounds it by ``tau_d * k`` and the centers are
        where ply concentrates, so this is the standard empirical probe.
        """
        if len(self) == 0:
            return 0
        return int(self.ply_of(self.centers).max())

    # -- k-neighborhood property -------------------------------------------

    def centers_inside_counts(self, *, boundary_tol: float = 1e-9) -> np.ndarray:
        """For each ball, how many centers lie in its *open* interior.

        ``boundary_tol`` shrinks the strict test relatively so that points
        mathematically *on* the boundary (the k-th neighbor defining the
        radius) are not miscounted as interior after the sqrt/square
        round-trip of radii.
        """
        sq = pairwise_sq_dists(self.centers, self.centers)
        r2 = np.square(self.radii)[:, None]
        mask = sq < r2 * (1.0 - boundary_tol)
        mask |= np.isinf(self.radii)[:, None]
        return mask.sum(axis=1)

    def is_k_neighborhood_system(self, k: int, *, boundary_tol: float = 1e-9) -> bool:
        """True when every ball's open interior holds <= k centers.

        Note the paper counts the ball's own center: B_i is "the largest
        ball centered at p_i whose interior contains at most k-1 points
        *other than* viewing p_i itself"; since p_i is always interior we
        test ``counts <= k`` (self + up to k-1 others).
        """
        if len(self) == 0:
            return True
        return bool(self.centers_inside_counts(boundary_tol=boundary_tol).max() <= k)

    # -- separators ---------------------------------------------------------

    def classify(self, separator: Separator) -> np.ndarray:
        """-1 interior / +1 exterior / 0 intersecting, per ball."""
        return separator.classify_balls(self.centers, self.radii)

    def intersection_number(self, separator: Separator) -> int:
        """``iota_B(S)``: how many balls the separator cuts."""
        return int(np.count_nonzero(self.classify(separator) == 0))

    def subset(self, indices: np.ndarray) -> "BallSystem":
        """Sub-system of the given ball indices (copying, order-preserving)."""
        idx = np.asarray(indices)
        return BallSystem(self.centers[idx], self.radii[idx])

    def take_mask(self, mask: np.ndarray) -> "BallSystem":
        """Sub-system selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        return BallSystem(self.centers[mask], self.radii[mask])


def union(a: BallSystem, b: BallSystem) -> BallSystem:
    """Concatenate two ball systems (no dedup)."""
    if a.dim != b.dim:
        raise ValueError("dimension mismatch")
    return BallSystem(
        np.concatenate([a.centers, b.centers], axis=0),
        np.concatenate([a.radii, b.radii]),
    )


BallSystem.union = staticmethod(union)  # type: ignore[attr-defined]
__all__.append("union")
