"""Approximate centerpoints.

A *centerpoint* of ``n`` points in R^m is a point of Tukey depth at least
``n / (m + 1)``: every halfspace containing it contains that many points.
The MTTV separator needs a (beta-approximate) centerpoint of the lifted
points on S^d in ambient R^{d+1}; a random great circle through the image
of a centerpoint then splits the points at most ``(d+1)/(d+2)`` to a side.

Exact centerpoints are expensive; two standard approximations are provided:

- :func:`iterated_radon_centerpoint` — the Clarkson et al. scheme: repeat
  "group ``m + 2`` points, replace by their Radon point" until one point
  remains.  On a random sample of constant size this is the paper's
  unit-time building block.
- :func:`coordinate_median` — the cheap heuristic; no depth guarantee in
  adversarial position but excellent in practice, used as a fallback and in
  tests as a comparison.

:func:`tukey_depth_estimate` measures the achieved depth by probing random
directions (an upper bound on true depth that converges from above).
"""

from __future__ import annotations

import numpy as np

from .radon import radon_point, radon_points_batch

__all__ = [
    "iterated_radon_centerpoint",
    "iterated_radon_centerpoint_many",
    "coordinate_median",
    "tukey_depth_estimate",
]


def coordinate_median(points: np.ndarray) -> np.ndarray:
    """Coordinatewise median (depth >= n / 2^m only in generic position)."""
    return np.median(np.asarray(points, dtype=np.float64), axis=0)


def iterated_radon_centerpoint(
    points: np.ndarray,
    rng: np.random.Generator,
    *,
    rounds: int | None = None,
) -> np.ndarray:
    """Approximate centerpoint by iterated Radon points.

    Each round shuffles the current multiset and replaces every full group
    of ``m + 2`` points with its Radon point; leftovers pass through.  When
    fewer than ``m + 2`` points remain the mean of the survivors is
    returned.  ``rounds`` caps the number of rounds (default: run to one
    point — O(log n) rounds).

    The returned point has expected Tukey depth Omega(n / (m + 1)^2) even
    without repetition; tests check measured depth >= n/(m+2) with slack on
    the workloads we use.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, m)")
    n, m = pts.shape
    if n == 0:
        raise ValueError("cannot take a centerpoint of zero points")
    group = m + 2
    if n < group:
        return pts.mean(axis=0)
    current = pts
    done_rounds = 0
    while current.shape[0] >= group and (rounds is None or done_rounds < rounds):
        k = current.shape[0]
        perm = rng.permutation(k)
        usable = (k // group) * group
        grouped = current[perm[:usable]].reshape(-1, group, m)
        replaced = np.empty((grouped.shape[0], m), dtype=np.float64)
        for i, g in enumerate(grouped):
            try:
                replaced[i] = radon_point(g)
            except np.linalg.LinAlgError:
                replaced[i] = g.mean(axis=0)
        leftovers = current[perm[usable:]]
        current = np.concatenate([replaced, leftovers], axis=0)
        done_rounds += 1
        if current.shape[0] == 1:
            break
    return current.mean(axis=0)


def iterated_radon_centerpoint_many(
    point_sets: list,
    rngs: list,
    *,
    rounds: int | None = None,
) -> list:
    """Iterated-Radon centerpoints of many point sets, with the per-group
    Radon SVDs of every active set batched into one LAPACK call per round.

    Bit-for-bit equivalent to ``[iterated_radon_centerpoint(p, rng) for
    p, rng in zip(point_sets, rngs)]``: each set draws the same
    permutations from its own generator, forms the same groups, and hits
    the same degenerate fallbacks; only the SVD solves are stacked across
    sets (see :func:`repro.geometry.radon.radon_points_batch`).  This is
    the frontier engine's batched replacement for the per-node centerpoint
    loop — the hot path of separator construction.
    """
    if len(point_sets) != len(rngs):
        raise ValueError("need exactly one rng per point set")
    sets = [np.asarray(p, dtype=np.float64) for p in point_sets]
    results: list = [None] * len(sets)
    current = {}
    done_rounds = {}
    for i, pts in enumerate(sets):
        if pts.ndim != 2:
            raise ValueError("points must be (n, m)")
        n, m = pts.shape
        if n == 0:
            raise ValueError("cannot take a centerpoint of zero points")
        if n < m + 2:
            results[i] = pts.mean(axis=0)
        else:
            current[i] = pts
            done_rounds[i] = 0
    while current:
        round_sets = []  # (i, grouped, leftovers)
        for i in sorted(current):
            cur = current[i]
            k, m = cur.shape
            group = m + 2
            perm = rngs[i].permutation(k)
            usable = (k // group) * group
            grouped = cur[perm[:usable]].reshape(-1, group, m)
            round_sets.append((i, grouped, cur[perm[usable:]]))
        # one batched Radon pass per distinct dimensionality
        replaced = [None] * len(round_sets)
        by_shape: dict = {}
        for pos, (_, grouped, _) in enumerate(round_sets):
            by_shape.setdefault(grouped.shape[1:], []).append(pos)
        for members in by_shape.values():
            stacked = np.concatenate([round_sets[pos][1] for pos in members], axis=0)
            points = radon_points_batch(stacked)
            offset = 0
            for pos in members:
                g = round_sets[pos][1].shape[0]
                replaced[pos] = points[offset : offset + g]
                offset += g
        for (i, grouped, leftovers), rep in zip(round_sets, replaced):
            cur = np.concatenate([rep, leftovers], axis=0)
            done_rounds[i] += 1
            group = grouped.shape[1]
            finished = (
                cur.shape[0] == 1
                or cur.shape[0] < group
                or (rounds is not None and done_rounds[i] >= rounds)
            )
            if finished:
                results[i] = cur.mean(axis=0)
                del current[i]
            else:
                current[i] = cur
    return results


def tukey_depth_estimate(
    points: np.ndarray,
    z: np.ndarray,
    rng: np.random.Generator,
    *,
    directions: int = 256,
) -> int:
    """Estimated Tukey depth of ``z``: min points on one side over probes.

    Probes ``directions`` random unit vectors; the reported value is an
    *upper bound* on the true depth (more probes -> tighter).
    """
    pts = np.asarray(points, dtype=np.float64)
    zz = np.asarray(z, dtype=np.float64)
    n, m = pts.shape
    if directions < 1:
        raise ValueError("need at least one probe direction")
    dirs = rng.standard_normal((directions, m))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    proj = (pts - zz) @ dirs.T  # (n, directions)
    above = (proj >= 0).sum(axis=0)
    below = (proj <= 0).sum(axis=0)
    return int(min(above.min(), below.min()))
