"""Geometric substrate: points, spheres, ball systems, and the conformal
machinery (stereographic lift, Radon/centerpoints, sphere maps) that the
MTTV separator algorithm is built from.
"""

from .balls import BallSystem, union
from .centerpoints import coordinate_median, iterated_radon_centerpoint, tukey_depth_estimate
from .conformal import ConformalMap, rotation_to_pole
from .kissing import KNOWN_KISSING, kissing_number, kissing_number_bounds
from .points import (
    as_points,
    bounding_box,
    chunked_pairs,
    diameter_upper_bound,
    kth_smallest_per_row,
    pairwise_sq_dists,
    sq_dists_to,
)
from .radon import radon_partition, radon_point
from .spheres import Hyperplane, Separator, SideCounts, Sphere
from .stereographic import SphereCap, circle_to_separator, lift, project, separator_to_circle

__all__ = [
    "BallSystem",
    "union",
    "coordinate_median",
    "iterated_radon_centerpoint",
    "tukey_depth_estimate",
    "ConformalMap",
    "rotation_to_pole",
    "KNOWN_KISSING",
    "kissing_number",
    "kissing_number_bounds",
    "as_points",
    "bounding_box",
    "chunked_pairs",
    "diameter_upper_bound",
    "kth_smallest_per_row",
    "pairwise_sq_dists",
    "sq_dists_to",
    "radon_partition",
    "radon_point",
    "Hyperplane",
    "Separator",
    "SideCounts",
    "Sphere",
    "SphereCap",
    "circle_to_separator",
    "lift",
    "project",
    "separator_to_circle",
]
