"""Radon partitions and Radon points.

Radon's theorem: any ``dim + 2`` points in R^dim can be split into two
groups whose convex hulls intersect; a point in the intersection is a
*Radon point*.  Iterating Radon points is the classical way to compute
approximate centerpoints (Clarkson–Eppstein–Miller–Sturtivant–Teng), which
is exactly what the MTTV separator needs on the lifted point set.

Computation: stack the points as columns of the ``(dim+1, m)`` matrix with
an all-ones last row; any nullspace vector ``alpha`` (nonzero, summing to
zero with ``sum alpha_i x_i = 0``) yields the partition by sign, and the
Radon point is the convex combination of the positive part::

    q = sum_{alpha_i > 0} alpha_i x_i / sum_{alpha_i > 0} alpha_i
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["radon_point", "radon_partition", "radon_points_batch"]


def _affine_nullvector(points: np.ndarray) -> np.ndarray:
    """A nonzero alpha with ``sum alpha_i = 0`` and ``sum alpha_i x_i = 0``."""
    pts = np.asarray(points, dtype=np.float64)
    m, dim = pts.shape
    if m < dim + 2:
        raise ValueError(f"need at least dim+2 = {dim + 2} points, got {m}")
    system = np.vstack([pts.T, np.ones((1, m))])  # (dim+1, m)
    # smallest right singular vector spans (an element of) the nullspace
    _, s, vt = np.linalg.svd(system)
    alpha = vt[-1]
    if np.linalg.norm(alpha) == 0:  # pragma: no cover - svd returns unit vectors
        raise np.linalg.LinAlgError("degenerate nullspace")
    return alpha


def radon_partition(points: np.ndarray, *, tol: float = 1e-12) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Radon partition of >= dim+2 points.

    Returns ``(alpha, positive_mask, negative_mask)``; indices where
    ``|alpha| <= tol`` belong to neither side (they are not needed for the
    intersection witness).  Both sides are guaranteed non-empty.
    """
    alpha = _affine_nullvector(points)
    # scale so the largest magnitude is 1, making tol meaningful
    alpha = alpha / np.abs(alpha).max()
    pos = alpha > tol
    neg = alpha < -tol
    if not pos.any() or not neg.any():
        raise np.linalg.LinAlgError(
            "degenerate Radon partition (points affinely dependent in a bad way)"
        )
    return alpha, pos, neg


def radon_point(points: np.ndarray) -> np.ndarray:
    """A point in the intersection of the two Radon-partition hulls."""
    pts = np.asarray(points, dtype=np.float64)
    alpha, pos, _ = radon_partition(pts)
    w = alpha[pos]
    return (w[:, None] * pts[pos]).sum(axis=0) / w.sum()


def _radon_point_or_mean(group: np.ndarray) -> np.ndarray:
    """:func:`radon_point` with the degenerate-group mean fallback."""
    try:
        return radon_point(group)
    except np.linalg.LinAlgError:
        return group.mean(axis=0)


def radon_points_batch(groups: np.ndarray, *, tol: float = 1e-12) -> np.ndarray:
    """Radon points of a ``(G, count, m)`` stack of groups, SVDs batched.

    Bit-for-bit equivalent to ``[radon_point(g) for g in groups]`` with the
    per-group mean fallback on degenerate partitions: LAPACK produces the
    same singular vectors for stacked and individual solves, and the masked
    weighted sums below add only exact-zero terms for excluded rows.  A
    batch-level SVD convergence failure (rare) falls back to the sequential
    per-group path wholesale.
    """
    pts = np.asarray(groups, dtype=np.float64)
    if pts.ndim != 3:
        raise ValueError("groups must be a (G, count, m) stack")
    count_total, count, m = pts.shape
    if count_total == 0:
        return np.empty((0, m), dtype=np.float64)
    if count < m + 2:
        raise ValueError(f"need at least dim+2 = {m + 2} points per group, got {count}")
    systems = np.empty((count_total, m + 1, count), dtype=np.float64)
    systems[:, :m, :] = pts.transpose(0, 2, 1)
    systems[:, m, :] = 1.0
    try:
        _, _, vt = np.linalg.svd(systems)
    except np.linalg.LinAlgError:
        return np.stack([_radon_point_or_mean(g) for g in pts])
    alpha = vt[:, -1, :]  # (G, count)
    alpha = alpha / np.abs(alpha).max(axis=1, keepdims=True)
    pos = alpha > tol
    neg = alpha < -tol
    ok = pos.any(axis=1) & neg.any(axis=1)
    w = np.where(pos, alpha, 0.0)
    out = (w[:, :, None] * pts).sum(axis=1) / w.sum(axis=1)[:, None]
    for b in np.flatnonzero(~ok):
        out[b] = pts[b].mean(axis=0)
    return out
