"""Radon partitions and Radon points.

Radon's theorem: any ``dim + 2`` points in R^dim can be split into two
groups whose convex hulls intersect; a point in the intersection is a
*Radon point*.  Iterating Radon points is the classical way to compute
approximate centerpoints (Clarkson–Eppstein–Miller–Sturtivant–Teng), which
is exactly what the MTTV separator needs on the lifted point set.

Computation: stack the points as columns of the ``(dim+1, m)`` matrix with
an all-ones last row; any nullspace vector ``alpha`` (nonzero, summing to
zero with ``sum alpha_i x_i = 0``) yields the partition by sign, and the
Radon point is the convex combination of the positive part::

    q = sum_{alpha_i > 0} alpha_i x_i / sum_{alpha_i > 0} alpha_i
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["radon_point", "radon_partition"]


def _affine_nullvector(points: np.ndarray) -> np.ndarray:
    """A nonzero alpha with ``sum alpha_i = 0`` and ``sum alpha_i x_i = 0``."""
    pts = np.asarray(points, dtype=np.float64)
    m, dim = pts.shape
    if m < dim + 2:
        raise ValueError(f"need at least dim+2 = {dim + 2} points, got {m}")
    system = np.vstack([pts.T, np.ones((1, m))])  # (dim+1, m)
    # smallest right singular vector spans (an element of) the nullspace
    _, s, vt = np.linalg.svd(system)
    alpha = vt[-1]
    if np.linalg.norm(alpha) == 0:  # pragma: no cover - svd returns unit vectors
        raise np.linalg.LinAlgError("degenerate nullspace")
    return alpha


def radon_partition(points: np.ndarray, *, tol: float = 1e-12) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Radon partition of >= dim+2 points.

    Returns ``(alpha, positive_mask, negative_mask)``; indices where
    ``|alpha| <= tol`` belong to neither side (they are not needed for the
    intersection witness).  Both sides are guaranteed non-empty.
    """
    alpha = _affine_nullvector(points)
    # scale so the largest magnitude is 1, making tol meaningful
    alpha = alpha / np.abs(alpha).max()
    pos = alpha > tol
    neg = alpha < -tol
    if not pos.any() or not neg.any():
        raise np.linalg.LinAlgError(
            "degenerate Radon partition (points affinely dependent in a bad way)"
        )
    return alpha, pos, neg


def radon_point(points: np.ndarray) -> np.ndarray:
    """A point in the intersection of the two Radon-partition hulls."""
    pts = np.asarray(points, dtype=np.float64)
    alpha, pos, _ = radon_partition(pts)
    w = alpha[pos]
    return (w[:, None] * pts[pos]).sum(axis=0) / w.sum()
