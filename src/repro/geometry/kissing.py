"""Kissing numbers tau_d (the Density Lemma constants).

Lemma 2.1 of the paper: every k-neighborhood system in R^d is
``tau_d * k``-ply, where ``tau_d`` is the maximum number of nonoverlapping
unit balls that can touch a central unit ball.

Exact values are known only for d in {1, 2, 3, 4, 8, 24}; elsewhere we
expose the best published bounds (enough for the Density-Lemma experiment,
which only needs an upper bound).
"""

from __future__ import annotations

__all__ = ["kissing_number", "kissing_number_bounds", "KNOWN_KISSING"]

# exact values
KNOWN_KISSING: dict[int, int] = {1: 2, 2: 6, 3: 12, 4: 24, 8: 240, 24: 196560}

# (lower, upper) published bounds for small d where the value is open
_BOUNDS: dict[int, tuple[int, int]] = {
    5: (40, 44),
    6: (72, 78),
    7: (126, 134),
    9: (306, 364),
    10: (510, 554),
}


def kissing_number(d: int) -> int:
    """Upper bound on tau_d (exact where known).

    For dimensions with open values this returns the published upper
    bound; for large d it falls back to the classical ``3^d - 1`` bound
    (any two centers of kissing balls subtend an angle >= 60 degrees, so a
    volume argument bounds the count by 3^d - 1).
    """
    if d < 1:
        raise ValueError("dimension must be >= 1")
    if d in KNOWN_KISSING:
        return KNOWN_KISSING[d]
    if d in _BOUNDS:
        return _BOUNDS[d][1]
    return 3**d - 1


def kissing_number_bounds(d: int) -> tuple[int, int]:
    """(lower, upper) bounds on tau_d."""
    if d < 1:
        raise ValueError("dimension must be >= 1")
    if d in KNOWN_KISSING:
        v = KNOWN_KISSING[d]
        return v, v
    if d in _BOUNDS:
        return _BOUNDS[d]
    return 2 * d, 3**d - 1
