"""(d-1)-spheres and hyperplanes as separators in R^d.

A :class:`Sphere` partitions a point set into interior / exterior and a
ball system into interior / exterior / intersecting (the three sets
``B_I(S)``, ``B_E(S)``, ``B_O(S)`` of the paper's Section 2.1).  The MTTV
pull-back occasionally yields a hyperplane (a great circle through the
stereographic pole); :class:`Hyperplane` implements the same classification
protocol so the divide and conquer is agnostic to which one it got.

Conventions
-----------
- "interior" of a sphere is the open ball ``|x - c| < r``; points exactly on
  the boundary are classified as interior (the paper's query descent sends
  on-sphere points left, i.e. with the interior).
- a ball ``B(p, rho)`` *intersects* the sphere iff the sphere's surface
  meets the closed ball: ``| |p - c| - r | <= rho``.  Balls with infinite
  radius intersect every separator.
- for a hyperplane ``n . x = b`` (with unit normal), "interior" is the open
  halfspace ``n . x < b``; on-plane points count as interior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple

import numpy as np

from .. import kernels
from .points import as_points

__all__ = ["Separator", "Sphere", "Hyperplane", "SideCounts"]

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _prepared(points: np.ndarray, name: str = "points") -> np.ndarray:
    """Hot-path point intake: already-valid float arrays pass untouched.

    A 2-D C-contiguous float32/float64 ndarray — what every internal
    caller holds — skips :func:`~repro.geometry.points.as_points`, whose
    per-call ``ascontiguousarray`` + ``isfinite`` sweep costs O(nd) on
    every separator test and silently upcast float32 storage to a fresh
    float64 copy.  Anything else (lists, int arrays, strided views) still
    goes through full validation.
    """
    if (
        isinstance(points, np.ndarray)
        and points.ndim == 2
        and points.dtype in _FLOAT_DTYPES
        and points.flags.c_contiguous
    ):
        return points
    return as_points(points, name=name)


@dataclass(frozen=True, slots=True)
class SideCounts:
    """Counts of a separator's three-way classification of a ball system."""

    interior: int
    exterior: int
    intersecting: int

    @property
    def total(self) -> int:
        return self.interior + self.exterior + self.intersecting


class Separator(Protocol):
    """Anything that can split points and balls three ways."""

    dim: int

    def side_of_points(self, points: np.ndarray) -> np.ndarray:
        """+1 for exterior, -1 for interior (boundary counts as interior)."""
        ...

    def classify_balls(self, centers: np.ndarray, radii: np.ndarray) -> np.ndarray:
        """-1 interior, +1 exterior, 0 intersecting, per ball."""
        ...


@dataclass(frozen=True)
class Sphere:
    """A (d-1)-sphere with ``center`` (d,) and ``radius`` > 0."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        c = np.asarray(self.center, dtype=np.float64)
        if c.ndim != 1:
            raise ValueError("sphere center must be a 1-D coordinate vector")
        if not np.isfinite(c).all():
            raise ValueError("sphere center must be finite")
        if not np.isfinite(self.radius) or self.radius <= 0:
            raise ValueError(f"sphere radius must be positive and finite, got {self.radius}")
        object.__setattr__(self, "center", c)
        object.__setattr__(self, "radius", float(self.radius))

    @property
    def dim(self) -> int:
        return self.center.shape[0]

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """``|x - c| - r`` per point: negative inside, positive outside."""
        pts = _prepared(points)
        if pts.shape[1] != self.dim:
            raise ValueError(f"dimension mismatch: sphere is {self.dim}-D, points are {pts.shape[1]}-D")
        return np.linalg.norm(pts - self.center, axis=1) - self.radius

    def side_of_points(self, points: np.ndarray) -> np.ndarray:
        """+1 exterior, -1 interior; boundary points (= 0) go interior."""
        pts = _prepared(points)
        if pts.shape[1] != self.dim:
            raise ValueError(f"dimension mismatch: sphere is {self.dim}-D, points are {pts.shape[1]}-D")
        return kernels.sphere_side(pts, self.center, self.radius)

    def classify_balls(self, centers: np.ndarray, radii: np.ndarray) -> np.ndarray:
        """Three-way ball classification: -1 interior, +1 exterior, 0 cut.

        Infinite-radius balls (produced by sub-problems smaller than k+1
        points) always classify as intersecting.
        """
        centers = _prepared(centers, name="ball centers")
        radii = np.asarray(radii, dtype=np.float64)
        if radii.shape != (centers.shape[0],):
            raise ValueError("radii must be a vector matching centers")
        return kernels.classify_balls_sphere(centers, radii, self.center, self.radius)

    def contains(self, point: np.ndarray) -> bool:
        """True when ``point`` is in the closed ball bounded by the sphere."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.linalg.norm(p - self.center) <= self.radius)

    def scaled(self, factor: float) -> "Sphere":
        """Concentric sphere with radius multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Sphere(self.center, self.radius * factor)


@dataclass(frozen=True)
class Hyperplane:
    """The hyperplane ``normal . x = offset`` with unit ``normal``.

    Degenerate limit of a separator sphere (radius -> inf); "interior" is
    the open halfspace on the negative side of the normal.
    """

    normal: np.ndarray
    offset: float

    def __post_init__(self) -> None:
        n = np.asarray(self.normal, dtype=np.float64)
        if n.ndim != 1:
            raise ValueError("hyperplane normal must be a 1-D vector")
        norm = np.linalg.norm(n)
        if not np.isfinite(norm) or norm == 0:
            raise ValueError("hyperplane normal must be nonzero and finite")
        object.__setattr__(self, "normal", n / norm)
        object.__setattr__(self, "offset", float(self.offset) / norm)

    @property
    def dim(self) -> int:
        return self.normal.shape[0]

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """``n . x - b`` per point: negative = interior halfspace."""
        pts = _prepared(points)
        if pts.shape[1] != self.dim:
            raise ValueError(f"dimension mismatch: plane is {self.dim}-D, points are {pts.shape[1]}-D")
        return pts @ self.normal - self.offset

    def side_of_points(self, points: np.ndarray) -> np.ndarray:
        pts = _prepared(points)
        if pts.shape[1] != self.dim:
            raise ValueError(f"dimension mismatch: plane is {self.dim}-D, points are {pts.shape[1]}-D")
        return kernels.hyperplane_side(pts, self.normal, self.offset)

    def classify_balls(self, centers: np.ndarray, radii: np.ndarray) -> np.ndarray:
        centers = _prepared(centers, name="ball centers")
        radii = np.asarray(radii, dtype=np.float64)
        if radii.shape != (centers.shape[0],):
            raise ValueError("radii must be a vector matching centers")
        return kernels.classify_balls_hyperplane(centers, radii, self.normal, self.offset)
