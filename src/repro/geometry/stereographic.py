"""Stereographic projection between R^d and the unit sphere S^d in R^{d+1}.

The MTTV separator algorithm works on the sphere: points are lifted, a
centerpoint is computed, a conformal map centres it, and a random great
circle is chosen.  This module provides the lift/projection pair plus the
exact correspondence between circles on S^d and spheres/hyperplanes in R^d,
which is what lets us return an *explicit* separator object instead of an
opaque sign test.

Maps (north pole N = e_{d+1} = (0, ..., 0, 1)):

- ``lift(p) = (2p, |p|^2 - 1) / (|p|^2 + 1)`` sends R^d onto S^d minus N;
- ``project(y) = y_{1..d} / (1 - y_{d+1})`` is its inverse.

A circle on S^d is the slice ``{y in S^d : a . y = b}`` with unit normal
``a`` and offset ``|b| < 1``.  Substituting the lift gives, for
``gamma = a_{d+1} - b``::

    gamma |p|^2 + 2 a_{1..d} . p - (a_{d+1} + b) = 0

- ``gamma != 0``  ->  sphere, center ``-a_{1..d}/gamma``,
  radius^2 = |center|^2 + (a_{d+1} + b)/gamma;
- ``gamma == 0``  ->  hyperplane ``a_{1..d} . p = (a_{d+1} + b)/2``
  (the circle passes through the pole).

Both directions of that correspondence are implemented and property-tested
against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .spheres import Hyperplane, Sphere

__all__ = ["lift", "project", "SphereCap", "circle_to_separator", "separator_to_circle"]

_POLE_EPS = 1e-12


def lift(points: np.ndarray) -> np.ndarray:
    """Lift ``(n, d)`` points of R^d onto S^d as ``(n, d+1)`` unit vectors."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        return lift(pts[None, :])[0]
    sq = np.einsum("ij,ij->i", pts, pts)
    denom = sq + 1.0
    out = np.empty((pts.shape[0], pts.shape[1] + 1), dtype=np.float64)
    out[:, :-1] = 2.0 * pts / denom[:, None]
    out[:, -1] = (sq - 1.0) / denom
    return out


def project(y: np.ndarray) -> np.ndarray:
    """Project ``(n, d+1)`` points of S^d (minus the pole) back to R^d."""
    arr = np.asarray(y, dtype=np.float64)
    if arr.ndim == 1:
        return project(arr[None, :])[0]
    last = arr[:, -1]
    if np.any(last >= 1.0 - _POLE_EPS):
        raise ValueError("cannot project points at (or numerically at) the north pole")
    return arr[:, :-1] / (1.0 - last)[:, None]


@dataclass(frozen=True)
class SphereCap:
    """A circle on S^d: ``{y : normal . y = offset}`` with unit ``normal``.

    ``offset == 0`` is a great circle.  The name reflects that the circle
    bounds a spherical cap; classification of sphere points is by the sign
    of ``normal . y - offset``.
    """

    normal: np.ndarray
    offset: float

    def __post_init__(self) -> None:
        a = np.asarray(self.normal, dtype=np.float64)
        norm = np.linalg.norm(a)
        if not np.isfinite(norm) or norm == 0:
            raise ValueError("circle normal must be nonzero and finite")
        object.__setattr__(self, "normal", a / norm)
        object.__setattr__(self, "offset", float(self.offset) / norm)
        if abs(self.offset) >= 1.0:
            raise ValueError(f"circle offset must satisfy |b| < 1, got {self.offset}")

    @property
    def ambient_dim(self) -> int:
        return self.normal.shape[0]

    def side_of(self, y: np.ndarray) -> np.ndarray:
        """Sign of ``normal . y - offset`` per row of ``y``."""
        arr = np.asarray(y, dtype=np.float64)
        return np.sign(arr @ self.normal - self.offset)


def circle_to_separator(circle: SphereCap, *, degenerate_eps: float = 1e-9) -> Union[Sphere, Hyperplane]:
    """Pull a circle on S^d back to its preimage in R^d under the lift.

    Returns a :class:`Sphere` generically, or a :class:`Hyperplane` when the
    circle passes (numerically) through the pole.  Raises ``ValueError`` if
    the computed radius is not positive (a circle "around the pole" whose
    preimage is the complement of a ball — callers resample in that case).
    The convention is aligned so that the sphere's *interior* corresponds to
    ``normal . y < offset`` on the sphere.
    """
    a = circle.normal
    b = circle.offset
    gamma = a[-1] - b
    if abs(gamma) <= degenerate_eps:
        head = a[:-1]
        if np.linalg.norm(head) <= degenerate_eps:
            raise ValueError("degenerate circle: normal parallel to pole axis with b ~ a_{d+1}")
        return Hyperplane(head, (a[-1] + b) / 2.0)
    center = -a[:-1] / gamma
    r2 = float(center @ center + (a[-1] + b) / gamma)
    if r2 <= 0.0:
        raise ValueError(f"circle pulls back to an imaginary sphere (r^2 = {r2:g})")
    return Sphere(center, float(np.sqrt(r2)))


def separator_to_circle(sep: Union[Sphere, Hyperplane]) -> SphereCap:
    """Push a sphere/hyperplane of R^d up to its circle on S^d.

    Inverse of :func:`circle_to_separator` (up to normalisation); property
    tests check the round trip.
    """
    if isinstance(sep, Sphere):
        c = sep.center
        rho2 = sep.radius**2
        head = -c
        a_last = (1.0 + rho2 - float(c @ c)) / 2.0
        b = (rho2 - float(c @ c) - 1.0) / 2.0
        a = np.concatenate([head, [a_last]])
        scale = np.linalg.norm(a)
        return SphereCap(a / scale, b / scale)
    if isinstance(sep, Hyperplane):
        n = sep.normal
        o = sep.offset
        a = np.concatenate([n, [o]])
        scale = np.linalg.norm(a)
        return SphereCap(a / scale, o / scale)
    raise TypeError(f"unsupported separator type {type(sep).__name__}")
