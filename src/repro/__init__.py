"""repro — Separator based parallel divide and conquer in computational geometry.

A production-grade reproduction of Frieze, Miller & Teng (SPAA 1992): the
O(log n)-depth, n-processor randomized algorithm for the k-nearest-neighbor
graph of n points in R^d, built on Miller–Teng–Thurston–Vavasis sphere
separators and executed on a simulated Blelloch scan-vector machine with a
(depth, work) cost ledger.

Public surface (see README for a tour):

- :mod:`repro.pvm` — the machine model (cost algebra, primitives, Brent
  scheduling);
- :mod:`repro.geometry` — points, spheres, ball systems, stereographic and
  conformal maps, Radon/centerpoints;
- :mod:`repro.separators` — the MTTV sphere separator, its unit-time retry
  loop, hyperplane baselines, quality measures;
- :mod:`repro.core` — the paper's algorithms: the neighborhood query
  structure (Sec. 3), the O(log^2 n) simple divide and conquer (Sec. 5),
  the O(log n) fast algorithm with punting (Sec. 6), the punting-lemma
  process simulators (Sec. 4);
- :mod:`repro.baselines` — brute force, kd-tree and grid all-kNN;
- :mod:`repro.workloads` — synthetic and adversarial point generators;
- :mod:`repro.analysis` — recurrences, probability bounds, scaling fits;
- :mod:`repro.kernels` — pluggable hot-path kernel backends (the numpy
  reference and an optional numba-jitted table, bit-identical by
  contract) plus the contiguous :class:`~repro.kernels.FlatTree`
  descent layout;
- :mod:`repro.obs` — tracing spans, metrics registry, trace exports;
- :mod:`repro.parallel` — the multiprocess frontier backend: shared-memory
  buffers, shard planning, the worker pool (``engine="frontier-mp"``);
- :mod:`repro.serve` — the online side: the frozen
  :class:`~repro.serve.index.ServingIndex`, micro-batching
  :class:`~repro.serve.batcher.Batcher`, LRU result cache, the
  multiprocess serving pool (built in one call by
  :func:`repro.api.serve`) and the versioned
  :class:`~repro.serve.registry.SnapshotRegistry` for hot swaps;
- :mod:`repro.net` — the network front-end over the serving stack: a
  stdlib asyncio HTTP/1.1 JSON server with admission control,
  load-adaptive micro-batch windows, multi-index tenancy, graceful
  SIGTERM drain and an open-loop load generator (``docs/networking.md``;
  entry points :func:`repro.api.net_serve` and ``repro net``);
- :mod:`repro.api` — the stable facade: :func:`~repro.api.all_knn`,
  :func:`~repro.api.build_index` (returning the versioned, mutable
  :class:`~repro.api.Index` handle), :func:`~repro.api.run_traced`,
  :func:`~repro.api.serve`, :func:`~repro.api.net_serve` — all but
  ``serve``/``net_serve`` (which share names with subpackages)
  re-exported here at the package root.

Since 1.6.0 indices are *online*: ``build_index`` returns an
:class:`~repro.api.Index` whose ``insert``/``delete``/``commit`` absorb
point mutations into the existing partition tree, bit-identically to a
from-scratch build (``docs/online_index.md``).  The pre-1.6 ``KNNIndex``
name remains importable as a deprecated alias.
"""

from . import (
    analysis,
    api,
    baselines,
    core,
    geometry,
    kernels,
    net,
    obs,
    parallel,
    pvm,
    separators,
    serve,
    util,
    workloads,
)
from .api import (
    DTYPES,
    ENGINES,
    KERNEL_BACKENDS,
    METHODS,
    Batcher,
    CommitInfo,
    Index,
    KNNResult,
    ServingIndex,
    all_knn,
    build_index,
    knn_query,
    run_traced,
)

__version__ = "1.9.0"

__all__ = [
    "analysis",
    "api",
    "baselines",
    "core",
    "geometry",
    "kernels",
    "net",
    "obs",
    "parallel",
    "pvm",
    "separators",
    "serve",
    "util",
    "workloads",
    "Batcher",
    "CommitInfo",
    "Index",
    "KNNIndex",
    "KNNResult",
    "ServingIndex",
    "all_knn",
    "build_index",
    "knn_query",
    "run_traced",
    "METHODS",
    "ENGINES",
    "KERNEL_BACKENDS",
    "DTYPES",
    "__version__",
]


def __getattr__(name: str):
    # Deprecated aliases (KNNIndex) resolve through the facade's shim so
    # the DeprecationWarning fires exactly where the old name is used.
    if name == "KNNIndex":
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
