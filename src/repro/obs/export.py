"""Telemetry sinks: JSONL event logs and Prometheus text exposition.

Two machine-readable exports complement the Chrome trace:

- :func:`events_from_tracer` / :func:`write_events_jsonl` — a flat,
  line-delimited event log derived deterministically from a recorded
  span tree: one ``run_meta`` header line, ``span_open`` / ``span_close``
  per span, ``punt`` lines wherever a span recorded punt activity, and
  ``shard_dispatch`` / ``shard_complete`` for every ``parallel.subtree``
  (or legacy ``frontier.shard``) span of a multiprocess run.  Every line validates against
  :data:`EVENT_SCHEMA` (mirrored at ``docs/telemetry_events.schema.json``)
  via the dependency-free :func:`validate_event`.
- :func:`metrics_to_prometheus` — the full :class:`~repro.obs.metrics.
  Metrics` registry in Prometheus text exposition format (version 0.0.4):
  counters as ``counter`` samples with a ``_total`` suffix, gauges as
  ``gauge`` samples, series as ``_count`` (plus ``_sum``/``_min``/``_max``
  for all-numeric series), histograms as full ``histogram`` families —
  cumulative ``_bucket`` samples with ascending ``le`` labels ending in
  ``+Inf``, plus ``_sum`` and ``_count``.  Metric names are sanitised to
  the Prometheus charset; the raw registry key always rides along in a
  ``key`` label so nothing is lost to sanitisation.

Both sinks are pure functions of already-recorded state — they can never
perturb the (depth, work) ledger.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import Metrics
from .spans import Tracer, span_tree_from_dict

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "SchemaError",
    "events_from_tracer",
    "load_trace",
    "metrics_to_prometheus",
    "validate_event",
    "write_events_jsonl",
]

EVENT_TYPES = (
    "run_meta",
    "span_open",
    "span_close",
    "punt",
    "shard_dispatch",
    "shard_complete",
)

#: JSON Schema (draft-07 subset) for one JSONL event line.  The canonical
#: copy lives at ``docs/telemetry_events.schema.json``; a unit test pins
#: the two in sync.
EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro telemetry event",
    "type": "object",
    "required": ["event", "ts", "seq"],
    "additionalProperties": False,
    "properties": {
        "event": {"enum": list(EVENT_TYPES)},
        "ts": {"type": "number"},
        "seq": {"type": "integer"},
        "schema": {"type": "integer"},
        "name": {"type": "string"},
        "level": {"type": "integer"},
        "depth": {"type": "number"},
        "work": {"type": "number"},
        "wall_seconds": {"type": "number"},
        "punts": {"type": "integer"},
        "attrs": {"type": "object"},
    },
}


class SchemaError(ValueError):
    """An object failed validation against a JSON Schema subset."""


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_event(
    obj: Any, schema: Optional[Dict[str, Any]] = None, *, path: str = "$"
) -> None:
    """Validate ``obj`` against a small JSON Schema subset.

    Supports ``type`` (name or list of names), ``enum``, ``properties``,
    ``required``, ``additionalProperties`` (boolean) and ``items`` —
    enough for :data:`EVENT_SCHEMA` without depending on the
    ``jsonschema`` package (not in the CI environment).  Raises
    :class:`SchemaError` on the first violation.
    """
    if schema is None:
        schema = EVENT_SCHEMA
    stype = schema.get("type")
    if stype is not None:
        names = stype if isinstance(stype, list) else [stype]
        if not any(_TYPE_CHECKS[name](obj) for name in names):
            raise SchemaError(
                f"{path}: expected type {stype!r}, got {type(obj).__name__}"
            )
    if "enum" in schema and obj not in schema["enum"]:
        raise SchemaError(f"{path}: {obj!r} not in enum {schema['enum']!r}")
    if isinstance(obj, dict):
        for key in schema.get("required", ()):
            if key not in obj:
                raise SchemaError(f"{path}: missing required property {key!r}")
        props = schema.get("properties", {})
        for key, value in obj.items():
            if key in props:
                validate_event(value, props[key], path=f"{path}.{key}")
            elif schema.get("additionalProperties", True) is False:
                raise SchemaError(f"{path}: unexpected property {key!r}")
    if isinstance(obj, list) and "items" in schema:
        for i, item in enumerate(obj):
            validate_event(item, schema["items"], path=f"{path}[{i}]")


def _json_safe(value: Any) -> Any:
    """Coerce attribute values to plain JSON types (numpy scalars become
    Python numbers, unknown objects their ``repr``)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    for caster in (int, float):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return repr(value)


def events_from_tracer(
    tracer: Tracer, *, run_attrs: Optional[Dict[str, Any]] = None
) -> List[Dict[str, Any]]:
    """Flatten a span tree into a deterministic, schema-valid event list.

    Events are ordered by timestamp (ties broken by emission order, which
    follows the pre-order walk) and numbered with a contiguous ``seq``.
    Punt events are derived from span attributes: a span with a truthy
    ``punted`` attr or a positive ``punts`` attr yields one ``punt``
    event at its close time carrying the count.
    """
    raw: List[Dict[str, Any]] = []

    def emit(event: str, ts: float, **fields: Any) -> None:
        raw.append({"event": event, "ts": float(ts), **fields})

    roots = list(tracer.roots)
    t0 = min((r.wall_start for r in roots), default=0.0)
    meta_attrs = dict(run_attrs or {})
    if len(roots) == 1 and not meta_attrs:
        meta_attrs = dict(roots[0].attrs)
    emit("run_meta", t0, schema=1, attrs=_json_safe(meta_attrs))
    for root in roots:
        for level, span in root.walk():
            attrs = _json_safe(span.attrs)
            emit(
                "span_open", span.wall_start,
                name=span.name, level=int(level), attrs=attrs,
            )
            if span.name in ("frontier.shard", "parallel.subtree"):
                emit(
                    "shard_dispatch", span.wall_start,
                    name=span.name, level=int(level), attrs=attrs,
                )
                emit(
                    "shard_complete", span.wall_end,
                    name=span.name, level=int(level), attrs=attrs,
                )
            punts = 0
            if span.attrs.get("punted"):
                punts = 1
            try:
                punts = max(punts, int(span.attrs.get("punts", 0)))
            except (TypeError, ValueError):
                pass
            if punts > 0:
                emit(
                    "punt", span.wall_end,
                    name=span.name, level=int(level), punts=punts, attrs=attrs,
                )
            emit(
                "span_close", span.wall_end,
                name=span.name, level=int(level),
                depth=float(span.cost.depth), work=float(span.cost.work),
                wall_seconds=float(span.wall_seconds), attrs=attrs,
            )
    order = {id(e): i for i, e in enumerate(raw)}
    raw.sort(key=lambda e: (e["ts"], order[id(e)]))
    for seq, event in enumerate(raw):
        event["seq"] = seq
    for event in raw:
        validate_event(event)
    return raw


def write_events_jsonl(
    path: str, tracer: Tracer, *, run_attrs: Optional[Dict[str, Any]] = None
) -> int:
    """Write the tracer's event log as JSON Lines; returns the line count."""
    events = events_from_tracer(tracer, run_attrs=run_attrs)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


# -- Prometheus exposition -------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(key: str, prefix: str) -> str:
    name = f"{prefix}_{_NAME_RE.sub('_', key)}" if prefix else _NAME_RE.sub("_", key)
    if not re.match(r"[a-zA-Z_:]", name):
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_le(bound: float) -> str:
    """Render an ``le`` bound the way Prometheus clients do: shortest
    exact decimal (``repr``), with integral bounds as plain integers."""
    if bound == float("inf"):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _sample(name: str, key: str, value: float) -> str:
    if value != value:  # NaN
        rendered = "NaN"
    elif value in (float("inf"), float("-inf")):
        rendered = "+Inf" if value > 0 else "-Inf"
    else:
        rendered = repr(float(value))
    return f'{name}{{key="{_escape_label(key)}"}} {rendered}'


def _numeric_samples(samples: Iterable[Any]) -> Optional[List[float]]:
    out: List[float] = []
    for s in samples:
        if isinstance(s, bool) or not isinstance(s, (int, float)):
            return None
        out.append(float(s))
    return out


def metrics_to_prometheus(metrics: Metrics, *, prefix: str = "repro") -> str:
    """Render a registry in Prometheus text exposition format.

    Deterministic: metric families are emitted sorted by registry key.
    Counters gain the conventional ``_total`` suffix; each sample carries
    the raw registry key in a ``key`` label (escaped per the exposition
    format) so consumers can recover names that sanitisation collapsed.
    """
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str, samples: List[str]) -> None:
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for key in sorted(metrics.counters):
        name = _prom_name(key, prefix) + "_total"
        family(
            name, "counter", f"Counter {key} from the repro metrics registry.",
            [_sample(name, key, metrics.counters[key])],
        )
    for key in sorted(metrics.gauges):
        name = _prom_name(key, prefix)
        family(
            name, "gauge", f"Gauge {key} from the repro metrics registry.",
            [_sample(name, key, metrics.gauges[key])],
        )
    for key in sorted(metrics.series):
        samples = metrics.series[key]
        base = _prom_name(key, prefix)
        count_name = base + "_count"
        family(
            count_name, "gauge", f"Sample count of series {key}.",
            [_sample(count_name, key, float(len(samples)))],
        )
        numeric = _numeric_samples(samples)
        if numeric is not None and numeric:
            for suffix, value in (
                ("_sum", sum(numeric)),
                ("_min", min(numeric)),
                ("_max", max(numeric)),
            ):
                name = base + suffix
                family(
                    name, "gauge", f"{suffix[1:].capitalize()} of series {key}.",
                    [_sample(name, key, value)],
                )
    for key in sorted(metrics.histograms):
        hist = metrics.histograms[key]
        base = _prom_name(key, prefix)
        esc_key = _escape_label(key)
        samples = []
        cumulative = hist.cumulative_counts()
        bounds = list(hist.bounds) + [float("inf")]
        for bound, cum in zip(bounds, cumulative):
            samples.append(
                f'{base}_bucket{{key="{esc_key}",le="{_format_le(bound)}"}} '
                f"{repr(float(cum))}"
            )
        samples.append(_sample(base + "_sum", key, hist.sum))
        samples.append(_sample(base + "_count", key, float(hist.count)))
        family(
            base, "histogram", f"Histogram {key} from the repro metrics registry.",
            samples,
        )
    return "\n".join(lines) + "\n"


def load_trace(path: str) -> Tuple[Tracer, Dict[str, Any]]:
    """Load a trace file written by :func:`~repro.obs.spans.write_trace`.

    Returns ``(tracer, payload)``: a tracer wrapping the reconstructed
    span tree (usable with ``flame_summary`` / ``per_level_breakdown``)
    and the raw JSON payload (``otherData``, ``levels``, ...).
    """
    with open(path) as fh:
        payload = json.load(fh)
    span_data = payload.get("spanTree")
    if span_data is None:
        raise ValueError(f"{path}: not a repro trace file (no spanTree)")
    if isinstance(span_data, dict):
        roots = [span_tree_from_dict(span_data)]
    else:
        roots = [span_tree_from_dict(d) for d in span_data]
    return Tracer.from_roots(roots), payload
