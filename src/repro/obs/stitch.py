"""Cross-process trace stitching for the ``frontier-mp`` engine.

Worker processes run their subtree kernels under their own lightweight
:class:`~repro.obs.spans.Tracer`; the serialized span trees ship back
with the task results.  This module grafts those trees under the
master's ``parallel.subtree`` spans so that one tracer holds the whole
run — master orchestration *and* per-worker execution — and
:meth:`~repro.obs.spans.Tracer.to_chrome_trace` renders a true
multi-track Perfetto timeline (one lane per worker process, utilization
gaps visible between subtree tasks).

Timeline alignment
------------------
Each side records wall times relative to its own tracer epoch, but the
epochs themselves are readings of ``time.perf_counter``, which is a
machine-wide monotonic clock on every supported platform — so worker
times rebase onto the master timeline by adding
``worker_epoch - master_epoch``.  A defensive clamp slides a rebased
tree into its shard span's dispatch window if the clocks turn out not
to be comparable (exotic platforms, clock namespace boundaries), so the
rendered timeline is always sane.

Exactness invariant
-------------------
Stitching is pure observability: it appends :class:`Span` objects to an
already-recorded tree and never touches any machine frame, so the
(depth, work) ledger of a stitched run is bit-identical to the untraced
run's.  Worker-side spans carry zero simulated cost by construction
(the subtree kernel folds its per-node costs analytically instead of
charging the worker machine), so grafting them also keeps every
:meth:`~repro.obs.spans.Tracer.check_against` identity intact: the
subtree span's exclusive work stays 0 and the per-level exclusive-work
decomposition still reconstructs the ledger exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .spans import Span, span_tree_from_dict

__all__ = ["graft_worker_trace", "worker_spans"]


def _shift(span: Span, offset: float) -> None:
    """Shift a span tree's wall-clock bounds by ``offset`` seconds."""
    for _, s in span.walk():
        s.wall_start += offset
        s.wall_end += offset


def graft_worker_trace(
    shard_span: Span,
    trace: Dict[str, Any],
    *,
    master_epoch: float,
    worker: int,
) -> List[Span]:
    """Graft one task's worker span trees under its ``parallel.subtree``
    (or any other task-scoped) span.

    ``trace`` is the payload built by the worker kernels:
    ``{"spans": [span dicts], "epoch": <abs perf_counter>, "pid": ...,
    "tid": ...}``.  Every grafted span is annotated with the worker's
    ``pid``/``tid`` plus the master-side ``worker`` index (so the Chrome
    export can label lanes), and rebased onto the master timeline via
    the epoch difference.  Returns the grafted roots.

    Costs are taken verbatim from the worker (zero for shard kernels);
    no machine frame is touched — see the module docstring's invariant.
    """
    offset = float(trace.get("epoch", master_epoch)) - float(master_epoch)
    pid = int(trace.get("pid", 0))
    tid = int(trace.get("tid", pid))
    roots: List[Span] = []
    for data in trace.get("spans", ()):
        root = span_tree_from_dict(data)
        for _, s in root.walk():
            s.attrs.setdefault("pid", pid)
            s.attrs.setdefault("tid", tid)
            s.attrs.setdefault("worker", worker)
        _shift(root, offset)
        # defensive clamp: if the rebased tree falls outside the shard's
        # dispatch window the clocks were not comparable — slide it to
        # start at the dispatch instant instead.
        if shard_span.wall_end > shard_span.wall_start and (
            root.wall_start < shard_span.wall_start
            or root.wall_start > shard_span.wall_end
        ):
            _shift(root, shard_span.wall_start - root.wall_start)
        shard_span.children.append(root)
        roots.append(root)
    return roots


def worker_spans(root: Span) -> List[Span]:
    """All spans of a stitched tree that ran in a worker process
    (``pid`` attribute present and nonzero), in pre-order."""
    return [
        s for _, s in root.walk() if int(s.attrs.get("pid", 0)) != 0
    ]
