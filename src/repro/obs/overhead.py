"""Self-benchmark of tracing overhead against its budget.

Tracing is passive by contract — it may cost wall-clock, never ledger.
This module measures both sides of that contract on a repeatable
workload:

- **ledger delta** between a traced and an untraced run of the same
  seed must be exactly zero (depth, work, sections and counters);
- **wall-clock overhead** of tracing (plus sink export) should stay
  under the documented budget of 5% at n=100k (see
  ``docs/observability.md``, "Overhead budget").

Run it as a module::

    PYTHONPATH=src python -m repro.obs.overhead --n 100000 --repeats 3

which prints the measurement and appends it to
``benchmarks/results/obs_overhead.json``.  The committed baseline in
that file documents the overhead at the time the budget was set;
:mod:`scripts.check_bench_regression` re-asserts the zero-ledger-delta
half (machine-independent), while the wall half is informational —
wall-clock is hardware-dependent and is not gated exactly.

The same contract extends to *request tracing* on the network front-end
(ISSUE 9): :func:`measure_net_overhead` drives an identical sequential
loopback request stream against a traced and an untraced
:class:`~repro.net.server.NetServer` and checks both halves — responses
must be **byte-identical** (status, body, echoed ``X-Request-Id``) and
the traced wall-clock must stay within the same 5% budget.  Run with
``--net`` (writes ``benchmarks/results/obs_net_overhead.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

__all__ = [
    "NetOverheadReport",
    "OverheadReport",
    "main",
    "measure_net_overhead",
    "measure_overhead",
]

#: Wall-clock overhead budget for tracing, as a fraction (5%).
OVERHEAD_BUDGET = 0.05


@dataclass
class OverheadReport:
    """One overhead measurement: tracing vs not, same seed and workload."""

    n: int
    d: int
    k: int
    engine: str
    repeats: int
    wall_untraced_s: float
    wall_traced_s: float
    overhead_fraction: float
    span_count: int
    ledger_delta: float  # |traced - untraced| over depth+work+sections; 0 exactly
    budget_fraction: float = OVERHEAD_BUDGET

    @property
    def within_budget(self) -> bool:
        return self.overhead_fraction <= self.budget_fraction


def measure_overhead(
    n: int = 100_000,
    *,
    d: int = 2,
    k: int = 1,
    engine: str = "frontier",
    workers: Optional[int] = None,
    repeats: int = 3,
    seed: int = 0,
) -> OverheadReport:
    """Measure tracing overhead: best-of-``repeats`` traced vs untraced.

    Both sides run the same seed on fresh machines; the ledger comparison
    is exact (any nonzero delta is a bug — tracing must be passive).
    Best-of timing is used to suppress scheduler noise.
    """
    from ..api import all_knn, run_traced
    from ..pvm import Machine
    from ..workloads import uniform_cube

    pts = uniform_cube(n, d, seed)
    wall_untraced = float("inf")
    wall_traced = float("inf")
    ref_machine = traced_machine = None
    span_count = 0
    for _ in range(max(1, repeats)):
        machine = Machine()
        t0 = time.perf_counter()
        all_knn(pts, k, method="fast", machine=machine, seed=seed,
                engine=engine, workers=workers)
        wall_untraced = min(wall_untraced, time.perf_counter() - t0)
        ref_machine = machine
        machine = Machine()
        t0 = time.perf_counter()
        _, tracer = run_traced(pts, k, method="fast", machine=machine,
                               seed=seed, engine=engine, workers=workers)
        wall_traced = min(wall_traced, time.perf_counter() - t0)
        traced_machine = machine
        span_count = tracer.span_count()
    delta = abs(ref_machine.total.depth - traced_machine.total.depth)
    delta += abs(ref_machine.total.work - traced_machine.total.work)
    for name in set(ref_machine.sections) | set(traced_machine.sections):
        a = ref_machine.sections.get(name)
        b = traced_machine.sections.get(name)
        if a is None or b is None:
            delta += float("inf")
        else:
            delta += abs(a.depth - b.depth) + abs(a.work - b.work)
    if ref_machine.counters != traced_machine.counters:
        delta += float("inf")
    return OverheadReport(
        n=n, d=d, k=k, engine=engine, repeats=repeats,
        wall_untraced_s=wall_untraced,
        wall_traced_s=wall_traced,
        overhead_fraction=(wall_traced - wall_untraced) / max(wall_untraced, 1e-12),
        span_count=span_count,
        ledger_delta=delta,
    )


@dataclass
class NetOverheadReport:
    """Request-tracing overhead on the network front-end.

    ``byte_identical`` is the exactness half: every response from the
    traced server (status line, JSON body, echoed ``X-Request-Id``)
    matched the untraced server's byte for byte.  ``overhead_fraction``
    is best-of-``repeats`` traced vs untraced wall time for the whole
    sequential request stream.
    """

    n: int
    d: int
    k: int
    requests: int
    repeats: int
    wall_untraced_s: float
    wall_traced_s: float
    overhead_fraction: float
    byte_identical: bool
    budget_fraction: float = OVERHEAD_BUDGET

    @property
    def within_budget(self) -> bool:
        return self.overhead_fraction <= self.budget_fraction


def measure_net_overhead(
    n: int = 100_000,
    *,
    d: int = 2,
    k: int = 1,
    requests: int = 400,
    repeats: int = 3,
    seed: int = 0,
) -> NetOverheadReport:
    """Measure request-tracing overhead over loopback HTTP.

    One index is built once; each side (``trace_requests`` on / off)
    gets a fresh loopback :class:`~repro.net.server.ServerThread` with an
    otherwise identical :class:`~repro.net.config.NetConfig`
    (``max_wait_ms=0``, cache off, so every request pays one real
    execution) and is driven ``repeats`` times with the same seeded
    sequential stream of single-point queries carrying deterministic
    client-supplied request ids.  Responses from the first pass on each
    side are byte-compared; wall time is best-of-``repeats``.
    """
    import asyncio

    from ..api import build_index
    from ..net import NetConfig, NetServer, ServerThread, TenantManager, http_fetch
    from ..workloads import uniform_cube
    import numpy as np

    pts = uniform_cube(n, d, seed)
    mutable = build_index(pts, k, seed=seed, engine="frontier").mutable
    rng = np.random.default_rng(seed + 1)
    rows = rng.integers(0, pts.shape[0], size=requests).tolist()

    async def _drive(port: int) -> Tuple[float, List[Tuple[int, str, str]]]:
        responses: List[Tuple[int, str, str]] = []
        t0 = time.perf_counter()
        for i, row in enumerate(rows):
            status, _, text, headers = await http_fetch(
                "127.0.0.1", port, "/v1/query",
                {"point": pts[row].tolist(), "k": k},
                headers={"X-Request-Id": f"ov-{seed:08x}-{i:06d}"},
            )
            responses.append((status, text, headers.get("x-request-id", "")))
        return time.perf_counter() - t0, responses

    def _side(traced: bool) -> Tuple[float, List[Tuple[int, str, str]]]:
        config = NetConfig(
            port=0, adaptive=False, max_wait_ms=0.0, cache_size=0,
            trace_requests=traced,
        )
        manager = TenantManager(config=config)
        manager.add("default", mutable)
        best = float("inf")
        first: List[Tuple[int, str, str]] = []
        with ServerThread(NetServer(manager, config=config)) as thread:
            for rep in range(max(1, repeats)):
                wall, responses = asyncio.run(_drive(thread.port))
                best = min(best, wall)
                if rep == 0:
                    first = responses
        return best, first

    wall_untraced, ref = _side(False)
    wall_traced, traced_responses = _side(True)
    return NetOverheadReport(
        n=n, d=d, k=k, requests=requests, repeats=repeats,
        wall_untraced_s=wall_untraced,
        wall_traced_s=wall_traced,
        overhead_fraction=(wall_traced - wall_untraced) / max(wall_untraced, 1e-12),
        byte_identical=traced_responses == ref,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure tracing overhead (wall-clock and ledger delta)."
    )
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--d", type=int, default=2)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--engine", default="frontier")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--net", action="store_true",
                        help="measure request-tracing overhead on the "
                             "network front-end instead of span tracing")
    parser.add_argument("--requests", type=int, default=400,
                        help="loopback requests per pass (--net only)")
    parser.add_argument("--out", default=None,
                        help="append the report to this JSON list file "
                             "(default: benchmarks/results/obs_overhead.json, "
                             "or obs_net_overhead.json with --net)")
    parser.add_argument("--no-write", action="store_true",
                        help="print only; do not touch the results file")
    args = parser.parse_args(argv)
    if args.net:
        report = measure_net_overhead(
            args.n, d=args.d, k=args.k, requests=args.requests,
            repeats=args.repeats, seed=args.seed,
        )
        print(f"n={report.n} requests={report.requests} "
              f"repeats={report.repeats}")
        print(f"untraced {report.wall_untraced_s:.3f}s  "
              f"traced {report.wall_traced_s:.3f}s  "
              f"overhead {report.overhead_fraction:+.2%} "
              f"(budget {report.budget_fraction:.0%})")
        print(f"responses byte-identical: {report.byte_identical}")
        default_name = "obs_net_overhead.json"
        failed = not report.byte_identical or not report.within_budget
    else:
        report = measure_overhead(
            args.n, d=args.d, k=args.k, engine=args.engine,
            workers=args.workers, repeats=args.repeats, seed=args.seed,
        )
        print(f"n={report.n} engine={report.engine} spans={report.span_count}")
        print(f"untraced {report.wall_untraced_s:.3f}s  "
              f"traced {report.wall_traced_s:.3f}s  "
              f"overhead {report.overhead_fraction:+.2%} "
              f"(budget {report.budget_fraction:.0%})")
        print(f"ledger delta: {report.ledger_delta} "
              f"({'exact' if report.ledger_delta == 0 else 'VIOLATION'})")
        default_name = "obs_overhead.json"
        failed = report.ledger_delta != 0 or not report.within_budget
    if not args.no_write:
        out = args.out
        if out is None:
            out = os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks", "results", default_name,
            )
        records = []
        if os.path.exists(out):
            try:
                with open(out) as fh:
                    loaded = json.load(fh)
                if isinstance(loaded, list):
                    records = loaded
            except (OSError, ValueError):
                records = []
        record = asdict(report)
        record["timestamp"] = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime()
        )
        records.append(record)
        with open(out, "w") as fh:
            json.dump(records, fh, indent=1)
            fh.write("\n")
        print(f"wrote {out}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
