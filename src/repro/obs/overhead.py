"""Self-benchmark of tracing overhead against its budget.

Tracing is passive by contract — it may cost wall-clock, never ledger.
This module measures both sides of that contract on a repeatable
workload:

- **ledger delta** between a traced and an untraced run of the same
  seed must be exactly zero (depth, work, sections and counters);
- **wall-clock overhead** of tracing (plus sink export) should stay
  under the documented budget of 5% at n=100k (see
  ``docs/observability.md``, "Overhead budget").

Run it as a module::

    PYTHONPATH=src python -m repro.obs.overhead --n 100000 --repeats 3

which prints the measurement and appends it to
``benchmarks/results/obs_overhead.json``.  The committed baseline in
that file documents the overhead at the time the budget was set;
:mod:`scripts.check_bench_regression` re-asserts the zero-ledger-delta
half (machine-independent), while the wall half is informational —
wall-clock is hardware-dependent and is not gated exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["OverheadReport", "measure_overhead", "main"]

#: Wall-clock overhead budget for tracing, as a fraction (5%).
OVERHEAD_BUDGET = 0.05


@dataclass
class OverheadReport:
    """One overhead measurement: tracing vs not, same seed and workload."""

    n: int
    d: int
    k: int
    engine: str
    repeats: int
    wall_untraced_s: float
    wall_traced_s: float
    overhead_fraction: float
    span_count: int
    ledger_delta: float  # |traced - untraced| over depth+work+sections; 0 exactly
    budget_fraction: float = OVERHEAD_BUDGET

    @property
    def within_budget(self) -> bool:
        return self.overhead_fraction <= self.budget_fraction


def measure_overhead(
    n: int = 100_000,
    *,
    d: int = 2,
    k: int = 1,
    engine: str = "frontier",
    workers: Optional[int] = None,
    repeats: int = 3,
    seed: int = 0,
) -> OverheadReport:
    """Measure tracing overhead: best-of-``repeats`` traced vs untraced.

    Both sides run the same seed on fresh machines; the ledger comparison
    is exact (any nonzero delta is a bug — tracing must be passive).
    Best-of timing is used to suppress scheduler noise.
    """
    from ..api import all_knn, run_traced
    from ..pvm import Machine
    from ..workloads import uniform_cube

    pts = uniform_cube(n, d, seed)
    wall_untraced = float("inf")
    wall_traced = float("inf")
    ref_machine = traced_machine = None
    span_count = 0
    for _ in range(max(1, repeats)):
        machine = Machine()
        t0 = time.perf_counter()
        all_knn(pts, k, method="fast", machine=machine, seed=seed,
                engine=engine, workers=workers)
        wall_untraced = min(wall_untraced, time.perf_counter() - t0)
        ref_machine = machine
        machine = Machine()
        t0 = time.perf_counter()
        _, tracer = run_traced(pts, k, method="fast", machine=machine,
                               seed=seed, engine=engine, workers=workers)
        wall_traced = min(wall_traced, time.perf_counter() - t0)
        traced_machine = machine
        span_count = tracer.span_count()
    delta = abs(ref_machine.total.depth - traced_machine.total.depth)
    delta += abs(ref_machine.total.work - traced_machine.total.work)
    for name in set(ref_machine.sections) | set(traced_machine.sections):
        a = ref_machine.sections.get(name)
        b = traced_machine.sections.get(name)
        if a is None or b is None:
            delta += float("inf")
        else:
            delta += abs(a.depth - b.depth) + abs(a.work - b.work)
    if ref_machine.counters != traced_machine.counters:
        delta += float("inf")
    return OverheadReport(
        n=n, d=d, k=k, engine=engine, repeats=repeats,
        wall_untraced_s=wall_untraced,
        wall_traced_s=wall_traced,
        overhead_fraction=(wall_traced - wall_untraced) / max(wall_untraced, 1e-12),
        span_count=span_count,
        ledger_delta=delta,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure tracing overhead (wall-clock and ledger delta)."
    )
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--d", type=int, default=2)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--engine", default="frontier")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="append the report to this JSON list file "
                             "(default: benchmarks/results/obs_overhead.json)")
    parser.add_argument("--no-write", action="store_true",
                        help="print only; do not touch the results file")
    args = parser.parse_args(argv)
    report = measure_overhead(
        args.n, d=args.d, k=args.k, engine=args.engine,
        workers=args.workers, repeats=args.repeats, seed=args.seed,
    )
    print(f"n={report.n} engine={report.engine} spans={report.span_count}")
    print(f"untraced {report.wall_untraced_s:.3f}s  "
          f"traced {report.wall_traced_s:.3f}s  "
          f"overhead {report.overhead_fraction:+.2%} "
          f"(budget {report.budget_fraction:.0%})")
    print(f"ledger delta: {report.ledger_delta} "
          f"({'exact' if report.ledger_delta == 0 else 'VIOLATION'})")
    if not args.no_write:
        out = args.out
        if out is None:
            out = os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks", "results", "obs_overhead.json",
            )
        records = []
        if os.path.exists(out):
            try:
                with open(out) as fh:
                    loaded = json.load(fh)
                if isinstance(loaded, list):
                    records = loaded
            except (OSError, ValueError):
                records = []
        record = asdict(report)
        record["timestamp"] = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime()
        )
        records.append(record)
        with open(out, "w") as fh:
            json.dump(records, fh, indent=1)
            fh.write("\n")
        print(f"wrote {out}")
    if report.ledger_delta != 0:
        return 1
    return 0 if report.within_budget else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
