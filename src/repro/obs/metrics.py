"""Counter / gauge / series registry for run-level observability.

A :class:`Metrics` object is a flat, namespaced bag of numbers describing
*what happened* during a run — separator retries, straddler counts per
recursion level, punt events, base-case sizes — as opposed to the
(depth, work) ledger of :mod:`repro.pvm.cost`, which describes *what it
cost*.  Three kinds of entries:

``counters``
    monotone event counts (``inc``), e.g. ``fast.punts_iota``;
``gauges``
    last-write-wins values (``set_gauge``), e.g. ``query.height``;
``series``
    append-only sample lists (``observe``), e.g. per-node
    ``(m, iota)`` straddler samples.

The legacy per-algorithm stats dataclasses (``FastDnCStats``,
``SimpleDnCStats``, ``QueryStats``) are now thin views over a registry:
:class:`MetricsView` generates read/write properties per declared field so
``stats.punts_iota += 1`` still works while the value lives in the shared
registry and exports uniformly through :meth:`Metrics.to_dict`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["Metrics", "MetricsView"]


class Metrics:
    """Namespaced registry of counters, gauges and sample series."""

    __slots__ = ("counters", "gauges", "series")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.series: Dict[str, List[Any]] = {}

    # -- writers ---------------------------------------------------------

    def inc(self, name: str, by: float = 1) -> None:
        """Increment counter ``name`` by ``by`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + by

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` (used by the stats-view setters)."""
        self.counters[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: Any) -> None:
        """Append ``value`` to the sample series ``name``."""
        self.series.setdefault(name, []).append(value)

    # -- readers ---------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name`` (``default`` if never touched)."""
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = 0) -> float:
        """Current value of gauge ``name`` (``default`` if never set)."""
        return self.gauges.get(name, default)

    def samples(self, name: str) -> List[Any]:
        """The live sample list for ``name`` (created empty on first read)."""
        return self.series.setdefault(name, [])

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: ``{"counters": .., "gauges": .., "series": ..}``.

        Series entries are shallow-copied; tuples inside become lists when
        the caller round-trips through ``json``, so consumers should not
        rely on tuple-ness.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "series": {k: list(v) for k, v in self.series.items()},
        }

    def merge(self, other: "Metrics") -> None:
        """Fold ``other`` into this registry (counters add, gauges overwrite,
        series extend).

        Merging is deterministic given a deterministic call order: the
        ``frontier-mp`` engine folds worker registries in shard order, so
        repeated runs produce identical registries (counters are exact
        sums; series equal the serial engine's as multisets).
        """
        for k, v in other.counters.items():
            self.inc(k, v)
        self.gauges.update(other.gauges)
        for k, v in other.series.items():
            self.samples(k).extend(v)

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format; see
        :func:`repro.obs.export.metrics_to_prometheus`."""
        from .export import metrics_to_prometheus

        return metrics_to_prometheus(self, prefix=prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Metrics(counters={len(self.counters)}, gauges={len(self.gauges)}, "
            f"series={len(self.series)})"
        )


def _counter_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> int:
        return int(self.metrics.counter(key))

    def fset(self: "MetricsView", value: float) -> None:
        self.metrics.set_counter(key, int(value))

    return property(fget, fset, doc=f"Counter ``{key}`` (view).")


def _gauge_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> float:
        return self.metrics.gauge(key)

    def fset(self: "MetricsView", value: float) -> None:
        self.metrics.set_gauge(key, value)

    return property(fget, fset, doc=f"Gauge ``{key}`` (view).")


def _series_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> List[Any]:
        return self.metrics.samples(key)

    def fset(self: "MetricsView", value: List[Any]) -> None:
        self.metrics.series[key] = list(value)

    return property(fget, fset, doc=f"Sample series ``{key}`` (view).")


class MetricsView:
    """Base for stats classes that are thin views over a :class:`Metrics`.

    Subclasses declare ``_NS`` (the key namespace) plus ``_COUNTER_FIELDS``,
    ``_GAUGE_FIELDS`` and ``_SERIES_FIELDS``; matching read/write properties
    are generated automatically, so existing attribute-style access
    (``stats.nodes += 1``, ``stats.straddler_fraction.append(..)``) keeps
    working unchanged while the data lives in the registry.
    """

    _NS = ""
    _COUNTER_FIELDS: Tuple[str, ...] = ()
    _GAUGE_FIELDS: Tuple[str, ...] = ()
    _SERIES_FIELDS: Tuple[str, ...] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for f in cls._COUNTER_FIELDS:
            setattr(cls, f, _counter_property(cls._NS, f))
        for f in cls._GAUGE_FIELDS:
            setattr(cls, f, _gauge_property(cls._NS, f))
        for f in cls._SERIES_FIELDS:
            setattr(cls, f, _series_property(cls._NS, f))

    def __init__(self, metrics: Metrics | None = None, **fields: Any) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        known = self._COUNTER_FIELDS + self._GAUGE_FIELDS + self._SERIES_FIELDS
        for name, value in fields.items():
            if name not in known:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r} (known: {sorted(known)})"
                )
            setattr(self, name, value)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot of the declared fields."""
        out: Dict[str, Any] = {}
        for f in self._COUNTER_FIELDS + self._GAUGE_FIELDS:
            out[f] = getattr(self, f)
        for f in self._SERIES_FIELDS:
            out[f] = list(getattr(self, f))
        return out

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items())
        return f"{type(self).__name__}({body})"
