"""Counter / gauge / series registry for run-level observability.

A :class:`Metrics` object is a flat, namespaced bag of numbers describing
*what happened* during a run — separator retries, straddler counts per
recursion level, punt events, base-case sizes — as opposed to the
(depth, work) ledger of :mod:`repro.pvm.cost`, which describes *what it
cost*.  Three kinds of entries:

``counters``
    monotone event counts (``inc``), e.g. ``fast.punts_iota``;
``gauges``
    last-write-wins values (``set_gauge``), e.g. ``query.height``;
``series``
    append-only sample lists (``observe``), e.g. per-node
    ``(m, iota)`` straddler samples;
``histograms``
    bucketed latency distributions (``observe_hist``), e.g.
    ``net.request_ms`` — fixed log-linear bounds, counts + sum,
    mergeable across workers, percentile-queryable server-side.

The legacy per-algorithm stats dataclasses (``FastDnCStats``,
``SimpleDnCStats``, ``QueryStats``) are now thin views over a registry:
:class:`MetricsView` generates read/write properties per declared field so
``stats.punts_iota += 1`` still works while the value lives in the shared
registry and exports uniformly through :meth:`Metrics.to_dict`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_LATENCY_BOUNDS_MS", "Histogram", "Metrics", "MetricsView", "log_linear_bounds"]


def log_linear_bounds(
    decade_lo: int = -2, decade_hi: int = 5, steps_per_decade: int = 9
) -> Tuple[float, ...]:
    """Deterministic log-linear bucket bounds.

    For every decade ``10^d`` with ``decade_lo <= d < decade_hi``, emits
    ``steps_per_decade`` linearly spaced bounds ``1*10^d .. 9*10^d`` —
    the classic HDR-style scheme: relative bucket error is bounded
    (~11% with 9 steps) at every scale, and the bounds are a pure
    function of the three integers, so histograms recorded by different
    processes (or committed in benchmark artifacts) always merge.
    """
    if decade_hi <= decade_lo:
        raise ValueError(f"need decade_hi > decade_lo, got [{decade_lo}, {decade_hi})")
    if not 1 <= steps_per_decade <= 9:
        raise ValueError(f"steps_per_decade must be in [1, 9], got {steps_per_decade}")
    bounds = []
    for dec in range(decade_lo, decade_hi):
        scale = 10.0 ** dec
        for step in range(1, steps_per_decade + 1):
            bounds.append(step * scale)
    return tuple(bounds)


#: Default bounds for millisecond latency histograms: 0.01ms .. 90s in
#: 63 log-linear buckets (plus the implicit +Inf overflow bucket).
DEFAULT_LATENCY_BOUNDS_MS = log_linear_bounds(-2, 5, 9)


class Histogram:
    """A fixed-bound bucket histogram: counts + sum, mergeable, queryable.

    Bucket ``i`` counts observations ``v <= bounds[i]`` (Prometheus
    ``le`` semantics); one implicit overflow bucket catches everything
    past the last bound.  ``sum``/``count``/``min``/``max`` ride along
    so averages and exact extremes survive bucketing.  Two histograms
    merge iff their bounds are identical — which they are by
    construction when both use a :func:`log_linear_bounds` scheme with
    the same parameters — making per-worker histograms foldable into one
    server-side distribution after a pool run.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        b = DEFAULT_LATENCY_BOUNDS_MS if bounds is None else tuple(float(x) for x in bounds)
        if len(b) < 1:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds: Tuple[float, ...] = tuple(b)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- writers ---------------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one observation in (NaN is ignored)."""
        v = float(value)
        if v != v:  # NaN never lands in a bucket
            return
        self.bucket_counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # -- readers ---------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def cumulative_counts(self) -> List[int]:
        """Cumulative bucket counts, one per bound plus the +Inf bucket
        (the Prometheus ``_bucket`` samples; the last equals ``count``)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the buckets.

        Nearest-rank bucket selection with linear interpolation inside
        the bucket; the overflow bucket reports the exact observed
        ``max``.  ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = max(1, -(-q * self.count // 1))  # ceil, at least rank 1
        running = 0
        for i, c in enumerate(self.bucket_counts):
            if c == 0:
                continue
            if running + c >= target:
                if i == len(self.bounds):  # overflow bucket
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (target - running) / c
                est = lo + frac * (hi - lo)
                # the exact extremes are tracked; never report outside them
                if self.max is not None:
                    est = min(est, self.max)
                if self.min is not None:
                    est = max(est, self.min)
                return est
            running += c
        return self.max  # pragma: no cover - unreachable (count > 0)

    def percentile(self, p: float) -> Optional[float]:
        """:meth:`quantile` with ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready p50/p95/p99 + count/sum/min/max/mean snapshot."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean if self.count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.bucket_counts),
            "count": int(self.count),
            "sum": float(self.sum),
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(data["bounds"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(hist.bucket_counts):
            raise ValueError("bucket count list does not match bounds")
        hist.bucket_counts = counts
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = data.get("min")
        hist.max = data.get("max")
        return hist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram(buckets={len(self.bucket_counts)}, count={self.count}, "
            f"sum={self.sum:g})"
        )


class Metrics:
    """Namespaced registry of counters, gauges and sample series."""

    __slots__ = ("counters", "gauges", "series", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.series: Dict[str, List[Any]] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- writers ---------------------------------------------------------

    def inc(self, name: str, by: float = 1) -> None:
        """Increment counter ``name`` by ``by`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + by

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` (used by the stats-view setters)."""
        self.counters[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: Any) -> None:
        """Append ``value`` to the sample series ``name``."""
        self.series.setdefault(name, []).append(value)

    def observe_hist(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        """Fold ``value`` into histogram ``name`` (created on first use)."""
        self.histogram(name, bounds).observe(value)

    # -- readers ---------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name`` (``default`` if never touched)."""
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = 0) -> float:
        """Current value of gauge ``name`` (``default`` if never set)."""
        return self.gauges.get(name, default)

    def samples(self, name: str) -> List[Any]:
        """The live sample list for ``name`` (created empty on first read)."""
        return self.series.setdefault(name, [])

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The live histogram for ``name``, created on first access.

        ``bounds`` only applies at creation; subsequent calls return the
        existing histogram regardless (the bounds of a live histogram
        never move — that is what keeps merges well-defined).
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        return hist

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: ``{"counters": .., "gauges": .., "series": ..}``.

        Series entries are shallow-copied; tuples inside become lists when
        the caller round-trips through ``json``, so consumers should not
        rely on tuple-ness.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "series": {k: list(v) for k, v in self.series.items()},
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    def merge(self, other: "Metrics") -> None:
        """Fold ``other`` into this registry (counters add, gauges overwrite,
        series extend).

        Merging is deterministic given a deterministic call order: the
        ``frontier-mp`` engine folds worker registries in shard order, so
        repeated runs produce identical registries (counters are exact
        sums; series equal the serial engine's as multisets).
        """
        for k, v in other.counters.items():
            self.inc(k, v)
        self.gauges.update(other.gauges)
        for k, v in other.series.items():
            self.samples(k).extend(v)
        for k, h in other.histograms.items():
            self.histogram(k, h.bounds).merge(h)

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format; see
        :func:`repro.obs.export.metrics_to_prometheus`."""
        from .export import metrics_to_prometheus

        return metrics_to_prometheus(self, prefix=prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Metrics(counters={len(self.counters)}, gauges={len(self.gauges)}, "
            f"series={len(self.series)}, histograms={len(self.histograms)})"
        )


def _counter_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> int:
        return int(self.metrics.counter(key))

    def fset(self: "MetricsView", value: float) -> None:
        self.metrics.set_counter(key, int(value))

    return property(fget, fset, doc=f"Counter ``{key}`` (view).")


def _gauge_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> float:
        return self.metrics.gauge(key)

    def fset(self: "MetricsView", value: float) -> None:
        self.metrics.set_gauge(key, value)

    return property(fget, fset, doc=f"Gauge ``{key}`` (view).")


def _series_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> List[Any]:
        return self.metrics.samples(key)

    def fset(self: "MetricsView", value: List[Any]) -> None:
        self.metrics.series[key] = list(value)

    return property(fget, fset, doc=f"Sample series ``{key}`` (view).")


def _histogram_property(namespace: str, name: str) -> property:
    key = f"{namespace}.{name}"

    def fget(self: "MetricsView") -> Histogram:
        return self.metrics.histogram(key)

    def fset(self: "MetricsView", value: Histogram) -> None:
        if not isinstance(value, Histogram):
            raise TypeError(f"{key} expects a Histogram, got {type(value).__name__}")
        self.metrics.histograms[key] = value

    return property(fget, fset, doc=f"Histogram ``{key}`` (view).")


class MetricsView:
    """Base for stats classes that are thin views over a :class:`Metrics`.

    Subclasses declare ``_NS`` (the key namespace) plus ``_COUNTER_FIELDS``,
    ``_GAUGE_FIELDS`` and ``_SERIES_FIELDS``; matching read/write properties
    are generated automatically, so existing attribute-style access
    (``stats.nodes += 1``, ``stats.straddler_fraction.append(..)``) keeps
    working unchanged while the data lives in the registry.
    """

    _NS = ""
    _COUNTER_FIELDS: Tuple[str, ...] = ()
    _GAUGE_FIELDS: Tuple[str, ...] = ()
    _SERIES_FIELDS: Tuple[str, ...] = ()
    _HISTOGRAM_FIELDS: Tuple[str, ...] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for f in cls._COUNTER_FIELDS:
            setattr(cls, f, _counter_property(cls._NS, f))
        for f in cls._GAUGE_FIELDS:
            setattr(cls, f, _gauge_property(cls._NS, f))
        for f in cls._SERIES_FIELDS:
            setattr(cls, f, _series_property(cls._NS, f))
        for f in cls._HISTOGRAM_FIELDS:
            setattr(cls, f, _histogram_property(cls._NS, f))

    def __init__(self, metrics: Metrics | None = None, **fields: Any) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        known = (
            self._COUNTER_FIELDS + self._GAUGE_FIELDS
            + self._SERIES_FIELDS + self._HISTOGRAM_FIELDS
        )
        for name, value in fields.items():
            if name not in known:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r} (known: {sorted(known)})"
                )
            setattr(self, name, value)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot of the declared fields."""
        out: Dict[str, Any] = {}
        for f in self._COUNTER_FIELDS + self._GAUGE_FIELDS:
            out[f] = getattr(self, f)
        for f in self._SERIES_FIELDS:
            out[f] = list(getattr(self, f))
        for f in self._HISTOGRAM_FIELDS:
            out[f] = getattr(self, f).summary()
        return out

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items())
        return f"{type(self).__name__}({body})"
