"""Hierarchical tracing of simulated runs: spans, trace trees, exports.

A *span* is a named region of a program run on the simulated machine.  It
records the region's inclusive :class:`~repro.pvm.cost.Cost` (measured on
the machine's own frame stack, so it is exact under nested parallel
blocks), the enclosing frame's cost at entry (the "ledger position" where
the region started), wall-clock bounds, and free-form attributes such as
recursion level, subproblem size or punt flags.  Spans nest, forming a
tree per traced run.

Exports:

- :meth:`Tracer.to_dict` / :func:`span_tree_from_dict` — lossless JSON
  round trip of the span tree;
- :meth:`Tracer.to_chrome_trace` — a ``{"traceEvents": [...]}`` object
  loadable in ``chrome://tracing`` / Perfetto (wall-clock timeline, with
  simulated depth/work in each event's ``args``);
- :meth:`Tracer.flame_summary` — an ASCII flame-style rollup aggregated
  by span-name path (work share, counts, wall time);
- :meth:`Tracer.per_level_breakdown` — per-tree-level inclusive/exclusive
  work sums.  Work is additive under both sequential and parallel
  composition, so the exclusive sums across levels add up to the root
  work *exactly*; :meth:`Tracer.check_against` asserts that identity
  against a machine's aggregate ledger.

Invariant (kept by :meth:`repro.pvm.machine.Machine.span`): tracing never
charges the ledger — a traced run and an untraced run of the same seeded
algorithm produce identical ``Cost`` totals.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..pvm.cost import Cost, ZERO

__all__ = ["Span", "Tracer", "span_tree_from_dict", "write_trace"]


@dataclass
class Span:
    """One traced region: name, attributes, cost and wall-clock bounds.

    ``cost`` is the region's inclusive (depth, work); ``cost_enter`` is the
    enclosing frame's accumulated cost when the region started (so
    ``cost_exit = cost_enter.then(cost)`` is the frame's cost when it
    ended).  ``wall_start`` / ``wall_end`` are seconds relative to the
    tracer's epoch.
    """

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    cost: Cost = ZERO
    cost_enter: Cost = ZERO
    wall_start: float = 0.0
    wall_end: float = 0.0
    children: List["Span"] = field(default_factory=list)

    @property
    def cost_exit(self) -> Cost:
        """Enclosing frame's cost at region exit (entry snapshot + region)."""
        return self.cost_enter.then(self.cost)

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration of the region in seconds."""
        return max(0.0, self.wall_end - self.wall_start)

    @property
    def exclusive_work(self) -> float:
        """Work charged in this region but not in any child span.

        Work is additive under both compositions, so this is exact:
        ``cost.work - sum(child.cost.work)``.
        """
        return self.cost.work - sum(c.cost.work for c in self.children)

    def walk(self, level: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Yield ``(tree_level, span)`` pairs in pre-order."""
        yield level, self
        for child in self.children:
            yield from child.walk(level + 1)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (recursive; inverse of :func:`span_tree_from_dict`)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "depth": self.cost.depth,
            "work": self.cost.work,
            "enter_depth": self.cost_enter.depth,
            "enter_work": self.cost_enter.work,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "children": [c.to_dict() for c in self.children],
        }


def span_tree_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output."""
    return Span(
        name=data["name"],
        attrs=dict(data.get("attrs", {})),
        cost=Cost(data.get("depth", 0.0), data.get("work", 0.0)),
        cost_enter=Cost(data.get("enter_depth", 0.0), data.get("enter_work", 0.0)),
        wall_start=data.get("wall_start", 0.0),
        wall_end=data.get("wall_end", 0.0),
        children=[span_tree_from_dict(c) for c in data.get("children", [])],
    )


class Tracer:
    """Collects a span tree for one (or more) traced runs on a machine.

    Attach to a machine at construction (``Machine(tracer=Tracer())``) or
    later (``machine.tracer = Tracer()``); every
    :meth:`~repro.pvm.machine.Machine.span` region then records here.
    Top-level spans (opened while no other span is active) become roots.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def epoch(self) -> float:
        """Absolute clock reading taken at construction.

        All span wall times are relative to this instant.  On platforms
        where ``time.perf_counter`` is a machine-wide monotonic clock
        (Linux, macOS, Windows), epochs of tracers in *different
        processes* are directly comparable, which is what
        :mod:`repro.obs.stitch` uses to rebase worker span trees onto the
        master timeline.
        """
        return self._epoch

    @classmethod
    def from_roots(cls, roots: Sequence[Span]) -> "Tracer":
        """Wrap already-recorded span trees (e.g. reloaded from a trace
        file) in a tracer, so the analysis/export methods apply."""
        tracer = cls()
        tracer.roots = list(roots)
        return tracer

    # -- recording (called by Machine.span) -------------------------------

    def start(self, name: str, attrs: Dict[str, Any], cost_enter: Cost) -> Span:
        """Open a span; it becomes the parent of spans opened before stop."""
        span = Span(
            name=name,
            attrs=attrs,
            cost_enter=cost_enter,
            wall_start=self._clock() - self._epoch,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def stop(self, span: Span, cost: Cost) -> None:
        """Close the innermost open span, recording its inclusive cost."""
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span stack corrupted: closing {span.name!r} but {popped.name!r} is innermost"
            )
        span.cost = cost
        span.wall_end = self._clock() - self._epoch

    @property
    def root(self) -> Optional[Span]:
        """The single root span, when exactly one top-level span exists."""
        return self.roots[0] if len(self.roots) == 1 else None

    def span_count(self) -> int:
        """Total number of recorded spans."""
        return sum(1 for root in self.roots for _ in root.walk())

    # -- analysis ----------------------------------------------------------

    def per_level_breakdown(self) -> List[Dict[str, float]]:
        """Aggregate spans by tree level.

        Returns one row per level with ``spans``, ``inclusive_work``,
        ``exclusive_work`` and ``max_depth`` (the largest inclusive span
        depth on that level).  Because work is additive, the exclusive-work
        column sums to the root's total work exactly — the per-level view
        is a lossless decomposition of the ledger's work.
        """
        rows: List[Dict[str, float]] = []
        for root in self.roots:
            for level, span in root.walk():
                while len(rows) <= level:
                    rows.append(
                        {"level": len(rows), "spans": 0, "inclusive_work": 0.0,
                         "exclusive_work": 0.0, "max_depth": 0.0}
                    )
                row = rows[level]
                row["spans"] += 1
                row["inclusive_work"] += span.cost.work
                row["exclusive_work"] += span.exclusive_work
                row["max_depth"] = max(row["max_depth"], span.cost.depth)
        return rows

    def check_against(self, total: Cost, *, tol: float = 1e-6) -> None:
        """Assert the span tree is consistent with an aggregate ledger.

        Requires a single root span wrapping the whole run.  Checks that
        (1) the root's inclusive cost equals ``total`` exactly, (2) the
        per-level exclusive work sums reconstruct ``total.work``, and
        (3) every span's children respect work additivity and the depth
        upper bound.  Raises ``ValueError`` on any violation.
        """
        root = self.root
        if root is None:
            raise ValueError(f"expected exactly one root span, have {len(self.roots)}")
        if abs(root.cost.depth - total.depth) > tol or abs(root.cost.work - total.work) > tol:
            raise ValueError(
                f"root span cost {root.cost} != machine total {total}"
            )
        level_sum = sum(r["exclusive_work"] for r in self.per_level_breakdown())
        if abs(level_sum - total.work) > tol * max(1.0, total.work):
            raise ValueError(
                f"per-level exclusive work {level_sum} != ledger work {total.work}"
            )
        for _, span in root.walk():
            child_work = sum(c.cost.work for c in span.children)
            if child_work > span.cost.work + tol * max(1.0, span.cost.work):
                raise ValueError(
                    f"span {span.name!r}: children work {child_work} exceeds "
                    f"inclusive work {span.cost.work}"
                )
            for c in span.children:
                if c.cost.depth > span.cost.depth + tol:
                    raise ValueError(
                        f"span {span.name!r}: child {c.name!r} depth {c.cost.depth} "
                        f"exceeds parent depth {span.cost.depth}"
                    )

    # -- exports -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full trace as a JSON-ready dict: span tree + summary."""
        return {
            "format": "repro-trace-v1",
            "spans": [root.to_dict() for root in self.roots],
            "span_count": self.span_count(),
            "levels": self.per_level_breakdown(),
        }

    def to_chrome_trace(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Chrome-trace object (``chrome://tracing`` / Perfetto loadable).

        Events are complete ("X") slices timed by wall clock; the
        simulated (depth, work) and span attributes ride in each event's
        ``args``.  Spans carrying ``pid``/``tid`` attributes (set by
        :mod:`repro.obs.stitch` for worker span trees) land on their own
        process/thread lane, so a stitched ``frontier-mp`` trace renders
        one Perfetto track per worker; spans without them stay on the
        master lane ``pid 0``.  Process-name metadata events label every
        lane.  Extra top-level keys (the span tree under ``spanTree``)
        are permitted by the Chrome trace format and ignored by viewers.
        """
        events: List[Dict[str, Any]] = []
        lanes: Dict[Tuple[int, int], str] = {}
        for root in self.roots:
            for _, span in root.walk():
                pid = int(span.attrs.get("pid", 0))
                tid = int(span.attrs.get("tid", 0))
                if (pid, tid) not in lanes:
                    if pid == 0:
                        lanes[(pid, tid)] = "master"
                    elif "worker" in span.attrs:
                        lanes[(pid, tid)] = (
                            f"worker-{span.attrs['worker']} (pid {pid})"
                        )
                    else:
                        lanes[(pid, tid)] = f"pid {pid}"
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "ts": span.wall_start * 1e6,
                        "dur": max(0.0, span.wall_seconds) * 1e6,
                        "args": {
                            "depth": span.cost.depth,
                            "work": span.cost.work,
                            **span.attrs,
                        },
                    }
                )
        meta_events: List[Dict[str, Any]] = []
        for (pid, tid), label in sorted(lanes.items()):
            meta_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        events = meta_events + events
        out: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "spanTree": [root.to_dict() for root in self.roots],
        }
        if extra:
            out["otherData"] = extra
        return out

    def flame_summary(self, *, width: int = 40, max_levels: int = 12) -> str:
        """ASCII flame-style rollup: spans aggregated by name path.

        Sibling spans with the same name merge (count shown); the bar is
        each path's share of the root's total work.  Levels deeper than
        ``max_levels`` are elided with a ``...`` marker.
        """
        total_work = sum(r.cost.work for r in self.roots) or 1.0
        lines = [f"{'span':<44} {'count':>6} {'work':>12} {'work%':>6}  {'wall_ms':>9}"]

        def aggregate(spans: Sequence[Span]) -> List[Tuple[str, List[Span]]]:
            groups: Dict[str, List[Span]] = {}
            for s in spans:
                groups.setdefault(s.name, []).append(s)
            return list(groups.items())

        def emit(spans: Sequence[Span], indent: int) -> None:
            if indent >= max_levels:
                lines.append("  " * indent + "...")
                return
            for name, group in aggregate(spans):
                work = sum(s.cost.work for s in group)
                wall = sum(s.wall_seconds for s in group)
                share = work / total_work
                label = ("  " * indent + name)[:44]
                bar = "#" * max(0, round(share * width))
                lines.append(
                    f"{label:<44} {len(group):>6} {work:>12.0f} {share:>6.1%}  "
                    f"{wall * 1e3:>9.2f}  {bar}"
                )
                children = [c for s in group for c in s.children]
                if children:
                    emit(children, indent + 1)

        emit(self.roots, 0)
        return "\n".join(lines)


def write_trace(
    path: str,
    tracer: Tracer,
    *,
    total: Optional[Cost] = None,
    metrics: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a trace JSON file (Chrome-trace compatible, self-describing).

    The file is a Chrome trace object with ``traceEvents`` plus a full
    ``spanTree``, per-level breakdown, the machine's aggregate ``total``
    and any run ``metrics`` under ``otherData``.
    """
    extra: Dict[str, Any] = dict(meta or {})
    if total is not None:
        extra["total"] = {"depth": total.depth, "work": total.work}
    if metrics is not None:
        extra["metrics"] = metrics
    payload = tracer.to_chrome_trace(extra=extra)
    payload["levels"] = tracer.per_level_breakdown()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
