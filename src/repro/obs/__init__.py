"""Observability layer: tracing spans, metrics registry, exports.

The paper's claims are (depth, work) statements measured on the simulated
scan-vector machine; this subpackage makes those measurements *legible*.
It provides:

- :class:`~repro.obs.spans.Tracer` / :class:`~repro.obs.spans.Span` — a
  span tree recorded through ``Machine.span(name, **attrs)`` with exact
  per-region :class:`~repro.pvm.cost.Cost`, wall time and attributes
  (recursion level, subproblem size, punt flags), exportable as
  Chrome-trace JSON or an ASCII flame summary;
- :class:`~repro.obs.metrics.Metrics` — a counter/gauge/series registry
  that backs the per-algorithm stats objects and exports ``to_dict()``;
- :func:`~repro.obs.spans.write_trace` — one-call trace file writer used
  by ``repro trace`` and the ``--trace-out`` CLI flags.

Tracing is strictly passive: it never charges the machine ledger, and a
machine without a tracer records nothing (zero entries, identical costs).
"""

from .metrics import Metrics, MetricsView
from .spans import Span, Tracer, span_tree_from_dict, write_trace

__all__ = [
    "Metrics",
    "MetricsView",
    "Span",
    "Tracer",
    "span_tree_from_dict",
    "write_trace",
]
