"""Observability layer: tracing spans, metrics registry, exports.

The paper's claims are (depth, work) statements measured on the simulated
scan-vector machine; this subpackage makes those measurements *legible*.
It provides:

- :class:`~repro.obs.spans.Tracer` / :class:`~repro.obs.spans.Span` — a
  span tree recorded through ``Machine.span(name, **attrs)`` with exact
  per-region :class:`~repro.pvm.cost.Cost`, wall time and attributes
  (recursion level, subproblem size, punt flags), exportable as
  Chrome-trace JSON or an ASCII flame summary;
- :class:`~repro.obs.metrics.Metrics` — a counter/gauge/series registry
  that backs the per-algorithm stats objects and exports ``to_dict()``;
- :func:`~repro.obs.spans.write_trace` — one-call trace file writer used
  by ``repro trace`` and the ``--trace-out`` CLI flags;
- :mod:`~repro.obs.stitch` — grafts worker-process span trees under the
  master's ``parallel.subtree`` spans so a ``frontier-mp`` trace renders
  one Perfetto lane per worker;
- :mod:`~repro.obs.export` — telemetry sinks: JSONL event logs (schema at
  ``docs/telemetry_events.schema.json``) and Prometheus text exposition
  of the metrics registry;
- :mod:`~repro.obs.overhead` — self-benchmark of tracing overhead against
  the <5% wall-clock budget;
- :mod:`~repro.obs.rt` — request-time observability for the serving
  front-end: per-request :class:`~repro.obs.rt.RequestTimeline` records,
  the bounded :class:`~repro.obs.rt.FlightRecorder` behind the
  ``/debug/*`` endpoints, and the multi-window
  :class:`~repro.obs.rt.SLOTracker` (attainment + burn rates).

Tracing is strictly passive: it never charges the machine ledger, and a
machine without a tracer records nothing (zero entries, identical costs).
"""

from .export import (
    EVENT_SCHEMA,
    events_from_tracer,
    load_trace,
    metrics_to_prometheus,
    validate_event,
    write_events_jsonl,
)
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    Histogram,
    Metrics,
    MetricsView,
    log_linear_bounds,
)
from .rt import FlightRecorder, RequestTimeline, SLOTracker
from .spans import Span, Tracer, span_tree_from_dict, write_trace
from .stitch import graft_worker_trace, worker_spans

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_MS",
    "EVENT_SCHEMA",
    "FlightRecorder",
    "Histogram",
    "Metrics",
    "MetricsView",
    "RequestTimeline",
    "SLOTracker",
    "Span",
    "Tracer",
    "events_from_tracer",
    "graft_worker_trace",
    "load_trace",
    "log_linear_bounds",
    "metrics_to_prometheus",
    "span_tree_from_dict",
    "validate_event",
    "worker_spans",
    "write_events_jsonl",
    "write_trace",
]
