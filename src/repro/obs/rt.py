"""Runtime observability for the serving path: request timelines, a
flight recorder, and SLO burn-rate tracking.

Three pieces, all pure consumers of already-measured numbers — none of
them charges the (depth, work) ledger, and none of them touches request
*content*, so tracing on/off leaves responses byte-stable:

- :class:`RequestTimeline` — one request's life as a record: when it was
  admitted, how long it queued, which batch executed it (and how big
  that batch was), the execute wall time, the index version that
  answered, cache-hit status, and the final HTTP status.
- :class:`FlightRecorder` — a bounded ring of the last N timelines plus
  a slowest-K retention heap, so "what just happened" and "what were the
  worst requests" are both answerable from a live server
  (``GET /debug/requests`` / ``GET /debug/slow``) without logging every
  request.
- :class:`SLOTracker` — per-tenant rolling SLO attainment and
  multi-window burn rates (5m/1h by default) computed from time-binned
  histograms: each bin counts total/within-target/error requests, so
  attainment and error rate are exact over any whole-bin window, and a
  per-bin :class:`~repro.obs.metrics.Histogram` gives a rolling p95 the
  :class:`~repro.net.adaptive.AdaptiveWindow` can read instead of its
  private latency ring.

Burn-rate semantics follow the standard multi-window definition: with an
objective of ``obj`` (fraction of requests that must meet the latency
target), ``burn_rate = (1 - attainment) / (1 - obj)`` over the window —
1.0 means the error budget is being spent exactly at the sustainable
rate, >1 means faster.  The 5m window catches fast burns, the 1h window
filters noise; alerting on both high is the classic Google SRE recipe.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import Histogram, Metrics

__all__ = ["FlightRecorder", "RequestTimeline", "SLOTracker"]


@dataclass
class RequestTimeline:
    """One request's end-to-end timeline, as recorded by the server.

    All durations are milliseconds; ``admitted_at`` is a wall-clock epoch
    timestamp (``time.time()``).  Batch fields are ``None`` for requests
    that never rode the batcher (direct-execute paths, mutations,
    admission rejections).
    """

    request_id: str
    kind: str = ""
    tenant: Optional[str] = None
    status: int = 0
    admitted_at: float = 0.0
    queued_ms: Optional[float] = None
    execute_ms: Optional[float] = None
    total_ms: float = 0.0
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    index_version: Optional[int] = None
    cache_hit: Optional[bool] = None
    points: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class FlightRecorder:
    """Bounded retention of request timelines: last-N ring + slowest-K heap.

    ``record`` is O(log K) worst case and allocation-light, so it sits on
    the request hot path without moving the overhead budget.  ``recent``
    returns newest-first; ``slowest`` returns worst-first by ``total_ms``.
    """

    def __init__(self, capacity: int = 256, slow_k: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slow_k < 0:
            raise ValueError(f"slow_k must be >= 0, got {slow_k}")
        self.capacity = capacity
        self.slow_k = slow_k
        self._ring: Deque[RequestTimeline] = deque(maxlen=capacity)
        # min-heap of (total_ms, seq, timeline): the root is the *fastest*
        # retained entry, evicted first when something slower arrives.
        self._slow: List[Tuple[float, int, RequestTimeline]] = []
        self._seq = itertools.count()
        self.recorded = 0

    def record(self, timeline: RequestTimeline) -> None:
        self._ring.append(timeline)
        self.recorded += 1
        if self.slow_k == 0:
            return
        entry = (timeline.total_ms, next(self._seq), timeline)
        if len(self._slow) < self.slow_k:
            heapq.heappush(self._slow, entry)
        elif entry[0] > self._slow[0][0]:
            heapq.heapreplace(self._slow, entry)

    def recent(self, limit: Optional[int] = None) -> List[RequestTimeline]:
        """The most recent timelines, newest first."""
        out = list(self._ring)
        out.reverse()
        return out if limit is None else out[:limit]

    def slowest(self, limit: Optional[int] = None) -> List[RequestTimeline]:
        """The slowest retained timelines, worst first."""
        out = [t for _, _, t in sorted(self._slow, reverse=True)]
        return out if limit is None else out[:limit]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump: counts plus both retention sets."""
        return {
            "recorded": self.recorded,
            "capacity": self.capacity,
            "slow_k": self.slow_k,
            "recent": [t.to_dict() for t in self.recent()],
            "slowest": [t.to_dict() for t in self.slowest()],
        }

    def __len__(self) -> int:
        return len(self._ring)


@dataclass
class _Bin:
    """One time bin of SLO accounting."""

    index: int  # floor(now / bin_s) — absolute bin number
    total: int = 0
    fast: int = 0  # requests meeting the latency target
    errors: int = 0
    hist: Histogram = field(default_factory=Histogram)


class SLOTracker:
    """Rolling SLO attainment + multi-window burn rates for one tenant.

    ``record(latency_ms, ok)`` files each request into a time bin
    (``bin_s`` wide); ``attainment``/``burn_rate``/``error_rate`` fold
    the bins covering the requested window.  Windows are whole-bin, so
    numbers are exact counts, not decayed estimates.  ``p95_ms()``
    merges the bins of the shortest window and is cached per bin advance
    — cheap enough for the :class:`~repro.net.adaptive.AdaptiveWindow`
    to call on every window decision.

    When ``metrics``/``prefix`` are given, :meth:`export` publishes
    ``<prefix>.attainment_5m``-style gauges into the registry (the
    server calls it at scrape time, so gauges are fresh without paying
    the fold on every request).
    """

    def __init__(
        self,
        target_ms: float,
        *,
        objective: float = 0.95,
        error_objective: float = 0.999,
        windows_s: Sequence[float] = (300.0, 3600.0),
        bin_s: float = 5.0,
        metrics: Optional[Metrics] = None,
        prefix: str = "net.slo",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if target_ms <= 0:
            raise ValueError(f"target_ms must be positive, got {target_ms}")
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if not 0.0 < error_objective < 1.0:
            raise ValueError(
                f"error_objective must be in (0, 1), got {error_objective}"
            )
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        if not windows_s:
            raise ValueError("need at least one window")
        self.target_ms = target_ms
        self.objective = objective
        self.error_objective = error_objective
        self.windows_s = tuple(sorted(float(w) for w in windows_s))
        if self.windows_s[0] < bin_s:
            raise ValueError("smallest window must cover at least one bin")
        self.bin_s = bin_s
        self.metrics = metrics
        self.prefix = prefix
        self.clock = clock
        self.total = 0
        self.errors = 0
        self._bins: Deque[_Bin] = deque()
        self._max_bins = int(self.windows_s[-1] / bin_s) + 1
        self._p95_cache: Tuple[int, Optional[float]] = (-1, None)

    # -- recording -------------------------------------------------------

    def _bin(self) -> _Bin:
        idx = int(self.clock() / self.bin_s)
        if not self._bins or self._bins[-1].index != idx:
            self._bins.append(_Bin(index=idx))
            while len(self._bins) > self._max_bins:
                self._bins.popleft()
        return self._bins[-1]

    def record(self, latency_ms: float, ok: bool = True) -> None:
        """File one completed request: its latency and success flag."""
        b = self._bin()
        b.total += 1
        self.total += 1
        if not ok:
            b.errors += 1
            self.errors += 1
        elif latency_ms <= self.target_ms:
            # only successful responses can meet the latency SLO
            b.fast += 1
        b.hist.observe(latency_ms)

    # -- window folds ----------------------------------------------------

    def _window_bins(self, window_s: float) -> List[_Bin]:
        cutoff = int(self.clock() / self.bin_s) - int(window_s / self.bin_s)
        return [b for b in self._bins if b.index > cutoff]

    def _window_counts(self, window_s: float) -> Tuple[int, int, int]:
        total = fast = errors = 0
        for b in self._window_bins(window_s):
            total += b.total
            fast += b.fast
            errors += b.errors
        return total, fast, errors

    def attainment(self, window_s: Optional[float] = None) -> Optional[float]:
        """Fraction of requests in the window that met the latency target
        (``None`` when the window is empty)."""
        total, fast, _ = self._window_counts(window_s or self.windows_s[0])
        return fast / total if total else None

    def error_rate(self, window_s: Optional[float] = None) -> Optional[float]:
        total, _, errors = self._window_counts(window_s or self.windows_s[0])
        return errors / total if total else None

    def burn_rate(self, window_s: Optional[float] = None) -> Optional[float]:
        """Latency error-budget burn rate over the window: 1.0 = spending
        the budget exactly at the sustainable rate, >1 = faster."""
        att = self.attainment(window_s)
        if att is None:
            return None
        return (1.0 - att) / (1.0 - self.objective)

    def error_burn_rate(self, window_s: Optional[float] = None) -> Optional[float]:
        rate = self.error_rate(window_s)
        if rate is None:
            return None
        return rate / (1.0 - self.error_objective)

    def p95_ms(self) -> Optional[float]:
        """Rolling p95 over the shortest window, cached per bin advance."""
        idx = int(self.clock() / self.bin_s)
        if self._p95_cache[0] == idx:
            return self._p95_cache[1]
        merged: Optional[Histogram] = None
        for b in self._window_bins(self.windows_s[0]):
            if merged is None:
                merged = Histogram(b.hist.bounds)
            merged.merge(b.hist)
        value = merged.percentile(95) if merged is not None else None
        self._p95_cache = (idx, value)
        return value

    # -- export ----------------------------------------------------------

    @staticmethod
    def _window_tag(window_s: float) -> str:
        if window_s % 3600 == 0:
            return f"{int(window_s // 3600)}h"
        if window_s % 60 == 0:
            return f"{int(window_s // 60)}m"
        return f"{int(window_s)}s"

    def export(self) -> Dict[str, float]:
        """Publish per-window gauges into the registry (if bound) and
        return them.  Empty windows export nothing (absence over lies)."""
        out: Dict[str, float] = {
            f"{self.prefix}.target_ms": self.target_ms,
            f"{self.prefix}.objective": self.objective,
        }
        for window_s in self.windows_s:
            tag = self._window_tag(window_s)
            for name, value in (
                ("attainment", self.attainment(window_s)),
                ("burn_rate", self.burn_rate(window_s)),
                ("error_rate", self.error_rate(window_s)),
                ("error_burn_rate", self.error_burn_rate(window_s)),
            ):
                if value is not None:
                    out[f"{self.prefix}.{name}_{tag}"] = value
        if self.metrics is not None:
            for key, value in out.items():
                self.metrics.set_gauge(key, value)
        return out

    def summary(self) -> Dict[str, Any]:
        """JSON-ready snapshot for drain summaries and CLI output."""
        windows = {}
        for window_s in self.windows_s:
            total, fast, errors = self._window_counts(window_s)
            windows[self._window_tag(window_s)] = {
                "total": total,
                "attainment": fast / total if total else None,
                "burn_rate": (
                    (1.0 - fast / total) / (1.0 - self.objective) if total else None
                ),
                "error_rate": errors / total if total else None,
            }
        return {
            "target_ms": self.target_ms,
            "objective": self.objective,
            "error_objective": self.error_objective,
            "total": self.total,
            "errors": self.errors,
            "p95_ms": self.p95_ms(),
            "windows": windows,
        }
