"""Stable top-level facade: the repository's algorithms behind one door.

The subpackages expose every building block of the reproduction; this
module exposes the three things most users actually want, with consistent
names and signatures that the ``scripts/check_api_stability.py`` lint
pins against ``docs/api_surface.txt``:

- :func:`all_knn` — the exact all-k-nearest-neighbors problem, by any
  method (``"fast"`` = Section 6 sphere-separator DnC, ``"simple"`` =
  Section 5 hyperplane DnC, ``"query"`` = build the fast partition tree
  then re-answer every point through the Section 3 query machinery,
  ``"brute"`` = the all-pairs baseline), returning a uniform
  :class:`KNNResult`;
- :func:`build_index` — build once, query *and mutate* forever: a
  versioned :class:`Index` handle over
  :class:`~repro.core.online.MutableIndex` whose :meth:`Index.query`
  answers exact k-NN for *new* points, and whose
  :meth:`Index.insert` / :meth:`Index.delete` / :meth:`Index.commit`
  absorb point mutations into the existing partition tree (bit-identical
  to a from-scratch build — see ``docs/online_index.md``);
- :func:`run_traced` — :func:`all_knn` under the observability layer,
  returning ``(result, tracer)`` with the run's span tree;
- :func:`serve` — build once, *serve* forever: a micro-batching
  :class:`~repro.serve.batcher.Batcher` over a frozen
  :class:`~repro.serve.index.ServingIndex`, with optional LRU result
  caching and a multiprocess serving pool (see ``docs/serving.md``);
  :meth:`~repro.serve.batcher.Batcher.swap_index` hot-swaps it to a new
  :meth:`Index.snapshot` with zero downtime;
- :func:`net_serve` — the serving stack behind a socket: builds mutable
  indexes for one or more tenants and returns an unstarted
  :class:`~repro.net.server.NetServer` (asyncio HTTP front-end with
  admission control, adaptive batching and graceful drain — see
  ``docs/networking.md``).

:func:`all_knn`, :func:`~repro.core.query_points.knn_query` and
:func:`serve` remain thin wrappers over the same machinery the
:class:`Index` handle drives.  The pre-1.6 ``KNNIndex`` name is a
deprecated alias of :class:`Index` (module ``__getattr__`` shim).

Everything here is re-exported from the package root, so the quickstart
is simply::

    import repro
    result = repro.all_knn(points, k=2, method="fast")
    index = repro.build_index(points, k=2)
    idx, sq = index.query(new_points)
    index.insert(more_points); index.delete([3]); index.commit()
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .baselines import brute_force_knn
from .core import (
    DTYPES,
    ENGINES,
    KERNEL_BACKENDS,
    CommitInfo,
    FastDnCConfig,
    FastDnCResult,
    MutableIndex,
    SimpleDnCConfig,
    SimpleDnCResult,
    KNeighborhoodSystem,
    NeighborhoodQueryStructure,
    PartitionNode,
    knn_graph_edges,
    knn_query,
    parallel_nearest_neighborhood,
    simple_parallel_dnc,
)
from .geometry.points import as_points
from .kernels import use_backend
from .kernels.layout import FlatTree
from .obs import Tracer
from .pvm import Cost, Machine
from .serve import Batcher, ResultCache, ServingIndex, ServingPool

__all__ = [
    "KNNResult",
    "Index",
    "KNNIndex",
    "CommitInfo",
    "ServingIndex",
    "Batcher",
    "all_knn",
    "build_index",
    "knn_query",
    "net_serve",
    "run_traced",
    "serve",
    "METHODS",
    "ENGINES",
    "KERNEL_BACKENDS",
    "DTYPES",
]

METHODS = ("fast", "simple", "query", "brute")

ConfigLike = Union[FastDnCConfig, SimpleDnCConfig, None]


@dataclass
class KNNResult:
    """Uniform output bundle of :func:`all_knn`, whatever the method.

    ``indices``/``sq_dists`` are the (n, k) neighbor arrays;
    ``system`` is the full :class:`~repro.core.neighborhood.KNeighborhoodSystem`;
    ``machine`` holds the (depth, work) ledger of the run; ``tree`` is the
    partition tree when the method builds one (``None`` for ``"brute"``);
    ``stats`` is the per-algorithm stats view (``None`` for ``"brute"``).
    """

    system: KNeighborhoodSystem
    machine: Machine
    method: str
    tree: Optional[PartitionNode] = None
    stats: Optional[object] = None
    k: int = 1

    @property
    def indices(self) -> np.ndarray:
        """(n, k) neighbor indices, sorted by distance then index."""
        return self.system.neighbor_indices

    @property
    def sq_dists(self) -> np.ndarray:
        """(n, k) squared neighbor distances."""
        return self.system.neighbor_sq_dists

    @property
    def cost(self) -> Cost:
        """The run's aggregate (depth, work) cost ledger."""
        return self.machine.total

    def edges(self) -> np.ndarray:
        """The k-NN graph as a deduplicated undirected (E, 2) edge list."""
        return knn_graph_edges(self.system)


class Index:
    """The first-class index handle: versioned, queryable, *mutable*.

    Produced by :func:`build_index`.  Wraps a
    :class:`~repro.core.online.MutableIndex`: the partition tree and
    exact k-neighborhood system over the current point set, plus an
    update loop — :meth:`insert` / :meth:`delete` buffer mutations,
    :meth:`commit` absorbs them into the tree (rebuilding only touched
    subtrees, punting to a full rebuild past the churn threshold) and
    bumps :attr:`version`.  Every committed state is bit-identical to a
    from-scratch build of the same point set (see
    ``docs/online_index.md``), so queries between commits are exact by
    construction.

    ``query`` answers exact k-nearest data points for arbitrary query
    rows by descending the partition tree and marching the candidate
    balls (Lemma 6.3 reachability), exactly as
    :func:`repro.core.query_points.knn_query` does.  :meth:`snapshot`
    freezes the current version as an immutable
    :class:`~repro.serve.index.ServingIndex` for the serving layer
    (hot-swappable via :meth:`~repro.serve.batcher.Batcher.swap_index`).
    """

    def __init__(self, mutable: MutableIndex) -> None:
        self.mutable = mutable
        self._structure: Optional[NeighborhoodQueryStructure] = None
        self._structure_version: Optional[int] = None
        self._layout: Optional[FlatTree] = None
        self._layout_version: Optional[int] = None

    # -- identity ----------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        """(n, d) points of the current committed version."""
        return self.mutable.points

    @property
    def tree(self) -> PartitionNode:
        """The current version's partition tree."""
        return self.mutable.tree

    @property
    def k(self) -> int:
        return self.mutable.k

    @property
    def machine(self) -> Machine:
        """The ledger of the *latest* build/commit (fresh per commit)."""
        return self.mutable.machine

    @property
    def system(self) -> KNeighborhoodSystem:
        """The exact k-neighborhood system of the current version."""
        return self.mutable.system

    @property
    def version(self) -> int:
        """Monotone commit counter: 0 after build, +1 per :meth:`commit`."""
        return self.mutable.version

    @property
    def pending(self) -> int:
        """Buffered mutations (inserts + deletes) not yet committed."""
        ins, dels = self.mutable.pending
        return ins + dels

    @property
    def cost(self) -> Cost:
        """(depth, work) ledger of the latest build/commit."""
        return self.mutable.cost

    # -- queries -----------------------------------------------------------

    def query(self, queries: np.ndarray, k: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest data points per query row.

        Parameters
        ----------
        queries:
            (q, d) query points (need not be data points).
        k:
            Neighbors per query; defaults to the ``k`` the index was
            built with.

        Returns
        -------
        (indices, sq_dists):
            Each (q, k), sorted ascending by (distance, index).
        """
        kk = self.k if k is None else k
        # cache the contiguous descent layout per committed version —
        # commits can replace the tree, so a stale layout must never
        # answer for a newer version
        if self._layout_version != self.version:
            self._layout = FlatTree.from_tree(self.tree)
            self._layout_version = self.version
        return knn_query(self.tree, self.points, queries, kk, layout=self._layout)

    def covering(self, point: np.ndarray) -> np.ndarray:
        """Data-point ids whose k-NN ball strictly contains ``point``.

        Lazily builds the Section 3 neighborhood query structure over the
        current version's k-NN ball system; a :meth:`commit` invalidates
        the cached structure (point ids and balls may have changed).
        """
        if self._structure is None or self._structure_version != self.version:
            self._structure = NeighborhoodQueryStructure(
                self.system.to_ball_system(), machine=None
            )
            self._structure_version = self.version
        return self._structure.query(point)

    # -- mutation ----------------------------------------------------------

    def insert(self, points: np.ndarray) -> int:
        """Buffer new points for the next :meth:`commit`; returns how
        many inserts are now pending."""
        return self.mutable.insert(points)

    def delete(self, ids: Sequence[int]) -> int:
        """Buffer deletions (ids of the current version) for the next
        :meth:`commit`; returns how many deletes are now pending."""
        return self.mutable.delete(ids)

    def discard_pending(self) -> None:
        """Drop every buffered mutation without committing."""
        self.mutable.discard_pending()

    def commit(self) -> CommitInfo:
        """Apply buffered mutations and bump :attr:`version`.

        Absorbs the batch into the existing tree when the churn fraction
        is at most the index's ``churn_threshold`` (rebuilding only
        subtrees whose content changed), else punts to a full rebuild —
        either way the committed state is bit-identical to a from-scratch
        build of the new point set.  Returns the commit's
        :class:`~repro.core.online.CommitInfo` (a no-op commit returns
        with ``noop=True`` and does not bump the version).
        """
        return self.mutable.commit()

    def snapshot(self, *, with_structure: bool = False) -> ServingIndex:
        """Freeze the current version as an immutable serving snapshot.

        The returned :class:`~repro.serve.index.ServingIndex` carries
        :attr:`version`, shares (copy-on-write) the current arrays, and
        is unaffected by later mutations — publish it to a
        :class:`~repro.serve.registry.SnapshotRegistry` and hot-swap
        serving stacks to it with zero downtime.
        """
        return self.mutable.snapshot(with_structure=with_structure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n, d = self.points.shape
        return (
            f"Index(n={n}, d={d}, k={self.k}, version={self.version}, "
            f"pending={self.pending})"
        )


def __getattr__(name: str):
    # Deprecated aliases kept importable without polluting the namespace.
    if name == "KNNIndex":
        warnings.warn(
            "KNNIndex is deprecated since 1.6.0; build_index() now returns the "
            "versioned, mutable repro.api.Index (same query/covering surface). "
            "Use Index instead.",
            DeprecationWarning,
            stacklevel=2,
        )
        return Index
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _resolve_config(
    method: str,
    config: ConfigLike,
    engine: Optional[str],
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    dtype: Optional[str] = None,
) -> ConfigLike:
    if engine is not None and engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if kernels is not None and kernels != "auto" and kernels not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {kernels!r}; choose from "
            f"{KERNEL_BACKENDS} or 'auto'"
        )
    if dtype is not None and dtype not in DTYPES:
        raise ValueError(f"unknown dtype {dtype!r}; choose from {DTYPES}")
    if config is None:
        if method in ("fast", "query"):
            config = FastDnCConfig()
        elif method == "simple":
            config = SimpleDnCConfig()
    if config is not None and engine is not None and config.engine != engine:
        config = replace(config, engine=engine)
    if config is not None and workers is not None and config.workers != workers:
        config = replace(config, workers=workers)
    if config is not None and kernels is not None and config.kernels != kernels:
        config = replace(config, kernels=kernels)
    if config is not None and dtype is not None and config.dtype != dtype:
        config = replace(config, dtype=dtype)
    return config


def all_knn(
    points: np.ndarray,
    k: int = 1,
    *,
    method: str = "fast",
    config: ConfigLike = None,
    machine: Optional[Machine] = None,
    seed: object = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    dtype: Optional[str] = None,
) -> KNNResult:
    """Exact all-k-nearest-neighbors of ``points``, as a :class:`KNNResult`.

    Parameters
    ----------
    points:
        (n, d) input points.
    k:
        Neighbors per point, ``1 <= k < n``.
    method:
        ``"fast"`` (Section 6 sphere-separator DnC, the O(log n)
        headline), ``"simple"`` (Section 5 hyperplane DnC, O(log^2 n)),
        ``"query"`` (build the fast partition tree, then answer every
        point through the tree-query path — exercises the Section 3
        machinery end to end), or ``"brute"`` (all-pairs baseline).
    config:
        Method config (:class:`~repro.core.fast_dnc.FastDnCConfig` for
        ``fast``/``query``, :class:`~repro.core.simple_dnc.SimpleDnCConfig`
        for ``simple``); defaults are the paper's parameters.
    machine:
        Cost ledger to charge; a fresh unit-scan machine by default.
    seed:
        RNG seed; ``None`` falls back to ``config.seed``.
    engine:
        Execution engine for the DnC methods: ``"recursive"``
        (node-at-a-time), ``"frontier"`` (level-synchronous batched) or
        ``"frontier-mp"`` (frontier batches on worker processes) — same
        output and ledger, different wall-clock; see ``docs/engines.md``.
        ``None`` keeps ``config.engine``; ignored by ``"brute"``.
    workers:
        Worker-process count for ``"frontier-mp"`` (``None`` = one per
        CPU); ignored by the serial engines.
    kernels:
        Hot-path kernel backend: ``"numpy"``, ``"numba"`` or ``"auto"``
        — bit-identical results, different wall-clock (see
        ``docs/kernels.md``).  ``None`` keeps ``config.kernels``.
    dtype:
        Point storage dtype, ``"float64"`` or ``"float32"``; distance
        arithmetic always runs in float64 on the stored values.  ``None``
        keeps ``config.dtype``.

    Returns
    -------
    KNNResult
        With exact neighbor lists (validated against brute force in the
        test suite), the cost ledger, and method stats.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    pts = as_points(points, min_points=1, dtype=None)
    if machine is None:
        machine = Machine()
    config = _resolve_config(method, config, engine, workers, kernels, dtype)
    if method == "fast":
        res: Union[FastDnCResult, SimpleDnCResult] = parallel_nearest_neighborhood(
            pts, k, machine=machine, seed=seed, config=config
        )
        return KNNResult(system=res.system, machine=machine, method=method,
                         tree=res.tree, stats=res.stats, k=k)
    if method == "simple":
        res = simple_parallel_dnc(pts, k, machine=machine, seed=seed, config=config)
        return KNNResult(system=res.system, machine=machine, method=method,
                         tree=res.tree, stats=res.stats, k=k)
    if method == "brute":
        # brute has no config object: apply the dtype/kernels knobs here
        if dtype == "float32":
            pts = np.ascontiguousarray(pts, dtype=np.float32)
        with use_backend(kernels if kernels is not None else "auto"):
            system = brute_force_knn(pts, k, machine=machine)
        return KNNResult(system=system, machine=machine, method=method, k=k)
    # method == "query": build the fast tree, then re-answer every point
    # through the partition-tree query path (self-matches dropped).
    res = parallel_nearest_neighborhood(pts, k, machine=machine, seed=seed, config=config)
    qpts = res.system.points  # the build's storage dtype, not the input's
    with machine.span("api.requery", n=int(qpts.shape[0]), k=k):
        with use_backend(config.kernels):
            idx, sq = knn_query(res.tree, qpts, qpts, min(k + 1, qpts.shape[0]))
    n = qpts.shape[0]
    out_idx = np.full((n, k), -1, dtype=np.int64)
    out_sq = np.full((n, k), np.inf)
    for i in range(n):
        keep = idx[i] != i
        ids = idx[i][keep][:k]
        out_idx[i, : ids.shape[0]] = ids
        out_sq[i, : ids.shape[0]] = sq[i][keep][: ids.shape[0]]
    system = KNeighborhoodSystem(qpts, k, out_idx, out_sq)
    return KNNResult(system=system, machine=machine, method=method,
                     tree=res.tree, stats=res.stats, k=k)


def build_index(
    points: np.ndarray,
    k: int = 1,
    *,
    config: Optional[FastDnCConfig] = None,
    machine: Optional[Machine] = None,
    seed: object = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    dtype: Optional[str] = None,
    churn_threshold: float = 0.05,
    snapshot_min_size: Optional[int] = None,
) -> Index:
    """Build a versioned, mutable exact k-NN index over ``points``.

    Runs the fast algorithm once (charging ``machine``) and returns an
    :class:`Index` handle: :meth:`Index.query` serves exact k-NN for new
    points, :meth:`Index.insert` / :meth:`Index.delete` /
    :meth:`Index.commit` absorb mutations into the existing tree, and
    :meth:`Index.snapshot` freezes any version for the serving layer.

    ``engine``/``workers`` are validated as in :func:`all_knn` but the
    build always runs through the online recursive path — its per-node
    records are what later commits reuse.  The *answers* are engine-
    independent (exact k-NN is unique up to the canonical (distance,
    index) order), so this changes wall-clock only, never a result.

    ``churn_threshold`` is the mutation fraction above which a commit
    punts to a full rebuild; ``snapshot_min_size`` tunes the granularity
    of reusable subtree records (see ``docs/online_index.md``).
    ``kernels`` selects the hot-path backend as in :func:`all_knn`;
    ``dtype`` must stay ``"float64"`` here — the online absorb machinery
    is float64-only (``all_knn`` and ``ServingIndex.build`` accept
    ``"float32"``).

    .. versionchanged:: 1.6.0
       Returns :class:`Index` (mutable, versioned) instead of the
       query-only ``KNNIndex``; the old name is a deprecated alias and
       the query/covering surface is unchanged.
    """
    if dtype == "float32" or (dtype is None and config is not None
                              and config.dtype == "float32"):
        # the online index's absorb machinery (content hashing, mixed
        # insert vstacks) is float64-only; float32 storage is supported
        # by all_knn and ServingIndex.build
        raise ValueError(
            "build_index supports dtype='float64' only; use all_knn or "
            "ServingIndex.build for float32 storage"
        )
    pts = as_points(points, min_points=1, dtype=None)
    cfg = _resolve_config("fast", config, engine, workers, kernels, dtype)
    mutable = MutableIndex(
        pts,
        k,
        seed=seed if seed is not None else cfg.seed,
        config=cfg,
        churn_threshold=churn_threshold,
        snapshot_min_size=snapshot_min_size,
        machine=machine,
    )
    return Index(mutable)


def run_traced(
    points: np.ndarray,
    k: int = 1,
    *,
    method: str = "fast",
    config: ConfigLike = None,
    machine: Optional[Machine] = None,
    seed: object = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    dtype: Optional[str] = None,
    events_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> Tuple[KNNResult, Tracer]:
    """:func:`all_knn` under tracing; returns ``(result, tracer)``.

    A fresh :class:`~repro.obs.spans.Tracer` is attached to the machine
    (replacing any existing one), the whole run is wrapped in a root
    ``"run"`` span, and the tracer is verified against the ledger: the
    root span's (depth, work) equals ``result.cost`` exactly, as does the
    per-level exclusive-work decomposition.  ``engine``/``workers``
    select the execution engine as in :func:`all_knn` (the frontier
    engines emit per-level ``frontier.level`` spans instead of per-node
    spans; ``frontier-mp`` additionally emits one ``parallel.subtree``
    span per shipped subtree with the worker's own span tree grafted
    underneath).

    Telemetry sinks: ``events_out`` writes the run's JSONL event log and
    ``metrics_out`` the Prometheus exposition of its metrics registry
    (see :mod:`repro.obs.export`).  Either falls back to the config's
    field of the same name; ``None`` writes nothing.
    """
    if machine is None:
        machine = Machine()
    pre = machine.total
    tracer = machine.enable_tracing()
    with machine.span("run", method=method, n=int(np.asarray(points).shape[0]), k=k):
        result = all_knn(
            points, k, method=method, config=config, machine=machine, seed=seed,
            engine=engine, workers=workers, kernels=kernels, dtype=dtype,
        )
    if pre.depth == 0 and pre.work == 0:
        # fresh ledger: the root span must reproduce it exactly
        tracer.check_against(machine.total)
    if events_out is None and config is not None:
        events_out = getattr(config, "events_out", None)
    if metrics_out is None and config is not None:
        metrics_out = getattr(config, "metrics_out", None)
    if events_out is not None:
        from .obs.export import write_events_jsonl

        write_events_jsonl(events_out, tracer)
    if metrics_out is not None:
        with open(metrics_out, "w") as fh:
            fh.write(machine.metrics.to_prometheus())
    return result, tracer


def serve(
    points: np.ndarray,
    k: int = 1,
    *,
    kind: str = "knn",
    config: Optional[FastDnCConfig] = None,
    machine: Optional[Machine] = None,
    seed: object = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    dtype: Optional[str] = None,
    serve_workers: Optional[int] = None,
    max_batch: int = 256,
    max_wait_ms: Optional[float] = None,
    cache_size: int = 1024,
    cache_decimals: Optional[int] = None,
) -> Batcher:
    """Build a serving stack over ``points``: index → cache → batcher.

    Runs the offline build once (the fast algorithm, via
    ``engine``/``workers`` exactly as in :func:`build_index`), freezes it
    as a :class:`~repro.serve.index.ServingIndex`, and returns a
    :class:`~repro.serve.batcher.Batcher` accepting single-point requests
    of the given ``kind``:

    - ``"knn"``: exact k nearest data points per query;
    - ``"covering"``: data points whose k-NN ball contains the query
      (the Section-3 structure, built eagerly for this kind).

    ``serve_workers`` (when given) fans batches across a
    :class:`~repro.serve.mp.ServingPool` of worker processes serving from
    one shared-memory snapshot; the batcher owns the pool and shuts it
    down on ``close()``.  ``cache_size=0`` disables the LRU result
    cache; ``cache_decimals`` quantizes cache keys (exact by default).
    Every knob changes only wall-clock, never an answer — serving is
    bit-identical to the per-point query paths.  ``machine`` receives
    ``serve.*`` metrics and (when traced) ``serve.batch`` spans.
    """
    index = ServingIndex.build(
        points,
        k,
        config=config,
        machine=machine,
        seed=seed,
        engine=engine,
        workers=workers,
        kernels=kernels,
        dtype=dtype,
        with_structure=(kind == "covering"),
    )
    cache = ResultCache(cache_size, cache_decimals) if cache_size > 0 else None
    pool = (
        ServingPool(index, serve_workers, machine=machine)
        if serve_workers is not None
        else None
    )
    return Batcher(
        index,
        kind=kind,
        k=k,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        cache=cache,
        machine=machine,
        pool=pool,
    )


def net_serve(
    points: np.ndarray,
    k: int = 1,
    *,
    net: Optional["object"] = None,
    tenants: Optional[dict] = None,
    config: Optional[FastDnCConfig] = None,
    machine: Optional[Machine] = None,
    seed: object = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    kernels: Optional[str] = None,
    churn_threshold: float = 0.05,
):
    """Build the full network serving stack; returns an unstarted server.

    Builds a mutable index over ``points`` (exactly as
    :func:`build_index`) for the ``"default"`` tenant — plus one index
    per entry of ``tenants`` (``{name: points}``, same ``k`` and build
    knobs) — and wires them behind a
    :class:`~repro.net.server.NetServer`: admission control,
    load-adaptive micro-batch windows, per-tenant caches and registries,
    graceful drain.  Every front-end knob lives on ``net`` (a
    :class:`~repro.net.config.NetConfig`; defaults when ``None``).

    The server is returned *unstarted* so the caller picks the loop:

    - ``asyncio.run`` / an existing loop: ``await server.start()`` then
      ``await server.serve_forever()`` (wire SIGTERM via
      :func:`repro.net.install_signal_handlers`);
    - a background thread (tests, benchmarks):
      ``repro.net.ServerThread(server).start()``.

    ``machine`` charges the default tenant's build and carries its
    ``serve.*`` metrics; ``/metrics`` merges it with the server's
    ``net.*`` registry and every other tenant's (prefixed) stats.  See
    ``docs/networking.md``.
    """
    from .net import NetConfig, NetServer, TenantManager

    net_cfg = net if net is not None else NetConfig()
    if not isinstance(net_cfg, NetConfig):
        raise TypeError(f"net must be a NetConfig, got {type(net_cfg).__name__}")
    manager = TenantManager(config=net_cfg)
    datasets = {"default": points}
    for name, pts in (tenants or {}).items():
        if name in datasets:
            raise ValueError(f"duplicate tenant name {name!r}")
        datasets[name] = pts
    for name, pts in datasets.items():
        tenant_machine = machine if name == "default" else None
        index = build_index(
            pts,
            k,
            config=config,
            machine=tenant_machine,
            seed=seed,
            engine=engine,
            workers=workers,
            kernels=kernels,
            churn_threshold=churn_threshold,
        )
        manager.add(name, index.mutable, machine=tenant_machine)
    return NetServer(manager, config=net_cfg)
