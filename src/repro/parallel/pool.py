"""Persistent worker-process pool for the multiprocess frontier engine.

One pool serves one engine run: the master spawns ``workers`` processes
up front (``fork`` where the platform offers it, else ``spawn``), seeds
each with the run's :func:`~repro.parallel.kernels.init_run` payload, and
then drives named kernel tasks over duplex pipes.  The protocol is
deliberately tiny — one explicitly pickled frame per message, so the
master can meter dispatch and result traffic byte-for-byte:

- master sends ``pickle((kernel_name, payload))``; worker replies
  ``pickle(("ok", result, elapsed_seconds))`` or
  ``pickle(("err", traceback_text))``;
- ``(_EXIT, None)`` asks the worker to return from its loop.

Remote exceptions re-raise in the master as :class:`WorkerError` carrying
the worker's formatted traceback.  Two dispatch shapes exist:
:meth:`WorkerPool.run_tasks` (waved, one task in flight per worker —
what the serving pool uses) and :meth:`WorkerPool.run_assigned` (the
coarse engine's shape: every task is queued to its planned worker up
front and results are collected out-of-order as workers finish, so a
fast worker never waits on a slow one's pipe).

Accounting invariants the utilization metric relies on:

- ``busy_seconds[w]`` accumulates the *worker-measured* kernel seconds
  of each **completed** task exactly once, at collection time.  Failed
  tasks, exit messages and close-time flushes never touch it — an
  earlier revision also counted the final flush window when a worker
  exited mid-dispatch, double-charging the last task; utilization could
  then exceed 1.0 on a saturated pool (the tests pin ``≤ 1.0`` now).
- ``dispatch_window()`` is the ``(first_submit, last_complete)`` wall
  interval of completed work — the honest utilization denominator.
- ``dispatch_bytes``/``result_bytes`` and ``dispatch_seconds``/
  ``collect_seconds`` meter the serialize+send / receive+deserialize
  halves of the protocol so the engine can attribute fan-out overhead
  instead of guessing.

A ``weakref.finalize`` terminates any still-alive children if a pool is
dropped without :meth:`WorkerPool.close` — the suite's leak test relies
on no code path orphaning a process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["WorkerPool", "WorkerError", "TaskResult", "resolve_workers"]


@dataclass
class TaskResult:
    """One completed kernel task.

    ``elapsed`` is the worker-measured kernel seconds; ``submitted`` /
    ``completed`` are master-side absolute ``time.perf_counter``
    readings taken at dispatch and at collection, so the master can
    place the task on a wall-clock timeline (and compute utilization
    over the span of dispatched work rather than pool lifetime).
    """

    result: Any
    worker: int
    elapsed: float
    submitted: float
    completed: float

_EXIT = "__exit__"

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


class WorkerError(RuntimeError):
    """A kernel raised (or a worker died) in a worker process."""


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a config ``workers`` value: ``None`` means one per CPU."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return int(workers)
    return os.cpu_count() or 1


def _worker_main(conn) -> None:
    """Worker loop: dispatch kernel tasks until told to exit."""
    from . import kernels

    while True:
        try:
            name, payload = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            break
        if name == _EXIT:
            break
        t0 = time.perf_counter()
        try:
            result = kernels.KERNELS[name](payload)
        except BaseException:
            try:
                conn.send_bytes(
                    pickle.dumps(("err", traceback.format_exc()), _PICKLE_PROTO)
                )
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send_bytes(
                pickle.dumps(
                    ("ok", result, time.perf_counter() - t0), _PICKLE_PROTO
                )
            )
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _terminate(procs) -> None:
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=2.0)


class WorkerPool:
    """A fixed set of worker processes executing named kernels."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self.workers = int(workers)
        self.start_method = start_method
        self._conns = []
        self._procs = []
        self.busy_seconds = [0.0] * self.workers
        self.tasks_done = 0
        self.dispatch_bytes = 0
        self.result_bytes = 0
        self.dispatch_seconds = 0.0
        self.collect_seconds = 0.0
        self._first_submit: Optional[float] = None
        self._last_complete: Optional[float] = None
        self._closed = False
        for _ in range(self.workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(self, _terminate, list(self._procs))

    # -- task protocol ---------------------------------------------------

    def _submit(self, worker: int, name: str, payload: Any) -> float:
        t0 = time.perf_counter()
        buf = pickle.dumps((name, payload), _PICKLE_PROTO)
        self._conns[worker].send_bytes(buf)
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = t0
        self.dispatch_bytes += len(buf)
        self.dispatch_seconds += now - t0
        return t0

    def _collect(self, worker: int, name: str) -> Tuple[Any, float]:
        """Receive one reply from ``worker``; raises on kernel error.

        Busy time is credited here — and only here — exactly once per
        *successful* task: the worker-measured kernel seconds.  Errors
        and flushes contribute nothing, so utilization can never be
        inflated by a worker that exits mid-dispatch.
        """
        try:
            buf = self._conns[worker].recv_bytes()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"worker {worker} died while running {name!r}"
            ) from exc
        t0 = time.perf_counter()
        reply = pickle.loads(buf)
        self.result_bytes += len(buf)
        self.collect_seconds += time.perf_counter() - t0
        if reply[0] == "err":
            raise WorkerError(
                f"kernel {name!r} failed on worker {worker}:\n{reply[1]}"
            )
        _, result, elapsed = reply
        self._last_complete = time.perf_counter()
        self.busy_seconds[worker] += float(elapsed)
        self.tasks_done += 1
        return result, float(elapsed)

    def dispatch_window(self) -> Optional[Tuple[float, float]]:
        """Absolute ``(first_submit, last_complete)`` clock readings of
        the work dispatched so far, or ``None`` before any dispatch.

        This is the denominator basis for honest utilization: a pool
        that outlives its run (or was spawned long before the first
        task) must not dilute busy time with idle pool lifetime.
        """
        if self._first_submit is None or self._last_complete is None:
            return None
        return self._first_submit, self._last_complete

    def run_tasks(self, name: str, payloads: Sequence[Any]) -> List[TaskResult]:
        """Run one kernel per payload, payload ``i`` on worker ``i % W``
        (waved so at most one task is in flight per worker), returning
        :class:`TaskResult` records in payload order."""
        out: List[TaskResult] = []
        for lo in range(0, len(payloads), self.workers):
            wave = payloads[lo : lo + self.workers]
            submits = [
                self._submit(w, name, payload) for w, payload in enumerate(wave)
            ]
            for w in range(len(wave)):
                result, elapsed = self._collect(w, name)
                out.append(
                    TaskResult(
                        result=result,
                        worker=w,
                        elapsed=elapsed,
                        submitted=submits[w],
                        completed=time.perf_counter(),
                    )
                )
        return out

    def run_assigned(
        self, name: str, payloads: Sequence[Any], assignment: Sequence[int]
    ) -> List[TaskResult]:
        """Run ``payloads[i]`` on worker ``assignment[i]``, pipelined.

        Every task is written to its worker's pipe up front (workers
        drain their queue in order), and replies are collected
        **out-of-order** as workers finish — a worker with a light queue
        never blocks on a heavy one.  Returns results in payload order.

        If any kernel fails, the remaining outstanding replies are
        drained first (so the pool stays usable) and the first failure
        re-raises as :class:`WorkerError`.
        """
        if len(payloads) != len(assignment):
            raise ValueError(
                f"{len(payloads)} payloads vs {len(assignment)} assignments"
            )
        out: List[Optional[TaskResult]] = [None] * len(payloads)
        queues: Dict[int, List[int]] = {}
        submits: List[float] = [0.0] * len(payloads)
        for i, worker in enumerate(assignment):
            w = int(worker)
            if not 0 <= w < self.workers:
                raise ValueError(f"assignment[{i}]={w} outside pool of {self.workers}")
            queues.setdefault(w, []).append(i)
            submits[i] = self._submit(w, name, payloads[i])
        conn_to_worker = {id(self._conns[w]): w for w in queues}
        pending = {w: list(ids) for w, ids in queues.items()}
        first_error: Optional[WorkerError] = None
        while pending:
            ready = _conn_wait([self._conns[w] for w in pending])
            for conn in ready:
                w = conn_to_worker[id(conn)]
                i = pending[w].pop(0)
                if not pending[w]:
                    del pending[w]
                try:
                    result, elapsed = self._collect(w, name)
                except WorkerError as exc:
                    if first_error is None:
                        first_error = exc
                    continue
                out[i] = TaskResult(
                    result=result,
                    worker=w,
                    elapsed=elapsed,
                    submitted=submits[i],
                    completed=time.perf_counter(),
                )
        if first_error is not None:
            raise first_error
        return out  # type: ignore[return-value]

    def broadcast(self, name: str, payload: Any) -> List[Any]:
        """Run one kernel with the same payload on every worker."""
        for w in range(self.workers):
            self._submit(w, name, payload)
        return [self._collect(w, name)[0] for w in range(self.workers)]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Ask every worker to exit; escalate to terminate on timeout."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(pickle.dumps((_EXIT, None), _PICKLE_PROTO))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        _terminate(self._procs)
        for conn in self._conns:
            conn.close()
        self._finalizer.detach()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
