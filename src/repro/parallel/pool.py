"""Persistent worker-process pool for the multiprocess frontier engine.

One pool serves one engine run: the master spawns ``workers`` processes
up front (``fork`` where the platform offers it, else ``spawn``), seeds
each with the run's :func:`~repro.parallel.kernels.init_run` payload, and
then drives named kernel tasks over duplex pipes.  The protocol is
deliberately tiny:

- master sends ``(kernel_name, payload)``; worker replies
  ``("ok", result, elapsed_seconds)`` or ``("err", traceback_text)``;
- ``(_EXIT, None)`` asks the worker to return from its loop.

Remote exceptions re-raise in the master as :class:`WorkerError` carrying
the worker's formatted traceback.  The pool tracks per-worker busy time
(worker-measured kernel seconds) so the engine can report utilization,
and a ``weakref.finalize`` terminates any still-alive children if a pool
is dropped without :meth:`WorkerPool.close` — the suite's leak test
relies on no code path orphaning a process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import weakref
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["WorkerPool", "WorkerError", "resolve_workers"]

_EXIT = "__exit__"


class WorkerError(RuntimeError):
    """A kernel raised (or a worker died) in a worker process."""


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a config ``workers`` value: ``None`` means one per CPU."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return int(workers)
    return os.cpu_count() or 1


def _worker_main(conn) -> None:
    """Worker loop: dispatch kernel tasks until told to exit."""
    from . import kernels

    while True:
        try:
            name, payload = conn.recv()
        except (EOFError, OSError):
            break
        if name == _EXIT:
            break
        t0 = time.perf_counter()
        try:
            result = kernels.KERNELS[name](payload)
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", result, time.perf_counter() - t0))
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _terminate(procs) -> None:
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=2.0)


class WorkerPool:
    """A fixed set of worker processes executing named kernels."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self.workers = int(workers)
        self.start_method = start_method
        self._conns = []
        self._procs = []
        self.busy_seconds = [0.0] * self.workers
        self.tasks_done = 0
        self._closed = False
        for _ in range(self.workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(self, _terminate, list(self._procs))

    # -- task protocol ---------------------------------------------------

    def _submit(self, worker: int, name: str, payload: Any) -> None:
        self._conns[worker].send((name, payload))

    def _collect(self, worker: int, name: str) -> Any:
        try:
            reply = self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"worker {worker} died while running {name!r}"
            ) from exc
        if reply[0] == "err":
            raise WorkerError(
                f"kernel {name!r} failed on worker {worker}:\n{reply[1]}"
            )
        _, result, elapsed = reply
        self.busy_seconds[worker] += float(elapsed)
        self.tasks_done += 1
        return result

    def run_tasks(
        self, name: str, payloads: Sequence[Any]
    ) -> List[Tuple[Any, int, float]]:
        """Run one kernel per payload, payload ``i`` on worker ``i % W``
        (waved so at most one task is in flight per worker), returning
        ``(result, worker, elapsed_seconds)`` tuples in payload order."""
        out: List[Tuple[Any, int, float]] = []
        for lo in range(0, len(payloads), self.workers):
            wave = payloads[lo : lo + self.workers]
            for w, payload in enumerate(wave):
                self._submit(w, name, payload)
            for w in range(len(wave)):
                before = self.busy_seconds[w]
                result = self._collect(w, name)
                out.append((result, w, self.busy_seconds[w] - before))
        return out

    def broadcast(self, name: str, payload: Any) -> List[Any]:
        """Run one kernel with the same payload on every worker."""
        for w in range(self.workers):
            self._submit(w, name, payload)
        return [self._collect(w, name) for w in range(self.workers)]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Ask every worker to exit; escalate to terminate on timeout."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((_EXIT, None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        _terminate(self._procs)
        for conn in self._conns:
            conn.close()
        self._finalizer.detach()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
