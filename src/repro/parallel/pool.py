"""Persistent worker-process pool for the multiprocess frontier engine.

One pool serves one engine run: the master spawns ``workers`` processes
up front (``fork`` where the platform offers it, else ``spawn``), seeds
each with the run's :func:`~repro.parallel.kernels.init_run` payload, and
then drives named kernel tasks over duplex pipes.  The protocol is
deliberately tiny:

- master sends ``(kernel_name, payload)``; worker replies
  ``("ok", result, elapsed_seconds)`` or ``("err", traceback_text)``;
- ``(_EXIT, None)`` asks the worker to return from its loop.

Remote exceptions re-raise in the master as :class:`WorkerError` carrying
the worker's formatted traceback.  The pool tracks per-worker busy time
(worker-measured kernel seconds) so the engine can report utilization,
and a ``weakref.finalize`` terminates any still-alive children if a pool
is dropped without :meth:`WorkerPool.close` — the suite's leak test
relies on no code path orphaning a process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import weakref
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["WorkerPool", "WorkerError", "TaskResult", "resolve_workers"]


@dataclass
class TaskResult:
    """One completed kernel task.

    ``elapsed`` is the worker-measured kernel seconds; ``submitted`` /
    ``completed`` are master-side absolute ``time.perf_counter``
    readings taken at dispatch and at collection, so the master can
    place the task on a wall-clock timeline (and compute utilization
    over the span of dispatched work rather than pool lifetime).
    """

    result: Any
    worker: int
    elapsed: float
    submitted: float
    completed: float

_EXIT = "__exit__"


class WorkerError(RuntimeError):
    """A kernel raised (or a worker died) in a worker process."""


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a config ``workers`` value: ``None`` means one per CPU."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return int(workers)
    return os.cpu_count() or 1


def _worker_main(conn) -> None:
    """Worker loop: dispatch kernel tasks until told to exit."""
    from . import kernels

    while True:
        try:
            name, payload = conn.recv()
        except (EOFError, OSError):
            break
        if name == _EXIT:
            break
        t0 = time.perf_counter()
        try:
            result = kernels.KERNELS[name](payload)
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", result, time.perf_counter() - t0))
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _terminate(procs) -> None:
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=2.0)


class WorkerPool:
    """A fixed set of worker processes executing named kernels."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self.workers = int(workers)
        self.start_method = start_method
        self._conns = []
        self._procs = []
        self.busy_seconds = [0.0] * self.workers
        self.tasks_done = 0
        self._first_submit: Optional[float] = None
        self._last_complete: Optional[float] = None
        self._closed = False
        for _ in range(self.workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(self, _terminate, list(self._procs))

    # -- task protocol ---------------------------------------------------

    def _submit(self, worker: int, name: str, payload: Any) -> float:
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        self._conns[worker].send((name, payload))
        return now

    def _collect(self, worker: int, name: str) -> Tuple[Any, float]:
        try:
            reply = self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"worker {worker} died while running {name!r}"
            ) from exc
        if reply[0] == "err":
            raise WorkerError(
                f"kernel {name!r} failed on worker {worker}:\n{reply[1]}"
            )
        _, result, elapsed = reply
        now = time.perf_counter()
        self._last_complete = now
        self.busy_seconds[worker] += float(elapsed)
        self.tasks_done += 1
        return result, float(elapsed)

    def dispatch_window(self) -> Optional[Tuple[float, float]]:
        """Absolute ``(first_submit, last_complete)`` clock readings of
        the work dispatched so far, or ``None`` before any dispatch.

        This is the denominator basis for honest utilization: a pool
        that outlives its run (or was spawned long before the first
        task) must not dilute busy time with idle pool lifetime.
        """
        if self._first_submit is None or self._last_complete is None:
            return None
        return self._first_submit, self._last_complete

    def run_tasks(self, name: str, payloads: Sequence[Any]) -> List[TaskResult]:
        """Run one kernel per payload, payload ``i`` on worker ``i % W``
        (waved so at most one task is in flight per worker), returning
        :class:`TaskResult` records in payload order."""
        out: List[TaskResult] = []
        for lo in range(0, len(payloads), self.workers):
            wave = payloads[lo : lo + self.workers]
            submits = [
                self._submit(w, name, payload) for w, payload in enumerate(wave)
            ]
            for w in range(len(wave)):
                result, elapsed = self._collect(w, name)
                out.append(
                    TaskResult(
                        result=result,
                        worker=w,
                        elapsed=elapsed,
                        submitted=submits[w],
                        completed=time.perf_counter(),
                    )
                )
        return out

    def broadcast(self, name: str, payload: Any) -> List[Any]:
        """Run one kernel with the same payload on every worker."""
        for w in range(self.workers):
            self._submit(w, name, payload)
        return [self._collect(w, name)[0] for w in range(self.workers)]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Ask every worker to exit; escalate to terminate on timeout."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((_EXIT, None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        _terminate(self._procs)
        for conn in self._conns:
            conn.close()
        self._finalizer.detach()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
