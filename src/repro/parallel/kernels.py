"""Worker-side kernels of the multiprocess frontier engine.

Each worker process holds one :class:`RunState` per engine run (installed
by :func:`init_run`) and then executes shard kernels against it.  The
kernels do **not** reimplement the algorithms: they instantiate the very
same :class:`~repro.core.frontier._FastFrontier` /
:class:`~repro.core.frontier._SimpleFrontier` classes — over shared-memory
views of the run's arrays, with a private
:class:`~repro.pvm.machine.Machine` and metrics registry — and run the
existing segment-restricted methods (``_leaf``, ``_find_separators``,
``_divide_segment``, ``_classify_level``, ``_correct_node``,
``_flush_level_pairs``) on their shard.  Because every batched pass in
those methods is per-segment independent (row-local sphere tests,
per-matrix-stable stacked SVDs, per-owner-independent pair merges) and
each segment consumes only its own :func:`~repro.util.rng.path_rng`
stream, a shard-restricted execution is bitwise identical to the same
segments' slice of a whole-level execution — worker count can never
change a result.

Results travel back as plain picklable payloads: per-segment costs,
separators, side vectors and post-search RNG states, plus the task-local
``machine.counters`` and metrics registry for the master to fold in.
Neighbor rows are written directly into the shared ``nbr_idx``/``nbr_sq``
arrays; same-level segments own disjoint rows, so concurrent shard writes
never race.

Tracing: when the master's machine has a tracer attached, ``init_run``
ships ``trace=True`` and every shard kernel runs under its own
task-local :class:`~repro.obs.spans.Tracer` — coarse ``worker.build`` /
``worker.correct`` spans with ``worker.separators`` / ``worker.divide``
/ ``worker.classify`` / ``worker.nodes`` / ``worker.flush`` children.
The serialized span tree (plus the worker's pid/tid and tracer epoch)
travels back in the task result for :mod:`repro.obs.stitch` to graft
under the master's ``frontier.shard`` span.  Worker spans carry zero
simulated cost — shard kernels fold per-node costs analytically instead
of charging the worker machine — so stitching can never perturb any
ledger identity.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.fast_dnc import FastDnCStats
from ..core.frontier import _FastFrontier, _Seg, _SimpleFrontier
from ..core.partition_tree import PartitionNode
from ..core.simple_dnc import SimpleDnCStats
from ..kernels import registry as kernel_registry
from ..pvm.machine import Machine
from .shm import attach

__all__ = ["KERNELS", "init_run"]

_STATE: Optional["RunState"] = None


class RunState:
    """Per-run worker context: shared arrays, config, and the tree mirror."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.method: str = payload["method"]
        self.k: int = payload["k"]
        self.base: int = payload["base"]
        self.config = payload["config"]
        self.root_ss = payload["root_ss"]
        self.scan: str = payload["scan"]
        self.trace: bool = bool(payload.get("trace", False))
        self.kernels: str = payload.get("kernels", "numpy")
        self._attached: Dict[str, Any] = {}
        self.points = self.attach_cached(payload["points_spec"])
        self.nbr_idx = self.attach_cached(payload["nbr_idx_spec"])
        self.nbr_sq = self.attach_cached(payload["nbr_sq_spec"])
        self.levels: Optional[List[List[_Seg]]] = None

    def attach_cached(self, spec) -> np.ndarray:
        if spec.name not in self._attached:
            self._attached[spec.name] = attach(spec)
        return self._attached[spec.name][1]

    def make_engine(self):
        """A fresh engine with a task-local machine and metrics registry.

        With ``trace`` on, the machine gets a task-local tracer whose
        span tree ships back in the task result (see
        :func:`_task_result`)."""
        machine = Machine(scan=self.scan)
        if self.trace:
            machine.enable_tracing()
        if self.method == "fast":
            cls, stats = _FastFrontier, FastDnCStats(metrics=machine.metrics)
        else:
            cls, stats = _SimpleFrontier, SimpleDnCStats(metrics=machine.metrics)
        return cls(
            self.points, self.k, machine, self.root_ss, self.config,
            stats, self.nbr_idx, self.nbr_sq, self.base,
        )


def init_run(payload: Dict[str, Any]) -> bool:
    """Install the run context shipped by the master.

    The payload carries the master's *resolved* kernel backend name, and
    the worker pins it process-wide: a worker must never re-resolve
    ``"auto"`` on its own (its environment could differ), or backends
    could mix within one run.
    """
    global _STATE
    _STATE = RunState(payload)
    kernel_registry.set_backend(_STATE.kernels)
    return True


def _task_result(engine, segs: List[Dict[str, Any]]) -> Dict[str, Any]:
    out = {
        "segs": segs,
        "counters": dict(engine.machine.counters),
        "metrics": engine.machine.metrics,
    }
    tracer = engine.machine.tracer
    if tracer is not None:
        out["trace"] = {
            "spans": [root.to_dict() for root in tracer.roots],
            "epoch": tracer.epoch,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
        }
    return out


def build_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Build-phase kernel: resolve this shard's leaves and search this
    shard's active segments for separators, exactly as the serial
    frontier would for the same segments."""
    state = _STATE
    ids_buf = state.attach_cached(payload["ids_spec"])
    engine = state.make_engine()
    machine = engine.machine
    level = payload["level"]
    points = int(sum(length for _, length, _, _ in payload["segs"]))
    results: List[Optional[Dict[str, Any]]] = []
    actives: List[_Seg] = []
    active_slots: List[int] = []
    with machine.span(
        "worker.build", level=level, segments=len(payload["segs"]), points=points
    ) as wspan:
        for offset, length, path, kind in payload["segs"]:
            seg = _Seg(
                ids=ids_buf[offset : offset + length], level=level, path=tuple(path)
            )
            if kind == "leaf":
                engine._leaf(seg)
                results.append({"kind": "leaf", "pre_cost": seg.pre_cost})
            else:
                active_slots.append(len(results))
                results.append(None)
                actives.append(seg)
        if wspan is not None:
            wspan.attrs["leaves"] = len(results) - len(actives)
            wspan.attrs["actives"] = len(actives)
        if actives:
            if state.method == "fast":
                with machine.span("worker.separators", segments=len(actives)):
                    engine._find_separators(actives)
                for slot, seg in zip(active_slots, actives):
                    if seg.separator is None:
                        engine.stats.punts_separator += 1
                        engine._leaf(seg)
                        results[slot] = {
                            "kind": "failed",
                            "pre_cost": seg.pre_cost,
                            "divide_cost": seg.divide_cost,
                        }
                    else:
                        results[slot] = {
                            "kind": "split",
                            "pre_cost": seg.pre_cost,
                            "divide_cost": seg.divide_cost,
                            "separator": seg.separator,
                            "side": seg.side,
                            "attempts": seg.attempts,
                            "rng": seg.rng,
                        }
            else:
                with machine.span("worker.divide", segments=len(actives)):
                    for slot, seg in zip(active_slots, actives):
                        if engine._divide_segment(seg):
                            results[slot] = {
                                "kind": "split",
                                "pre_cost": seg.pre_cost,
                                "divide_cost": seg.divide_cost,
                                "separator": seg.separator,
                                "side": seg.side,
                            }
                        else:
                            results[slot] = {
                                "kind": "failed",
                                "pre_cost": seg.pre_cost,
                                "divide_cost": seg.divide_cost,
                            }
    return _task_result(engine, results)


def install_tree(payload: Dict[str, Any]) -> bool:
    """Rebuild the partition tree as a local mirror over shared-memory id
    buffers, so correction kernels can classify and march without
    shipping subtrees per task.

    Children of the ``c``-th internal segment of level ``L`` (in segment
    order) sit at positions ``2c``/``2c + 1`` of level ``L + 1`` — the
    append order of the master's ``_split_segments``.
    """
    state = _STATE
    levels: List[List[_Seg]] = []
    for li, (level_spec, ids_spec) in enumerate(
        zip(payload["levels"], payload["ids_specs"])
    ):
        ids_buf = state.attach_cached(ids_spec)
        offset = 0
        segs: List[_Seg] = []
        for length, is_leaf, separator in level_spec:
            seg = _Seg(ids=ids_buf[offset : offset + length], level=li, path=())
            seg.is_leaf = is_leaf
            seg.separator = separator
            segs.append(seg)
            offset += length
        levels.append(segs)
    for li, segs in enumerate(levels):
        child = 0
        for seg in segs:
            if not seg.is_leaf:
                seg.left = levels[li + 1][2 * child]
                seg.right = levels[li + 1][2 * child + 1]
                seg.left.path = seg.path + (0,)
                seg.right.path = seg.path + (1,)
                child += 1
    for segs in reversed(levels):
        for seg in segs:
            if seg.is_leaf:
                seg.node = PartitionNode(indices=seg.ids)
            else:
                seg.node = PartitionNode(
                    indices=seg.ids,
                    separator=seg.separator,
                    left=seg.left.node,
                    right=seg.right.node,
                )
    state.levels = levels
    return True


def correct_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Correction kernel: classify, correct and flush this shard's
    internal segments of one level against the mirrored tree."""
    state = _STATE
    segs = [state.levels[payload["level"]][pos] for pos in payload["positions"]]
    rngs = payload.get("rngs")
    if rngs is not None:
        for seg, rng in zip(segs, rngs):
            seg.rng = rng
    engine = state.make_engine()
    machine = engine.machine
    results: List[Dict[str, Any]] = []
    points = int(sum(seg.ids.shape[0] for seg in segs))
    with machine.span(
        "worker.correct",
        level=payload["level"],
        segments=len(segs),
        points=points,
    ) as wspan:
        if state.method == "fast":
            with machine.span("worker.classify", segments=len(segs)):
                classified = engine._classify_level(segs)
            engine._pending_owners = []
            engine._pending_cands = []
            total_straddlers = 0
            with machine.span("worker.nodes", segments=len(segs)):
                for seg, (cls_in, cls_ex) in zip(segs, classified):
                    straddlers = engine._correct_node(seg, cls_in, cls_ex)
                    total_straddlers += int(straddlers)
                    results.append({
                        "post_cost": seg.post_cost,
                        "straddlers": int(straddlers),
                        "meta": dict(seg.node.meta),
                    })
            with machine.span("worker.flush", pairs=len(engine._pending_owners)):
                engine._flush_level_pairs()
        else:
            total_straddlers = 0
            with machine.span("worker.nodes", segments=len(segs)):
                for seg in segs:
                    straddlers = engine._correct_node(seg)
                    total_straddlers += int(straddlers)
                    results.append({
                        "post_cost": seg.post_cost,
                        "straddlers": int(straddlers),
                        "meta": dict(seg.node.meta),
                    })
        if wspan is not None:
            wspan.attrs["straddlers"] = total_straddlers
    return _task_result(engine, results)


def serve_init(payload: Dict[str, Any]) -> Any:
    """Install a serving-index snapshot (see :mod:`repro.serve.worker`)."""
    from ..serve.worker import serve_init as impl

    return impl(payload)


def serve_shard(payload: Dict[str, Any]) -> Any:
    """Answer one shard of a serving batch (see :mod:`repro.serve.worker`)."""
    from ..serve.worker import serve_shard as impl

    return impl(payload)


def serve_stats(payload: Dict[str, Any]) -> Any:
    """Return-and-reset a worker's shard-latency histogram
    (see :mod:`repro.serve.worker`)."""
    from ..serve.worker import serve_stats as impl

    return impl(payload)


KERNELS = {
    "init_run": init_run,
    "build_shard": build_shard,
    "install_tree": install_tree,
    "correct_shard": correct_shard,
    "serve_init": serve_init,
    "serve_shard": serve_shard,
    "serve_stats": serve_stats,
}
