"""Worker-side kernels of the multiprocess frontier engine.

Each worker process holds one :class:`RunState` per engine run (installed
by :func:`init_run`) and then solves whole subtrees against it.  The
kernels do **not** reimplement the algorithms: :func:`solve_subtree`
instantiates the very same :class:`~repro.core.frontier._FastFrontier` /
:class:`~repro.core.frontier._SimpleFrontier` classes — over shared-memory
views of the run's arrays, with a private
:class:`~repro.pvm.machine.Machine` and metrics registry — and runs the
serial :meth:`~repro.core.frontier._FrontierBase.solve_subtree` entry
point on one frontier segment.  Because the worker executes the
*unmodified* serial code on the whole subtree (every RNG draw comes from
the segment's own :func:`~repro.util.rng.path_rng` stream, every punt
decision and float fold happens in the serial order), the subtree's
neighbor rows, partition nodes and per-node costs are bitwise identical
to the same subtree's slice of a serial whole-tree run — worker count
can never change a result.

Neighbor rows are written directly into the shared ``nbr_idx``/``nbr_sq``
arrays.  Subtrees own disjoint index sets and every correction a subtree
performs reads and writes only rows its own nodes own, so concurrent
subtree solves never race (see ``docs/parallel.md`` for the containment
argument).

The task result ships everything the master needs to (a) rebuild the
subtree's :class:`~repro.core.partition_tree.PartitionNode` mirror from
plain arrays and (b) replay the subtree's ledger/section accounting in
serial order: per-level flat id vectors, per-segment records (length,
kind, separator, divide/post costs, node meta), the composed subtree
total, and the task-local ``machine.counters`` and metrics registry.

Tracing: when the master's machine has a tracer attached, ``init_run``
ships ``trace=True`` and the subtree solve runs under a task-local
:class:`~repro.obs.spans.Tracer` — one ``worker.subtree`` root span
containing the worker-local ``frontier.level`` build/correct spans.  The
serialized span tree (plus the worker's pid/tid and tracer epoch)
travels back in the task result for :mod:`repro.obs.stitch` to graft
under the master's ``parallel.subtree`` span.  Worker spans carry zero
simulated cost — ``solve_subtree`` composes costs analytically and never
charges the worker machine — so stitching can never perturb any ledger
identity.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.fast_dnc import FastDnCStats
from ..core.frontier import _FastFrontier, _Seg, _SimpleFrontier
from ..core.simple_dnc import SimpleDnCStats
from ..kernels import registry as kernel_registry
from ..pvm.machine import Machine
from .shm import attach

__all__ = ["KERNELS", "init_run", "solve_subtree"]

_STATE: Optional["RunState"] = None


class RunState:
    """Per-run worker context: shared arrays and run configuration."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.method: str = payload["method"]
        self.k: int = payload["k"]
        self.base: int = payload["base"]
        self.config = payload["config"]
        self.root_ss = payload["root_ss"]
        self.scan: str = payload["scan"]
        self.trace: bool = bool(payload.get("trace", False))
        self.kernels: str = payload.get("kernels", "numpy")
        self._attached: Dict[str, Any] = {}
        self.points = self.attach_cached(payload["points_spec"])
        self.nbr_idx = self.attach_cached(payload["nbr_idx_spec"])
        self.nbr_sq = self.attach_cached(payload["nbr_sq_spec"])

    def attach_cached(self, spec) -> np.ndarray:
        if spec.name not in self._attached:
            self._attached[spec.name] = attach(spec)
        return self._attached[spec.name][1]

    def make_engine(self):
        """A fresh engine with a task-local machine and metrics registry.

        With ``trace`` on, the machine gets a task-local tracer whose
        span tree ships back in the task result (see
        :func:`_task_result`)."""
        machine = Machine(scan=self.scan)
        if self.trace:
            machine.enable_tracing()
        if self.method == "fast":
            cls, stats = _FastFrontier, FastDnCStats(metrics=machine.metrics)
        else:
            cls, stats = _SimpleFrontier, SimpleDnCStats(metrics=machine.metrics)
        return cls(
            self.points, self.k, machine, self.root_ss, self.config,
            stats, self.nbr_idx, self.nbr_sq, self.base,
        )


def init_run(payload: Dict[str, Any]) -> bool:
    """Install the run context shipped by the master.

    The payload carries the master's *resolved* kernel backend name, and
    the worker pins it process-wide: a worker must never re-resolve
    ``"auto"`` on its own (its environment could differ), or backends
    could mix within one run.
    """
    global _STATE
    _STATE = RunState(payload)
    kernel_registry.set_backend(_STATE.kernels)
    return True


def _task_result(engine, out: Dict[str, Any]) -> Dict[str, Any]:
    out["counters"] = dict(engine.machine.counters)
    out["metrics"] = engine.machine.metrics
    tracer = engine.machine.tracer
    if tracer is not None:
        out["trace"] = {
            "spans": [root.to_dict() for root in tracer.roots],
            "epoch": tracer.epoch,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
        }
    return out


def _seg_record(seg: _Seg, base: int) -> Dict[str, Any]:
    """Everything the master needs to mirror one solved segment.

    ``kind`` separates the three replay classes: ``"leaf"`` (arrived at
    or below the base size — its only charge is the ``m²`` brute force),
    ``"failed"`` (an active segment that degenerated: fast separator
    failure or simple degenerate cut — divide charges *then* the brute
    force), ``"split"`` (internal — divide charges, then correction
    charges on the way back up).  Arrived leaves and failed actives are
    distinguishable by size alone, but the kind is shipped explicitly so
    the replay never re-derives policy.
    """
    m = int(seg.ids.shape[0])
    if not seg.is_leaf:
        return {
            "length": m,
            "kind": "split",
            "separator": seg.separator,
            "divide_cost": seg.divide_cost,
            "post_cost": seg.post_cost,
            "meta": dict(seg.node.meta),
        }
    if m > base:
        return {"length": m, "kind": "failed", "divide_cost": seg.divide_cost}
    return {"length": m, "kind": "leaf"}


def solve_subtree(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Solve one whole subtree to completion against the resident arena.

    The payload names a slice of the shared cut-frontier id buffer plus
    the segment's tree position (``path``/``level``); the kernel runs the
    serial :meth:`~repro.core.frontier._FrontierBase.solve_subtree` on it
    and packages the solved levels for the master's mirror rebuild and
    accounting replay.  ``levels[0]["ids"]`` is ``None`` — the master
    already holds the cut segment's ids and substitutes its own array.
    """
    state = _STATE
    ids_buf = state.attach_cached(payload["ids_spec"])
    offset, length = payload["offset"], payload["length"]
    seg = _Seg(
        ids=ids_buf[offset : offset + length],
        level=payload["level"],
        path=tuple(payload["path"]),
    )
    engine = state.make_engine()
    with engine.machine.span(
        "worker.subtree",
        subtree=payload["index"],
        level=payload["level"],
        points=length,
    ) as wspan:
        levels = engine.solve_subtree(seg)
        if wspan is not None:
            wspan.attrs["depth"] = len(levels)
            wspan.attrs["segments"] = int(sum(len(ls) for ls in levels))
    shipped: List[Dict[str, Any]] = []
    for li, level_segs in enumerate(levels):
        shipped.append({
            "ids": None if li == 0 else np.concatenate(
                [s.ids for s in level_segs]
            ),
            "segs": [_seg_record(s, state.base) for s in level_segs],
        })
    return _task_result(engine, {"levels": shipped, "total": seg.total_cost})


def serve_init(payload: Dict[str, Any]) -> Any:
    """Install a serving-index snapshot (see :mod:`repro.serve.worker`)."""
    from ..serve.worker import serve_init as impl

    return impl(payload)


def serve_shard(payload: Dict[str, Any]) -> Any:
    """Answer one shard of a serving batch (see :mod:`repro.serve.worker`)."""
    from ..serve.worker import serve_shard as impl

    return impl(payload)


def serve_stats(payload: Dict[str, Any]) -> Any:
    """Return-and-reset a worker's shard-latency histogram
    (see :mod:`repro.serve.worker`)."""
    from ..serve.worker import serve_stats as impl

    return impl(payload)


KERNELS = {
    "init_run": init_run,
    "solve_subtree": solve_subtree,
    "serve_init": serve_init,
    "serve_shard": serve_shard,
    "serve_stats": serve_stats,
}
