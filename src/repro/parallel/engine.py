"""The ``frontier-mp`` engine: coarse-grained subtree solves on OS workers.

:class:`_ParallelFastFrontier` / :class:`_ParallelSimpleFrontier` subclass
the serial frontier engines and restructure execution into two phases:

phase 1 — cut and ship (workers, order-free)
    The master runs the *serial* frontier recursion only until the
    frontier holds :func:`~repro.parallel.plan.subtree_target` segments
    (``~3×`` the worker count).  Each of those segments — a whole
    subtree — is shipped **once** to a worker planned by
    :func:`~repro.parallel.plan.plan_subtree_assignment`, which solves it
    to completion locally against the resident shared-memory arena via
    the serial :meth:`~repro.core.frontier._FrontierBase.solve_subtree`
    entry point.  There are no per-level round trips and no per-level
    pickling: master↔worker traffic is one task descriptor down and one
    solved-subtree summary up, per subtree.

phase 2 — merge and replay (master, serial order)
    The master corrects only the straddler/boundary set — the internal
    nodes *above* the cut, whose corrections read the workers' leaf radii
    out of shared memory — and replays the subtree ledger/section/counter
    accounting in the serial engine's order from the per-segment
    :class:`~repro.pvm.cost.Cost` records each worker returns, composing
    the bottom-up cost algebra and issuing the single root charge.

The bit-identity contract (same neighbors, tree and (depth, work) ledger
as ``engine="frontier"`` — and hence as ``"recursive"`` — for any worker
count) holds by construction: workers execute the *unmodified* serial
code on whole subtrees (per-node :func:`~repro.util.rng.path_rng`
streams, serial punt decisions, serial float folds), subtrees own
disjoint index sets so concurrent solves never race, and every
accounting fold the master replays is per-section order-identical to the
serial engine's (see ``docs/parallel.md`` for the full argument).  Event
counters merge additively and are therefore exact; metric *series*
arrive in subtree order, equal to the serial engine's as multisets (the
same guarantee the frontier engine gives relative to the recursive one).

If the frontier exhausts before reaching the target (tiny inputs, or
pathological early punts), nothing is dispatched and the master simply
finishes the serial solve — bit-identical by triviality, with
``parallel.subtrees == 0`` recording the fallback.

Observability: in addition to the serial engine's per-level spans for
the master's own levels, every subtree task emits a ``parallel.subtree``
span (worker id, subtree index, point count, wall milliseconds) whose
wall-clock bounds are the task's real dispatch window, and — when
tracing is on — the worker's own span tree (a ``worker.subtree`` root
with the worker-local ``frontier.level`` spans inside) is grafted
underneath it by :mod:`repro.obs.stitch`, giving the Chrome export one
timeline lane per worker process.  The run reports ``parallel.workers``,
``parallel.tasks``, ``parallel.subtrees``, ``parallel.cut_level``,
``parallel.busy_seconds`` (sum and per-worker
``parallel.busy_seconds.<i>`` gauges), ``parallel.dispatch_span_seconds``
and ``parallel.utilization`` (busy time over the span of dispatched
work, not pool lifetime), plus the overhead breakdown —
``parallel.copyin_seconds`` (shm arena population),
``parallel.dispatch_seconds`` / ``parallel.dispatch_bytes`` (pickle+send
down), ``parallel.collect_seconds`` / ``parallel.result_bytes``
(receive+unpickle up) — through the metrics registry, so fan-out
overhead is attributable rather than guessed.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

import numpy as np

from ..core.frontier import _FastFrontier, _Seg, _SimpleFrontier
from ..kernels import registry as kernel_registry
from ..obs.stitch import graft_worker_trace
from ..pvm.cost import Cost
from .plan import plan_subtree_assignment, subtree_target, subtree_weight
from .pool import TaskResult, WorkerPool, resolve_workers
from .shm import SharedArray

__all__ = ["run_fast_frontier_mp", "run_simple_frontier_mp"]


def _base_cost(m: int) -> Cost:
    """The base-case charge of an ``m``-point leaf, reconstructed exactly
    as :meth:`~repro.core.frontier._FrontierBase._leaf` builds it."""
    return Cost(float(m), float(m) * float(m))


class _ParallelFrontierMixin:
    """Master-side orchestration shared by the fast and simple engines."""

    def run(self):
        workers = resolve_workers(self.config.workers)
        self._arena: List[SharedArray] = []
        caller_idx, caller_sq = self.nbr_idx, self.nbr_sq
        t0 = time.perf_counter()
        points_sa = SharedArray.create_from(self.points)
        idx_sa = SharedArray.create_from(self.nbr_idx)
        sq_sa = SharedArray.create_from(self.nbr_sq)
        self._copyin_seconds = time.perf_counter() - t0
        self._arena += [points_sa, idx_sa, sq_sa]
        # The master works against the shared views for the whole run:
        # its own leaves and corrections must see (and extend) the same
        # neighbor state the workers write.
        self.nbr_idx = idx_sa.array
        self.nbr_sq = sq_sa.array
        self._cut: List[_Seg] = []
        self._pool = WorkerPool(workers)
        try:
            self._pool.broadcast("init_run", {
                "method": self._NS,
                "k": self.k,
                "base": self.base,
                "config": self.config,
                "root_ss": self.root_ss,
                "scan": self.machine.scan_policy,
                "points_spec": points_sa.spec,
                "nbr_idx_spec": idx_sa.spec,
                "nbr_sq_spec": sq_sa.spec,
                "trace": self.machine.tracer is not None,
                # ship the *resolved* backend name so workers never
                # re-resolve "auto" differently from the master
                "kernels": kernel_registry.active_backend(),
            })
            root_node = self._run_two_phase(workers)
            caller_idx[...] = idx_sa.array
            caller_sq[...] = sq_sa.array
        finally:
            self.nbr_idx = caller_idx
            self.nbr_sq = caller_sq
            self._pool.close()
            for sa in self._arena:
                sa.destroy()
        self._emit_parallel_metrics(workers)
        return root_node

    def _run_two_phase(self, workers: int):
        n = self.points.shape[0]
        root = _Seg(ids=np.arange(n, dtype=np.int64), level=0, path=())
        target = subtree_target(workers)
        frontier = [root]
        master_levels: List[List[_Seg]] = []
        while frontier and len(frontier) < target:
            master_levels.append(frontier)
            lvl = frontier[0].level
            points_at_level = int(sum(s.ids.shape[0] for s in frontier))
            with self.machine.span(
                "frontier.level",
                phase="build",
                level=lvl,
                segments=len(frontier),
                points=points_at_level,
            ) as span:
                frontier = self._build_level(frontier, span)
        self._cut = frontier
        if frontier:
            self._solve_subtrees(frontier)
        self._link_nodes(master_levels)
        self._correct_levels(master_levels)
        if master_levels:
            total = self._compose_costs(master_levels)
        else:
            # target == 1: the root itself was the single shipped subtree
            total = frontier[0].total_cost
        with self.machine.span("frontier.total"):
            self.machine.charge(total)
        return root.node

    # -- phase 1: cut and ship -------------------------------------------

    def _solve_subtrees(self, cut: List[_Seg]) -> None:
        """Ship every cut segment to its planned worker, then mirror and
        replay the solved subtrees in serial order."""
        pool = self._pool
        t0 = time.perf_counter()
        buf = SharedArray.create_from(np.concatenate([s.ids for s in cut]))
        self._copyin_seconds += time.perf_counter() - t0
        self._arena.append(buf)
        weights = [subtree_weight(int(s.ids.shape[0]), self.base) for s in cut]
        assignment = plan_subtree_assignment(weights, pool.workers)
        payloads: List[Dict[str, Any]] = []
        offset = 0
        for i, seg in enumerate(cut):
            m = int(seg.ids.shape[0])
            payloads.append({
                "ids_spec": buf.spec,
                "offset": offset,
                "length": m,
                "path": seg.path,
                "level": seg.level,
                "index": i,
            })
            offset += m
        tasks = pool.run_assigned("solve_subtree", payloads, assignment)
        # Merge order is the cut order (run_assigned returns payload
        # order), so counter merges and series extension are
        # deterministic for a fixed plan.
        for i, (seg, task) in enumerate(zip(cut, tasks)):
            self._merge_task(task.result)
            self._subtree_span(seg, i, task)
        for seg, task in zip(cut, tasks):
            self._install_subtree(seg, task.result)
        self._replay_accounting([task.result for task in tasks])

    # -- phase 2: mirror and replay --------------------------------------

    def _install_subtree(self, seg: _Seg, res: Dict[str, Any]) -> None:
        """Rebuild one solved subtree as master-side segments and
        partition nodes from the worker's per-level records.

        Children of the ``c``-th split segment of a level (in segment
        order) sit at positions ``2c``/``2c + 1`` of the next level — the
        append order of ``_split_segments``.  The cut segment itself *is*
        local level 0 (its fields are filled in place, so the parent
        level's ``left``/``right`` references stay valid), and its ids
        array is the master's own — worker-shipped id vectors are plain
        arrays, so no shared-memory view can leak into the returned tree.
        """
        local_levels: List[List[_Seg]] = []
        for li, level_res in enumerate(res["levels"]):
            if li == 0:
                self._apply_record(seg, level_res["segs"][0])
                local_levels.append([seg])
                continue
            ids_flat = level_res["ids"]
            segs: List[_Seg] = []
            offset = 0
            for rec in level_res["segs"]:
                m = rec["length"]
                child = _Seg(
                    ids=ids_flat[offset : offset + m],
                    level=seg.level + li,
                    path=(),
                )
                offset += m
                self._apply_record(child, rec)
                segs.append(child)
            local_levels.append(segs)
        for li, segs in enumerate(local_levels):
            child = 0
            for s in segs:
                if not s.is_leaf:
                    s.left = local_levels[li + 1][2 * child]
                    s.right = local_levels[li + 1][2 * child + 1]
                    s.left.path = s.path + (0,)
                    s.right.path = s.path + (1,)
                    child += 1
        self._link_nodes(local_levels)
        for segs, level_res in zip(local_levels, res["levels"]):
            for s, rec in zip(segs, level_res["segs"]):
                if rec["kind"] == "split":
                    s.node.meta.update(rec["meta"])
        seg.total_cost = res["total"]

    @staticmethod
    def _apply_record(seg: _Seg, rec: Dict[str, Any]) -> None:
        kind = rec["kind"]
        if kind == "split":
            seg.separator = rec["separator"]
            seg.divide_cost = rec["divide_cost"]
            seg.post_cost = rec["post_cost"]
        else:
            seg.is_leaf = True
            if kind == "failed":
                seg.divide_cost = rec["divide_cost"]

    def _replay_accounting(self, results: List[Dict[str, Any]]) -> None:
        """Replay the subtrees' section folds in the serial engine's order.

        Sections fold per *name*, so only the within-name order matters.
        Serially, ``base`` folds level by level — arrived leaves in
        segment order, then degenerated actives in segment order;
        ``divide`` folds every active in segment order per level; and
        ``correct`` folds internal segments per level walking levels
        bottom-up.  At any level at or below the cut, the serial segment
        order is the concatenation of the per-subtree segment lists in
        cut order (splits preserve order), so concatenating the subtree
        records per global level — subtree-major — reproduces each fold
        bit for bit.  Master levels folded live before (build) and after
        (correct) this replay complete the serial order.
        """
        machine = self.machine
        depth = max(len(res["levels"]) for res in results)
        for li in range(depth):
            recs = [
                rec
                for res in results
                if li < len(res["levels"])
                for rec in res["levels"][li]["segs"]
            ]
            for rec in recs:
                if rec["kind"] == "leaf":
                    machine.attribute("base", _base_cost(rec["length"]))
            for rec in recs:
                if rec["kind"] != "leaf":
                    machine.attribute("divide", rec["divide_cost"])
            for rec in recs:
                if rec["kind"] == "failed":
                    machine.attribute("base", _base_cost(rec["length"]))
        for li in range(depth - 1, -1, -1):
            for res in results:
                if li >= len(res["levels"]):
                    continue
                for rec in res["levels"][li]["segs"]:
                    if rec["kind"] == "split":
                        machine.attribute("correct", rec["post_cost"])

    # -- merge helpers ---------------------------------------------------

    def _merge_task(self, reply: dict) -> None:
        counters = self.machine.counters
        for key, value in reply["counters"].items():
            counters[key] = counters.get(key, 0) + value
        self.machine.metrics.merge(reply["metrics"])

    def _subtree_span(self, seg: _Seg, index: int, task: TaskResult) -> None:
        with self.machine.span(
            "parallel.subtree",
            worker=task.worker,
            subtree=index,
            level=seg.level,
            points=int(seg.ids.shape[0]),
            wall_ms=task.elapsed * 1000.0,
        ) as handle:
            pass
        if handle is None:
            return
        # Rewrite the span's wall bounds to the task's real dispatch
        # window (the span itself opened at collection time, after the
        # work was already done), then graft the worker's own span tree
        # underneath.  Both are pure-observability edits: the subtree
        # span's zero Cost and the ledger are untouched.
        tracer = self.machine.tracer
        handle.wall_start = task.submitted - tracer.epoch
        handle.wall_end = task.completed - tracer.epoch
        trace = task.result.get("trace")
        if trace is not None:
            graft_worker_trace(
                handle, trace, master_epoch=tracer.epoch, worker=task.worker
            )

    def _emit_parallel_metrics(self, workers: int) -> None:
        pool = self._pool
        busy = float(sum(pool.busy_seconds))
        window = pool.dispatch_window()
        span_seconds = (window[1] - window[0]) if window is not None else 0.0
        metrics = self.machine.metrics
        metrics.set_gauge("parallel.workers", workers)
        metrics.inc("parallel.tasks", pool.tasks_done)
        metrics.inc("parallel.busy_seconds", busy)
        for w, worker_busy in enumerate(pool.busy_seconds):
            metrics.set_gauge(f"parallel.busy_seconds.{w}", float(worker_busy))
        metrics.set_gauge("parallel.dispatch_span_seconds", span_seconds)
        metrics.set_gauge(
            "parallel.utilization",
            min(1.0, busy / max(workers * span_seconds, 1e-12)),
        )
        metrics.set_gauge("parallel.subtrees", float(len(self._cut)))
        metrics.set_gauge(
            "parallel.cut_level",
            float(self._cut[0].level) if self._cut else -1.0,
        )
        metrics.set_gauge("parallel.copyin_seconds", self._copyin_seconds)
        metrics.set_gauge("parallel.dispatch_seconds", pool.dispatch_seconds)
        metrics.set_gauge("parallel.collect_seconds", pool.collect_seconds)
        metrics.inc("parallel.dispatch_bytes", pool.dispatch_bytes)
        metrics.inc("parallel.result_bytes", pool.result_bytes)


class _ParallelFastFrontier(_ParallelFrontierMixin, _FastFrontier):
    """Multiprocess execution of the Section 6 fast algorithm."""


class _ParallelSimpleFrontier(_ParallelFrontierMixin, _SimpleFrontier):
    """Multiprocess execution of the Section 5 simple algorithm."""


def run_fast_frontier_mp(
    points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
):
    """Multiprocess frontier drive of the fast algorithm; same contract —
    and, seed-for-seed, bitwise the same output and ledger for any worker
    count — as :func:`repro.core.frontier.run_fast_frontier`."""
    return _ParallelFastFrontier(
        points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ).run()


def run_simple_frontier_mp(
    points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
):
    """Multiprocess frontier drive of the simple algorithm; same contract —
    and, seed-for-seed, bitwise the same output and ledger for any worker
    count — as :func:`repro.core.frontier.run_simple_frontier`."""
    return _ParallelSimpleFrontier(
        points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ).run()
