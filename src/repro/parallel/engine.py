"""The ``frontier-mp`` engine: frontier levels on OS worker processes.

:class:`_ParallelFastFrontier` / :class:`_ParallelSimpleFrontier` subclass
the serial frontier engines and replace the *execution* of each level —
leaf brute force, separator search, ball classification, correction — with
shard tasks fanned out over a :class:`~repro.parallel.pool.WorkerPool`,
while keeping every piece of *accounting* on the master, replayed in the
serial order.  The bit-identity contract (same neighbors, tree and
(depth, work) ledger as ``engine="frontier"`` — and hence as
``"recursive"`` — for any worker count) rests on a strict split of
responsibilities:

master-side, serial order
    segment bookkeeping, the level-wide ``segmented_split``, tree linking,
    the ``pre/divide/base/correct`` section folds (replayed per segment
    from worker-returned :class:`~repro.pvm.cost.Cost` values in exactly
    the serial fold order), the bottom-up cost composition and the single
    root charge;
worker-side, order-free
    everything numerical.  Workers run the *same* frontier methods on
    contiguous shards of the level; shard-restriction is bitwise invisible
    because those methods are per-segment independent, and each segment
    consumes only its own :func:`~repro.util.rng.path_rng` stream (build
    kernels return the post-search generator state, which the master ships
    back for the node's correction task, so punt-path draws continue the
    exact serial stream).

Event counters merge additively and are therefore exact; metric *series*
arrive in shard order, equal to the serial engine's as multisets (the same
guarantee the frontier engine gives relative to the recursive one).

Observability: in addition to the serial engine's per-level spans, every
shard task emits a ``frontier.shard`` span (worker id, segment/point
counts, wall milliseconds) whose wall-clock bounds are the task's real
dispatch window, and — when tracing is on — the worker's own span tree
is grafted underneath it by :mod:`repro.obs.stitch`, giving the Chrome
export one timeline lane per worker process.  The run reports
``parallel.workers``, ``parallel.tasks``, ``parallel.busy_seconds`` (sum
and per-worker ``parallel.busy_seconds.<i>`` gauges),
``parallel.dispatch_span_seconds`` and ``parallel.utilization`` (busy
time over the span of dispatched work, not pool lifetime) through the
metrics registry.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.frontier import _FastFrontier, _Seg, _SimpleFrontier
from ..kernels import registry as kernel_registry
from ..obs.stitch import graft_worker_trace
from ..pvm.cost import Cost
from .plan import build_weight, correct_weight, plan_shards
from .pool import TaskResult, WorkerPool, resolve_workers
from .shm import SharedArray

__all__ = ["run_fast_frontier_mp", "run_simple_frontier_mp"]


class _ParallelFrontierMixin:
    """Master-side orchestration shared by the fast and simple engines."""

    def run(self):
        workers = resolve_workers(self.config.workers)
        self._arena: List[SharedArray] = []
        self._level_buffers: List[SharedArray] = []
        caller_idx, caller_sq = self.nbr_idx, self.nbr_sq
        points_sa = SharedArray.create_from(self.points)
        idx_sa = SharedArray.create_from(self.nbr_idx)
        sq_sa = SharedArray.create_from(self.nbr_sq)
        self._arena += [points_sa, idx_sa, sq_sa]
        self._pool = WorkerPool(workers)
        try:
            self._pool.broadcast("init_run", {
                "method": self._NS,
                "k": self.k,
                "base": self.base,
                "config": self.config,
                "root_ss": self.root_ss,
                "scan": self.machine.scan_policy,
                "points_spec": points_sa.spec,
                "nbr_idx_spec": idx_sa.spec,
                "nbr_sq_spec": sq_sa.spec,
                "trace": self.machine.tracer is not None,
                # ship the *resolved* backend name so workers never
                # re-resolve "auto" differently from the master
                "kernels": kernel_registry.active_backend(),
            })
            root = super().run()
            caller_idx[...] = idx_sa.array
            caller_sq[...] = sq_sa.array
        finally:
            self._pool.close()
            for sa in self._arena:
                sa.destroy()
        busy = float(sum(self._pool.busy_seconds))
        window = self._pool.dispatch_window()
        span_seconds = (window[1] - window[0]) if window is not None else 0.0
        metrics = self.machine.metrics
        metrics.set_gauge("parallel.workers", workers)
        metrics.inc("parallel.tasks", self._pool.tasks_done)
        metrics.inc("parallel.busy_seconds", busy)
        for w, worker_busy in enumerate(self._pool.busy_seconds):
            metrics.set_gauge(f"parallel.busy_seconds.{w}", float(worker_busy))
        metrics.set_gauge("parallel.dispatch_span_seconds", span_seconds)
        metrics.set_gauge(
            "parallel.utilization",
            min(1.0, busy / max(workers * span_seconds, 1e-12)),
        )
        return root

    # -- build phase -----------------------------------------------------

    def _build_level(self, segs: List[_Seg], span) -> List[_Seg]:
        self.stats.nodes += len(segs)
        level = segs[0].level
        buf = SharedArray.create_from(np.concatenate([s.ids for s in segs]))
        self._level_buffers.append(buf)
        self._arena.append(buf)
        kinds = ["leaf" if s.ids.shape[0] <= self.base else "active" for s in segs]
        descs = []
        offset = 0
        for seg, kind in zip(segs, kinds):
            m = seg.ids.shape[0]
            descs.append((offset, m, seg.path, kind))
            offset += m
        weights = [
            build_weight(s.ids.shape[0], kind == "leaf", self.base)
            for s, kind in zip(segs, kinds)
        ]
        shards = plan_shards(weights, self._pool.workers)
        payloads = [
            {"level": level, "ids_spec": buf.spec, "segs": descs[s.start : s.stop]}
            for s in shards
        ]
        results: List[Optional[dict]] = [None] * len(segs)
        for task, shard in zip(
            self._pool.run_tasks("build_shard", payloads), shards
        ):
            self._merge_task(task.result)
            self._shard_span("build", level, shard, segs, task)
            results[shard.start : shard.stop] = task.result["segs"]
        return self._replay_build(segs, results, span)

    def _replay_build(self, segs, results, span) -> List[_Seg]:
        """Fold the shard results back in the serial engine's order."""
        machine = self.machine
        actives = []
        for seg, res in zip(segs, results):
            if res["kind"] == "leaf":
                seg.is_leaf = True
                seg.pre_cost = res["pre_cost"]
                m = seg.ids.shape[0]
                machine.attribute("base", Cost(float(m), float(m) * float(m)))
            else:
                actives.append((seg, res))
        if span is not None:
            span.attrs["base_segments"] = len(segs) - len(actives)
        if not actives:
            return []
        for seg, res in actives:
            seg.divide_cost = res["divide_cost"]
            machine.attribute("divide", res["divide_cost"])
        split_segs: List[_Seg] = []
        for seg, res in actives:
            seg.pre_cost = res["pre_cost"]
            if res["kind"] == "split":
                seg.separator = res["separator"]
                seg.side = res["side"]
                seg.attempts = res.get("attempts", 0)
                seg.rng = res.get("rng")
                split_segs.append(seg)
            else:
                seg.is_leaf = True
                m = seg.ids.shape[0]
                machine.attribute("base", Cost(float(m), float(m) * float(m)))
        self._note_failures(span, len(actives) - len(split_segs))
        if not split_segs:
            return []
        self._finalize_split_costs(split_segs)
        return self._split_segments(split_segs)

    # -- correction phase ------------------------------------------------

    def _correct_levels(self, levels: List[List[_Seg]]) -> None:
        self._pool.broadcast("install_tree", {
            "levels": [
                [(s.ids.shape[0], s.is_leaf, s.separator) for s in level_segs]
                for level_segs in levels
            ],
            "ids_specs": [buf.spec for buf in self._level_buffers],
        })
        for li in range(len(levels) - 1, -1, -1):
            level_segs = levels[li]
            internal = [
                (pos, s) for pos, s in enumerate(level_segs) if not s.is_leaf
            ]
            if not internal:
                continue
            with self.machine.span(
                "frontier.level",
                phase="correct",
                level=internal[0][1].level,
                segments=len(internal),
            ) as span:
                punts_before = self._punt_count()
                weights = [correct_weight(s.ids.shape[0]) for _, s in internal]
                shards = plan_shards(weights, self._pool.workers)
                payloads = []
                for shard in shards:
                    chunk = internal[shard.start : shard.stop]
                    payload = {"level": li, "positions": [pos for pos, _ in chunk]}
                    if self._ships_correction_rngs:
                        payload["rngs"] = [s.rng for _, s in chunk]
                    payloads.append(payload)
                results: List[Optional[dict]] = [None] * len(internal)
                for task, shard in zip(
                    self._pool.run_tasks("correct_shard", payloads), shards
                ):
                    self._merge_task(task.result)
                    self._shard_span(
                        "correct", li, shard, [s for _, s in internal], task
                    )
                    results[shard.start : shard.stop] = task.result["segs"]
                straddlers = 0
                for (_, seg), res in zip(internal, results):
                    seg.post_cost = res["post_cost"]
                    straddlers += res["straddlers"]
                    seg.node.meta.update(res["meta"])
                    self.machine.attribute("correct", seg.post_cost)
                if span is not None:
                    span.attrs["straddlers"] = int(straddlers)
                    span.attrs["punts"] = int(
                        self._punt_count() - punts_before
                    )

    # -- merge helpers ---------------------------------------------------

    def _punt_count(self) -> int:
        """Correction-phase punt events so far (0 for engines without
        punt counters); worker punts land here through the per-task
        metrics merge, so per-level deltas match the serial engine's."""
        return int(
            getattr(self.stats, "punts_iota", 0)
            + getattr(self.stats, "punts_marching", 0)
        )

    def _merge_task(self, reply: dict) -> None:
        counters = self.machine.counters
        for key, value in reply["counters"].items():
            counters[key] = counters.get(key, 0) + value
        self.machine.metrics.merge(reply["metrics"])

    def _shard_span(
        self, phase, level, shard, segs, task: TaskResult
    ) -> None:
        points = int(
            sum(s.ids.shape[0] for s in segs[shard.start : shard.stop])
        )
        with self.machine.span(
            "frontier.shard",
            phase=phase,
            level=level,
            worker=task.worker,
            segments=len(shard),
            points=points,
            wall_ms=task.elapsed * 1000.0,
        ) as handle:
            pass
        if handle is None:
            return
        # Rewrite the span's wall bounds to the task's real dispatch
        # window (the span itself opened at collection time, after the
        # work was already done), then graft the worker's own span tree
        # underneath.  Both are pure-observability edits: the shard
        # span's zero Cost and the ledger are untouched.
        tracer = self.machine.tracer
        handle.wall_start = task.submitted - tracer.epoch
        handle.wall_end = task.completed - tracer.epoch
        trace = task.result.get("trace")
        if trace is not None:
            graft_worker_trace(
                handle, trace, master_epoch=tracer.epoch, worker=task.worker
            )

    # -- engine-specific hooks -------------------------------------------

    _ships_correction_rngs = False

    def _finalize_split_costs(self, split_segs: List[_Seg]) -> None:
        raise NotImplementedError

    def _note_failures(self, span, failures: int) -> None:
        pass


class _ParallelFastFrontier(_ParallelFrontierMixin, _FastFrontier):
    """Multiprocess execution of the Section 6 fast algorithm."""

    # punt-path correction draws continue the post-separator-search
    # generator state returned by the build kernels
    _ships_correction_rngs = True

    def _finalize_split_costs(self, split_segs: List[_Seg]) -> None:
        for seg in split_segs:
            m = seg.ids.shape[0]
            seg.pre_cost = (
                seg.pre_cost
                .then(self.machine.ewise_cost(m, 2.0))
                .then(self.machine.scan_cost(m).then(self.machine.permute_cost(m)))
            )

    def _note_failures(self, span, failures: int) -> None:
        if span is not None:
            span.attrs["separator_failures"] = failures


class _ParallelSimpleFrontier(_ParallelFrontierMixin, _SimpleFrontier):
    """Multiprocess execution of the Section 5 simple algorithm.

    Correction generators are derived worker-side from each node's path
    (the simple build never consumes randomness), so no RNG state ships.
    """

    def _finalize_split_costs(self, split_segs: List[_Seg]) -> None:
        # the hyperplane divide cost already includes the split fold
        pass


def run_fast_frontier_mp(
    points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
):
    """Multiprocess frontier drive of the fast algorithm; same contract —
    and, seed-for-seed, bitwise the same output and ledger for any worker
    count — as :func:`repro.core.frontier.run_fast_frontier`."""
    return _ParallelFastFrontier(
        points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ).run()


def run_simple_frontier_mp(
    points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
):
    """Multiprocess frontier drive of the simple algorithm; same contract —
    and, seed-for-seed, bitwise the same output and ledger for any worker
    count — as :func:`repro.core.frontier.run_simple_frontier`."""
    return _ParallelSimpleFrontier(
        points, k, machine, root_ss, config, stats, nbr_idx, nbr_sq, base
    ).run()
