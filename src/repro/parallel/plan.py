"""Shard and subtree planning for the multiprocess frontier engine.

Two planning problems live here:

**Subtree planning** (the coarse-grained ``frontier-mp`` engine).  The
master runs the frontier recursion only until the frontier holds
:func:`subtree_target` segments (``~3×`` the worker count by default),
then ships each of those segments — a whole subtree — *once* to a
worker that solves it to completion locally.  :func:`subtree_weight`
predicts a subtree's total solve cost and
:func:`plan_subtree_assignment` maps subtrees onto workers with a
deterministic greedy LPT (longest processing time first): subtrees
sorted by descending weight, each assigned to the least-loaded worker.
The assignment is a pure function of the weights — it decides only
*which process* solves a subtree, never what is computed, so it can
never affect the bit-identity contract of :mod:`repro.parallel.engine`.

**Contiguous shard planning** (the serving pool, and any level-sliced
fan-out).  :func:`plan_shards` splits ``range(len(weights))`` into at
most ``workers`` contiguous runs of roughly equal total weight —
contiguity keeps merged per-shard outputs in the original order.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "Shard",
    "plan_shards",
    "build_weight",
    "correct_weight",
    "subtree_target",
    "subtree_weight",
    "plan_subtree_assignment",
]

#: Environment override for the subtree cut target (absolute segment
#: count).  Tests use it to force degenerate plans (a single giant
#: subtree, more workers than subtrees); operators can tune granularity
#: without a code change.
SUBTREE_TARGET_ENV = "REPRO_MP_SUBTREE_TARGET"

#: Default subtrees-per-worker multiplier.  2–4× gives the LPT packing
#: enough pieces to balance without shrinking subtrees into dispatch
#: overhead; 3× is the middle of that band.
SUBTREE_FACTOR = 3


@dataclass(frozen=True)
class Shard:
    """Half-open segment range ``[start, stop)`` assigned to one worker."""

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def plan_shards(weights: Sequence[float], workers: int) -> List[Shard]:
    """Partition ``range(len(weights))`` into at most ``workers`` contiguous
    shards of roughly equal total weight.

    Greedy prefix walk: a shard closes once it reaches the remaining
    average load (remaining weight / remaining shards), which guarantees
    every shard is nonempty and the count never exceeds ``workers``.
    Returns an empty list for an empty level.
    """
    n = len(weights)
    if n == 0:
        return []
    workers = max(1, int(workers))
    if workers == 1 or n == 1:
        return [Shard(0, n)]
    total = float(sum(weights))
    shards: List[Shard] = []
    start = 0
    remaining = total
    for w in range(workers, 0, -1):
        if start >= n:
            break
        if w == 1 or n - start <= 1:
            shards.append(Shard(start, n))
            start = n
            break
        if n - start <= w:
            # one segment per remaining shard
            for i in range(start, n):
                shards.append(Shard(i, i + 1))
            start = n
            break
        target = remaining / w
        acc = 0.0
        stop = start
        # close the shard at the first index where the accumulated weight
        # reaches the remaining average, but always take at least one
        # segment and leave at least one per remaining shard
        max_stop = n - (w - 1)
        while stop < max_stop and (acc < target or stop == start):
            acc += float(weights[stop])
            stop += 1
        shards.append(Shard(start, stop))
        remaining -= acc
        start = stop
    return shards


def build_weight(size: int, is_leaf: bool, base: int) -> float:
    """Predicted build cost of one segment: quadratic brute force for
    leaves, near-linear separator search (sampling + sphere tests, with a
    per-segment SVD constant) for active segments."""
    m = float(size)
    if is_leaf:
        return m * m
    return 4.0 * m + 256.0


def correct_weight(size: int) -> float:
    """Predicted correction cost of one internal segment (classification
    and marching are near-linear in the node size)."""
    return float(size) + 32.0


def subtree_target(workers: int) -> int:
    """How many frontier segments the master grows before cutting over
    to per-subtree worker dispatch.

    Defaults to ``SUBTREE_FACTOR ×`` the worker count; the
    ``REPRO_MP_SUBTREE_TARGET`` environment variable overrides it with
    an absolute count (minimum 1).
    """
    env = os.environ.get(SUBTREE_TARGET_ENV, "").strip()
    if env:
        return max(1, int(env))
    return max(1, SUBTREE_FACTOR * max(1, int(workers)))


def subtree_weight(size: int, base: int) -> float:
    """Predicted cost of solving an ``size``-point subtree to completion.

    Roughly ``size × (levels below the cut + per-leaf brute force)``:
    each of the ``~log2(size / base)`` remaining levels does near-linear
    work over the subtree, and the base cases contribute ``size × base``
    total (each point sits in one ~``base``-sized quadratic leaf).
    """
    m = float(max(1, size))
    b = float(max(1, base))
    return m * (math.log2(max(m / b, 2.0)) + b)


def plan_subtree_assignment(weights: Sequence[float], workers: int) -> List[int]:
    """Assign each subtree to a worker: deterministic greedy LPT.

    Subtrees are visited in descending weight (ties broken by original
    index, so the plan is reproducible) and each goes to the currently
    least-loaded worker (ties broken by worker id).  Returns a list
    ``assignment[i] = worker`` of the same length as ``weights``; with
    more workers than subtrees, high-numbered workers simply receive no
    work.
    """
    workers = max(1, int(workers))
    assignment = [0] * len(weights)
    if workers == 1 or not weights:
        return assignment
    load = [0.0] * workers
    order = sorted(range(len(weights)), key=lambda i: (-float(weights[i]), i))
    for i in order:
        w = min(range(workers), key=lambda j: (load[j], j))
        assignment[i] = w
        load[w] += float(weights[i])
    return assignment
