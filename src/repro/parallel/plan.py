"""Shard planning: split one level's segments into per-worker slices.

A frontier level is a list of segments (partition-tree nodes in flight).
The multiprocess engine hands each worker one **contiguous** run of
segments — contiguity is what keeps the merged per-shard outputs in the
serial segment order, which the bit-identity contract of
:mod:`repro.parallel.engine` relies on.  :func:`plan_shards` balances the
predicted cost of those runs greedily against the level's mean per-worker
load; the plan is a pure function of the weights, so it is identical
across runs and (by construction) never affects the computed *results*,
only which process computes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Shard", "plan_shards", "build_weight", "correct_weight"]


@dataclass(frozen=True)
class Shard:
    """Half-open segment range ``[start, stop)`` assigned to one worker."""

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def plan_shards(weights: Sequence[float], workers: int) -> List[Shard]:
    """Partition ``range(len(weights))`` into at most ``workers`` contiguous
    shards of roughly equal total weight.

    Greedy prefix walk: a shard closes once it reaches the remaining
    average load (remaining weight / remaining shards), which guarantees
    every shard is nonempty and the count never exceeds ``workers``.
    Returns an empty list for an empty level.
    """
    n = len(weights)
    if n == 0:
        return []
    workers = max(1, int(workers))
    if workers == 1 or n == 1:
        return [Shard(0, n)]
    total = float(sum(weights))
    shards: List[Shard] = []
    start = 0
    remaining = total
    for w in range(workers, 0, -1):
        if start >= n:
            break
        if w == 1 or n - start <= 1:
            shards.append(Shard(start, n))
            start = n
            break
        if n - start <= w:
            # one segment per remaining shard
            for i in range(start, n):
                shards.append(Shard(i, i + 1))
            start = n
            break
        target = remaining / w
        acc = 0.0
        stop = start
        # close the shard at the first index where the accumulated weight
        # reaches the remaining average, but always take at least one
        # segment and leave at least one per remaining shard
        max_stop = n - (w - 1)
        while stop < max_stop and (acc < target or stop == start):
            acc += float(weights[stop])
            stop += 1
        shards.append(Shard(start, stop))
        remaining -= acc
        start = stop
    return shards


def build_weight(size: int, is_leaf: bool, base: int) -> float:
    """Predicted build cost of one segment: quadratic brute force for
    leaves, near-linear separator search (sampling + sphere tests, with a
    per-segment SVD constant) for active segments."""
    m = float(size)
    if is_leaf:
        return m * m
    return 4.0 * m + 256.0


def correct_weight(size: int) -> float:
    """Predicted correction cost of one internal segment (classification
    and marching are near-linear in the node size)."""
    return float(size) + 32.0
