"""Shared-memory numpy array lifecycle for the multiprocess engine.

The master process owns every segment: :class:`SharedArray.create` (or
``create_from``) allocates a named POSIX shared-memory block and wraps it
as a numpy array; its picklable :class:`ShmSpec` travels to workers, which
:func:`attach` to the same block zero-copy.  Ownership rules:

- the **master** creates, and at run end closes *and unlinks*, every
  block (:meth:`SharedArray.destroy`); unlink runs even when live numpy
  views make ``mmap.close()`` raise ``BufferError``, so ``/dev/shm``
  never accumulates segments;
- **workers** only attach.  Python 3.11's ``SharedMemory`` registers the
  block with the resource tracker on attach as well as on create; worker
  processes inherit the *master's* tracker, where the re-registration is
  an idempotent set-add, and the master's ``unlink`` deregisters exactly
  once — so :func:`attach` must *not* deregister (doing so would strip
  the master's own registration and make its later ``unlink`` log a
  tracker ``KeyError``).  Worker-side mappings are released by process
  exit; workers never close explicitly (their numpy views stay alive for
  the whole run).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

__all__ = ["ShmSpec", "SharedArray", "attach"]

#: Prefix of every segment this package creates — lets tests (and
#: operators) audit ``/dev/shm`` for leaks attributable to us.
SHM_PREFIX = "repro_mp_"


@dataclass(frozen=True)
class ShmSpec:
    """Picklable handle to a shared array: name + layout."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArray:
    """A master-owned shared-memory block viewed as a numpy array."""

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype) -> None:
        self._shm = shm
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)

    @classmethod
    def create(cls, shape, dtype) -> "SharedArray":
        """Allocate a zero-size-safe block sized for ``shape``/``dtype``."""
        nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes), name=SHM_PREFIX + secrets.token_hex(8)
        )
        return cls(shm, shape, dtype)

    @classmethod
    def create_from(cls, arr: np.ndarray) -> "SharedArray":
        """Allocate and fill with a copy of ``arr``."""
        out = cls.create(arr.shape, arr.dtype)
        out.array[...] = arr
        return out

    @property
    def spec(self) -> ShmSpec:
        return ShmSpec(name=self._shm.name, shape=self.shape, dtype=self.dtype.str)

    def destroy(self) -> None:
        """Close and unlink; safe to call twice.

        Unlink is attempted unconditionally — even when an outstanding
        numpy view makes ``close()`` raise ``BufferError`` — so the
        ``/dev/shm`` entry is removed as long as the process reaches this
        call.  The mapping itself is released at interpreter exit.
        """
        self.array = None
        try:
            self._shm.close()
        except BufferError:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def attach(spec: ShmSpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Worker-side attach: map the master's block, return ``(shm, view)``.

    The caller must keep the returned ``shm`` object alive as long as the
    view is used; dropping it closes the mapping under the array.
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, view
