"""repro.parallel — real multi-core execution of the frontier engine.

The paper's algorithm is an *n-processor* algorithm; the PVM ledger
simulates that machine, and the frontier engine already executes in the
level-synchronous shape the ledger accounts for.  This package closes the
last gap with a coarse-grained two-phase execution, selected as
``engine="frontier-mp"`` (with ``workers=N``) anywhere an engine is
accepted — :class:`~repro.core.config.CommonConfig`, the
:mod:`repro.api` facade, and the CLI's ``--engine/--workers``:

1. the master runs the serial frontier recursion only until the planner
   yields ``~3× workers`` balanced subtrees, then ships each subtree
   *once* to a worker that solves it to completion locally against a
   resident shared-memory arena (no per-level round trips);
2. the master solves only the straddler/boundary correction set above
   the cut and replays the subtree accounting in serial order —
   bit-identical neighbors, tree and ledger for every worker count.

Layers (see ``docs/parallel.md`` for the architecture tour):

- :mod:`~repro.parallel.shm` — shared-memory array lifecycle (master
  creates/unlinks, workers attach);
- :mod:`~repro.parallel.plan` — the subtree cut target, solve-cost
  weights and the greedy LPT subtree→worker assignment (plus the
  contiguous shard planner used by the serving pool);
- :mod:`~repro.parallel.pool` — the persistent worker pool and its
  metered task protocol (pipelined per-worker queues, byte/time
  accounting);
- :mod:`~repro.parallel.kernels` — the worker-side ``solve_subtree``
  kernel (the unmodified serial code, run on whole subtrees);
- :mod:`~repro.parallel.engine` — the master-side orchestrators
  guaranteeing bit-identical results to the serial engines for any
  worker count.
"""

from .plan import (
    Shard,
    plan_shards,
    plan_subtree_assignment,
    subtree_target,
    subtree_weight,
)
from .pool import WorkerError, WorkerPool, resolve_workers
from .shm import SharedArray, ShmSpec

__all__ = [
    "Shard",
    "plan_shards",
    "plan_subtree_assignment",
    "subtree_target",
    "subtree_weight",
    "WorkerError",
    "WorkerPool",
    "resolve_workers",
    "SharedArray",
    "ShmSpec",
]
