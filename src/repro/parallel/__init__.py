"""repro.parallel — real multi-core execution of the frontier engine.

The paper's algorithm is an *n-processor* algorithm; the PVM ledger
simulates that machine, and the frontier engine already executes in the
level-synchronous shape the ledger accounts for.  This package closes the
last gap: it runs each frontier level's batches on actual OS worker
processes over shared-memory numpy buffers, selected as
``engine="frontier-mp"`` (with ``workers=N``) anywhere an engine is
accepted — :class:`~repro.core.config.CommonConfig`, the
:mod:`repro.api` facade, and the CLI's ``--engine/--workers``.

Layers (see ``docs/parallel.md`` for the architecture tour):

- :mod:`~repro.parallel.shm` — shared-memory array lifecycle (master
  creates/unlinks, workers attach);
- :mod:`~repro.parallel.plan` — contiguous, balance-weighted shard
  planning over a level's segments;
- :mod:`~repro.parallel.pool` — the persistent worker pool and its task
  protocol;
- :mod:`~repro.parallel.kernels` — worker-side shard kernels (the same
  frontier methods, run on shards);
- :mod:`~repro.parallel.engine` — the master-side orchestrators
  guaranteeing bit-identical results to the serial engines for any
  worker count.
"""

from .plan import Shard, plan_shards
from .pool import WorkerError, WorkerPool, resolve_workers
from .shm import SharedArray, ShmSpec

__all__ = [
    "Shard",
    "plan_shards",
    "WorkerError",
    "WorkerPool",
    "resolve_workers",
    "SharedArray",
    "ShmSpec",
]
