"""The frozen, query-only artifact of the serving layer.

A :class:`ServingIndex` wraps what the offline algorithms build — the
Section-6 partition tree, the k-neighborhood system, and (lazily) the
Section-3 :class:`~repro.core.query.NeighborhoodQueryStructure` — into a
single object that only *answers*:

- ``kind="knn"``: exact k nearest data points per query row, through the
  vectorized :func:`~repro.core.query_points.knn_query` descent;
- ``kind="covering"``: the data points whose k-NN ball contains each
  query row, through the vectorized
  :meth:`~repro.core.query.NeighborhoodQueryStructure.query_many` descent.

Both paths return canonical arrays (rows sorted by (distance, index) /
leaf storage order), so answers are bit-identical to the per-point
``NeighborhoodQueryStructure.query`` and single-row ``knn_query`` calls
whatever the batch composition — the property the batching and caching
layers above rely on.

A built index is *frozen*: it holds no machine, no RNG state that
queries consume, and pickles cleanly — :meth:`ServingIndex.save` /
:meth:`ServingIndex.load` snapshot it to disk, and
:meth:`ServingIndex.shm_snapshot` exports the large arrays as
shared-memory segments so a pool of worker processes can serve from one
copy without rebuilding (see :mod:`repro.serve.mp`).
"""

from __future__ import annotations

import pickle
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.fast_dnc import FastDnCConfig, parallel_nearest_neighborhood
from ..core.neighborhood import KNeighborhoodSystem
from ..core.partition_tree import PartitionNode
from ..core.query import NeighborhoodQueryStructure, QueryConfig
from ..core.query_points import knn_query
from ..geometry.points import as_points
from ..kernels.layout import FlatTree
from ..parallel.shm import SharedArray
from ..pvm.machine import Machine

__all__ = ["KINDS", "ServingIndex", "KnnResponse", "CoveringResponse"]

#: Request kinds a serving index can execute.
KINDS = ("knn", "covering")

#: Batched k-NN answer: ``(indices, sq_dists)``, each ``(m, k)``.
KnnResponse = Tuple[np.ndarray, np.ndarray]

#: Batched covering answer: parallel ``(rows, ball_ids)`` pair arrays.
CoveringResponse = Tuple[np.ndarray, np.ndarray]

BatchResponse = Union[KnnResponse, CoveringResponse]

_SNAPSHOT_VERSION = 1


class ServingIndex:
    """Built artifacts bundled for query serving (see module docstring).

    Parameters
    ----------
    points:
        (n, d) data points the tree's leaf indices refer to.
    tree:
        The partition tree built over ``points``.
    k:
        Default neighbors per query (requests may override).
    system:
        The offline k-neighborhood result over ``points``; required for
        ``kind="covering"`` (its balls are what the Section-3 structure
        indexes).
    structure:
        A pre-built neighborhood query structure; built lazily from
        ``system`` on first covering request when omitted.
    structure_seed:
        Seed for the lazy structure build (ignored when ``structure`` is
        given).
    version:
        The index version this snapshot freezes (0 for a plain offline
        build).  :meth:`repro.core.online.MutableIndex.snapshot` stamps
        its commit version here; the serving layer keys result caches on
        it so entries from one version can never answer for another, and
        :meth:`~repro.serve.mp.ServingPool.swap` carries it to workers.
    """

    def __init__(
        self,
        points: np.ndarray,
        tree: PartitionNode,
        k: int,
        system: Optional[KNeighborhoodSystem] = None,
        structure: Optional[NeighborhoodQueryStructure] = None,
        structure_seed: Optional[int] = 0,
        version: int = 0,
    ) -> None:
        self.points = as_points(points, min_points=1, dtype=None)
        self.tree = tree
        self.k = int(k)
        self.system = system
        self._structure = structure
        self._structure_seed = structure_seed
        self.version = int(version)
        # lazy FlatTree cache for knn descent; never pickled — each
        # process rebuilds it on first query (None for non-sphere trees)
        self._layout: Optional[FlatTree] = None
        self._layout_tried = False

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        k: int = 1,
        *,
        config: Optional[FastDnCConfig] = None,
        machine: Optional[Machine] = None,
        seed: object = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        kernels: Optional[str] = None,
        dtype: Optional[str] = None,
        with_structure: bool = False,
        structure_seed: Optional[int] = 0,
    ) -> "ServingIndex":
        """Run the offline fast algorithm once and freeze it for serving.

        ``engine``/``workers``/``kernels``/``dtype`` select the build
        engine, kernel backend and point-storage dtype exactly as in
        :func:`repro.api.all_knn`; the build charges ``machine`` (fresh
        ledger by default) but the returned index holds no machine.
        ``with_structure`` eagerly builds the Section-3 structure so the
        first covering request (or an mp snapshot) pays nothing.
        """
        pts = as_points(points, min_points=1, dtype=None)
        if machine is None:
            machine = Machine()
        if config is None:
            config = FastDnCConfig()
        if engine is not None and config.engine != engine:
            config = replace(config, engine=engine)
        if workers is not None and config.workers != workers:
            config = replace(config, workers=workers)
        if kernels is not None and config.kernels != kernels:
            config = replace(config, kernels=kernels)
        if dtype is not None and config.dtype != dtype:
            config = replace(config, dtype=dtype)
        res = parallel_nearest_neighborhood(pts, k, machine=machine, seed=seed, config=config)
        # store the run's own points (the dtype the tree was built over),
        # not the caller's array — with dtype="float32" they differ
        index = cls(
            res.system.points, res.tree, k, system=res.system,
            structure_seed=structure_seed,
        )
        if with_structure:
            index.structure  # noqa: B018 - builds and caches
        return index

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def d(self) -> int:
        return self.points.shape[1]

    @property
    def layout(self) -> Optional[FlatTree]:
        """Contiguous descent layout of the tree (lazy; ``None`` when the
        tree has non-sphere separators, in which case knn queries use the
        pointer-walking descent)."""
        if not self._layout_tried:
            self._layout = FlatTree.from_tree(self.tree)
            self._layout_tried = True
        return self._layout

    @property
    def structure(self) -> NeighborhoodQueryStructure:
        """The Section-3 structure over the index's k-NN balls (lazy)."""
        if self._structure is None:
            if self.system is None:
                raise ValueError(
                    "covering queries need the k-neighborhood system; "
                    "build the index with a system (ServingIndex.build does)"
                )
            self._structure = NeighborhoodQueryStructure(
                self.system.to_ball_system(),
                machine=None,
                seed=self._structure_seed,
                config=QueryConfig(),
            )
        return self._structure

    # -- execution ---------------------------------------------------------

    def resolve_k(self, k: Optional[int]) -> int:
        kk = self.k if k is None else int(k)
        if kk < 1:
            raise ValueError(f"k must be >= 1, got {kk}")
        return kk

    def execute(
        self, kind: str, queries: np.ndarray, k: Optional[int] = None
    ) -> BatchResponse:
        """Answer one batch of query points.

        ``kind="knn"`` returns ``(indices, sq_dists)`` of shape (m, k),
        rows sorted by (distance, index) and padded with (-1, inf) when
        ``k`` exceeds the data size.  ``kind="covering"`` returns the
        ``(rows, ball_ids)`` containment pairs of ``query_many``.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown request kind {kind!r}; choose from {KINDS}")
        qs = as_points(queries, dtype=None)
        if qs.shape[1] != self.d:
            raise ValueError(
                f"dimension mismatch: index is {self.d}-D, queries are {qs.shape[1]}-D"
            )
        if kind == "covering":
            if qs.shape[0] == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            rows, ids = self.structure.query_many(qs)
            # canonical order: query_many groups pairs by leaf; stable-sort
            # by row so the same pairs always serialize the same way (and
            # sharded executions concatenate to the exact serial arrays)
            order = np.argsort(rows, kind="stable")
            return rows[order], ids[order]
        kk = self.resolve_k(k)
        if qs.shape[0] == 0:
            return (
                np.empty((0, kk), dtype=np.int64),
                np.empty((0, kk), dtype=np.float64),
            )
        # k may exceed n: answer with every data point, pad the rest —
        # knn_query itself requires k <= n.
        eff = min(kk, self.n)
        idx, sq = knn_query(self.tree, self.points, qs, eff, layout=self.layout)
        if eff < kk:
            idx = np.pad(idx, ((0, 0), (0, kk - eff)), constant_values=-1)
            sq = np.pad(sq, ((0, 0), (0, kk - eff)), constant_values=np.inf)
        return idx, sq

    @staticmethod
    def split_response(kind: str, response: BatchResponse, m: int) -> List[Any]:
        """Slice a batch response into ``m`` per-request responses.

        knn rows become ``(indices_row, sq_dists_row)``; covering rows
        become the row's ball-id array (leaf storage order, exactly what
        the per-point ``query`` returns).
        """
        if kind == "knn":
            idx, sq = response
            return [(idx[i], sq[i]) for i in range(m)]
        rows, ids = response
        return [ids[rows == i] for i in range(m)]

    # -- snapshots ---------------------------------------------------------

    def _state(self) -> Dict[str, Any]:
        return {
            "version": _SNAPSHOT_VERSION,
            "k": self.k,
            "points": self.points,
            "tree": self.tree,
            "system": self.system,
            "structure": self._structure,
            "structure_seed": self._structure_seed,
            "index_version": self.version,
        }

    @classmethod
    def _from_state(cls, state: Dict[str, Any]) -> "ServingIndex":
        if state.get("version") != _SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported serving snapshot version {state.get('version')!r}"
            )
        return cls(
            state["points"],
            state["tree"],
            state["k"],
            system=state["system"],
            structure=state["structure"],
            structure_seed=state["structure_seed"],
            # absent in pre-1.6 snapshots, which were all version 0
            version=state.get("index_version", 0),
        )

    def save(self, path: str) -> None:
        """Pickle the frozen index (trees, arrays, optional structure)."""
        with open(path, "wb") as fh:
            pickle.dump(self._state(), fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "ServingIndex":
        """Reload an index saved by :meth:`save`."""
        with open(path, "rb") as fh:
            state = pickle.load(fh)
        return cls._from_state(state)

    def shm_snapshot(self) -> Tuple[Dict[str, Any], List[SharedArray]]:
        """Export the index for worker processes: big arrays as shared
        memory, the rest pickled.

        Returns ``(payload, arenas)``: ``payload`` is picklable and
        travels to every worker (see :func:`repro.serve.worker.serve_init`);
        ``arenas`` are the master-owned segments to :meth:`~repro.parallel.
        shm.SharedArray.destroy` when serving ends.  The structure (if
        built) rides along pickled — its ragged leaf arrays don't fit one
        segment, and shipping it beats rebuilding per worker.
        """
        arenas = [SharedArray.create_from(self.points)]
        meta: Dict[str, Any] = {
            "version": _SNAPSHOT_VERSION,
            "k": self.k,
            "points_spec": arenas[0].spec,
            "tree": self.tree,
            "structure": self._structure,
            "structure_seed": self._structure_seed,
            "system_specs": None,
            "system_k": None,
            "index_version": self.version,
        }
        if self.system is not None:
            nbr_idx = SharedArray.create_from(self.system.neighbor_indices)
            nbr_sq = SharedArray.create_from(self.system.neighbor_sq_dists)
            arenas += [nbr_idx, nbr_sq]
            meta["system_specs"] = (nbr_idx.spec, nbr_sq.spec)
            meta["system_k"] = self.system.k
        return meta, arenas
