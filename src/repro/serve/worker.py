"""Worker-process side of multiprocess serving.

Three kernels, dispatched through the same :class:`~repro.parallel.pool.
WorkerPool` protocol the frontier engine uses (registered in
:data:`repro.parallel.kernels.KERNELS` as ``serve_init`` /
``serve_shard`` / ``serve_stats``):

- :func:`serve_init` (broadcast once per pool) receives the master's
  :meth:`~repro.serve.index.ServingIndex.shm_snapshot` payload, attaches
  the shared arrays zero-copy and reconstructs a worker-local
  :class:`~repro.serve.index.ServingIndex` over the views;
- :func:`serve_shard` answers one contiguous row range of a batch whose
  query array also travels by shared memory, folding its execute wall
  time into a worker-local latency histogram;
- :func:`serve_stats` (broadcast) returns that histogram *and resets
  it*, so the master can merge per-worker distributions into its own
  registry (``serve.pool_shard_ms``) without ever double-counting.

Ownership follows :mod:`repro.parallel.shm`: the master creates and
destroys every segment; workers only attach, and keep the handles alive
in module state for the lifetime of the run.  Per-row answers are
independent of batch composition (see :mod:`repro.serve.index`), so a
sharded execution concatenated in shard order is bit-identical to the
serial one for every worker count.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..core.neighborhood import KNeighborhoodSystem
from ..obs.metrics import Histogram
from ..parallel.shm import attach
from .index import ServingIndex

__all__ = ["serve_init", "serve_shard", "serve_stats"]

_INDEX: Optional[ServingIndex] = None
_HANDLES: List[Any] = []  # keep attached SharedMemory objects alive
_SHARD_MS = Histogram()  # per-shard execute wall, collected via serve_stats


def serve_init(payload: Dict[str, Any]) -> bool:
    """Install this worker's serving index from a master shm snapshot.

    Re-broadcast on every :meth:`~repro.serve.mp.ServingPool.swap`: the
    previous index's handles are closed before the new ones attach, so a
    long-lived worker never accumulates segments across versions.
    """
    global _INDEX
    _INDEX = None  # drop views into the old segments before closing them
    for shm in _HANDLES:
        shm.close()
    _HANDLES.clear()

    def view(spec):
        shm, arr = attach(spec)
        _HANDLES.append(shm)
        return arr

    points = view(payload["points_spec"])
    system = None
    if payload["system_specs"] is not None:
        idx_spec, sq_spec = payload["system_specs"]
        system = KNeighborhoodSystem(
            points, payload["system_k"], view(idx_spec), view(sq_spec)
        )
    _INDEX = ServingIndex(
        points,
        payload["tree"],
        payload["k"],
        system=system,
        structure=payload["structure"],
        structure_seed=payload["structure_seed"],
        version=payload.get("index_version", 0),
    )
    return True


def serve_shard(payload: Dict[str, Any]) -> Any:
    """Answer rows ``[lo, hi)`` of the shared query array.

    Returns the shard's :data:`~repro.serve.index.BatchResponse`;
    covering row indices are shard-local (the master offsets by ``lo``).
    The query segment is attached per call and closed before returning —
    the master destroys it as soon as the batch completes.
    """
    if _INDEX is None:
        raise RuntimeError("serve_shard before serve_init")
    shm, queries = attach(payload["queries_spec"])
    try:
        shard = queries[payload["lo"] : payload["hi"]].copy()
    finally:
        del queries
        shm.close()
    t0 = time.perf_counter()
    result = _INDEX.execute(payload["kind"], shard, payload["k"])
    _SHARD_MS.observe((time.perf_counter() - t0) * 1e3)
    return result


def serve_stats(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Return this worker's shard-latency histogram and reset it.

    Return-and-reset makes collection idempotent from the master's side:
    every observation is handed over exactly once, so merging the
    returned histograms into the master registry — however often the
    master asks — never double-counts a shard.
    """
    global _SHARD_MS
    out = _SHARD_MS.to_dict()
    _SHARD_MS = Histogram(_SHARD_MS.bounds)
    return out
