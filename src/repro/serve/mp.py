"""Multiprocess serving: fan batches across a persistent worker pool.

A :class:`ServingPool` reuses the :mod:`repro.parallel` machinery — the
:class:`~repro.parallel.pool.WorkerPool` task protocol and the
:mod:`~repro.parallel.shm` shared-memory arena — for the online side:
the master exports its :class:`~repro.serve.index.ServingIndex` once as
an shm snapshot (``serve_init`` broadcast), and every batch then travels
as one shared query array that workers answer in contiguous row shards
(``serve_shard``).

``ServingPool.execute`` has the same signature and bit-identical output
as ``ServingIndex.execute`` for every worker count: per-row answers are
independent of batch composition, and shards merge in row order.  It
plugs straight into :class:`~repro.serve.batcher.Batcher` as the
executor, giving the batching/caching layer a multi-core backend.

Metrics (``serve.pool_workers``, ``serve.pool_batches``,
``serve.pool_busy_seconds``) land in the machine registry the caller
passes, next to the batcher's ``serve.*`` stats — and
:meth:`ServingPool.collect_worker_stats` folds every worker's
shard-latency histogram into the master registry as
``serve.pool_shard_ms`` (the ``serve_stats`` kernel hands observations
over exactly once, so collection is safe to repeat).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..obs.metrics import Histogram
from ..parallel.pool import WorkerPool, resolve_workers
from ..parallel.shm import SharedArray
from ..pvm.machine import Machine
from .index import BatchResponse, ServingIndex

__all__ = ["ServingPool"]


class ServingPool:
    """A worker pool serving batches against a snapshot of one index.

    Parameters
    ----------
    index:
        The frozen index to snapshot and serve from.  For covering
        requests, build (or load) it with the structure present — the
        snapshot ships the structure, never rebuilds it per worker.
    workers:
        Worker-process count (``None`` = one per CPU).
    start_method:
        Forwarded to :class:`~repro.parallel.pool.WorkerPool`.
    machine:
        Optional machine whose metrics registry receives pool gauges.
    min_shard:
        Smallest per-worker shard worth dispatching; tiny batches use
        fewer workers rather than paying per-task overhead for empty
        slices.
    """

    def __init__(
        self,
        index: ServingIndex,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        machine: Optional[Machine] = None,
        min_shard: int = 64,
    ) -> None:
        self.index = index
        self.workers = resolve_workers(workers)
        self.machine = machine
        self.min_shard = max(1, int(min_shard))
        # snapshot BEFORE forking: the first SharedMemory use starts the
        # resource-tracker process, and workers must inherit that tracker
        # (a worker-spawned tracker would hold attach registrations the
        # master's unlink can never clear)
        self._pool: Optional[WorkerPool] = None
        payload, self._arenas = index.shm_snapshot()
        try:
            self._pool = WorkerPool(self.workers, start_method)
            self._pool.broadcast("serve_init", payload)
        except Exception:
            self.close()
            raise
        if machine is not None:
            machine.metrics.set_gauge("serve.pool_workers", self.workers)

    @property
    def closed(self) -> bool:
        return self._pool is None

    def execute(
        self, kind: str, queries: np.ndarray, k: Optional[int] = None
    ) -> BatchResponse:
        """Answer one batch by sharding rows across the pool.

        Bit-identical to ``self.index.execute(kind, queries, k)`` for
        every worker count; raises once the pool is closed.
        """
        if self._pool is None:
            raise RuntimeError("serving pool is closed")
        qs = np.ascontiguousarray(queries, dtype=np.float64)
        m = qs.shape[0]
        shards = self._shard_bounds(m)
        if m == 0 or len(shards) <= 1:
            # not worth a dispatch: answer on the master (same result)
            return self.index.execute(kind, qs, k)
        arena = SharedArray.create_from(qs)
        try:
            payloads = [
                {
                    "queries_spec": arena.spec,
                    "lo": lo,
                    "hi": hi,
                    "kind": kind,
                    "k": k,
                }
                for lo, hi in shards
            ]
            tasks = self._pool.run_tasks("serve_shard", payloads)
        finally:
            arena.destroy()
        if self.machine is not None:
            self.machine.metrics.inc("serve.pool_batches")
            self.machine.metrics.inc(
                "serve.pool_busy_seconds", sum(t.elapsed for t in tasks)
            )
        responses = [t.result for t in tasks]
        if kind == "covering":
            rows = np.concatenate(
                [r + lo for (r, _), (lo, _) in zip(responses, shards)]
            )
            ids = np.concatenate([ids for _, ids in responses])
            return rows, ids
        idx = np.concatenate([r[0] for r in responses], axis=0)
        sq = np.concatenate([r[1] for r in responses], axis=0)
        return idx, sq

    def _shard_bounds(self, m: int) -> List[tuple]:
        """Contiguous, near-even row shards; capped so none is tinier
        than ``min_shard`` (except the only shard of a small batch)."""
        if m == 0:
            return []
        width = max(self.min_shard, -(-m // self.workers))
        bounds = []
        lo = 0
        while lo < m:
            hi = min(m, lo + width)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    # -- hot swap ----------------------------------------------------------

    def swap(self, index: ServingIndex) -> None:
        """Re-seed every worker with a new index version, zero downtime.

        The new snapshot is exported and broadcast *before* the old
        arenas are destroyed, so there is no window in which a worker
        holds views into freed memory: ``serve_init`` installs the new
        index (closing that worker's old handles) and only once every
        worker has acknowledged does the master release the old
        segments.  Batches are never in flight during the call — the
        :class:`~repro.serve.batcher.Batcher` flushes before swapping —
        so no shard mixes versions.

        On broadcast failure the new arenas are released and the pool
        keeps serving the old index.
        """
        if self._pool is None:
            raise RuntimeError("serving pool is closed")
        payload, arenas = index.shm_snapshot()
        try:
            self._pool.broadcast("serve_init", payload)
        except Exception:
            for arena in arenas:
                arena.destroy()
            raise
        old = self._arenas
        self._arenas = arenas
        self.index = index
        for arena in old:
            arena.destroy()

    # -- worker telemetry --------------------------------------------------

    def collect_worker_stats(self) -> Optional[Histogram]:
        """Drain every worker's shard-latency histogram into the master.

        Broadcasts the ``serve_stats`` kernel (return-and-reset, so
        repeated calls never double-count), merges the per-worker
        histograms, folds the merge into the machine registry as
        ``serve.pool_shard_ms`` (when a machine is bound), and returns
        the merged histogram for this collection round.  ``None`` once
        the pool is closed.
        """
        if self._pool is None:
            return None
        merged: Optional[Histogram] = None
        for data in self._pool.broadcast("serve_stats", None):
            hist = Histogram.from_dict(data)
            if merged is None:
                merged = Histogram(hist.bounds)
            merged.merge(hist)
        if merged is not None and self.machine is not None:
            self.machine.metrics.histogram(
                "serve.pool_shard_ms", merged.bounds
            ).merge(merged)
        return merged

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and release every shm segment; idempotent.

        Safe mid-stream: any batch not yet dispatched is simply never
        executed (the owning :class:`~repro.serve.batcher.Batcher` drops
        its queue on ``close(flush=False)``), and no segment or process
        outlives the call.  Worker shard histograms are drained first so
        their observations survive in ``serve.pool_shard_ms``.
        """
        if self._pool is not None:
            try:
                self.collect_worker_stats()
            except Exception:
                pass  # shutting down regardless; stats are best-effort here
            self._pool.close()
            self._pool = None
        for arena in self._arenas:
            arena.destroy()
        self._arenas = []

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
