"""Micro-batching request queue over a :class:`~repro.serve.index.ServingIndex`.

Single-point requests are cheap to answer but expensive to answer *one
at a time*: every call pays the full descent machinery for one row.  The
:class:`Batcher` collects requests into batches of up to ``max_batch``
points (or whatever has accumulated after ``max_wait_ms``) and executes
them through the vectorized batch descent, amortizing the fixed costs —
the same build-once/query-many split ParGeo's batched query layers
exploit.

The batcher is deliberately synchronous and single-threaded: ``submit``
returns a :class:`Ticket` immediately, and tickets are fulfilled when a
batch executes — on the ``submit`` that fills the batch, on a ``poll``
whose oldest request has waited past ``max_wait_ms``, or on an explicit
``flush``.  Determinism is the point: given the same request stream and
knobs, the same batches execute in the same order, and because batch
answers are bit-identical to per-point answers (see
:mod:`repro.serve.index`), the knobs can never change a result — only
the wall-clock.

An optional :class:`~repro.serve.cache.ResultCache` short-circuits
repeated points before they reach the queue; an optional
:class:`~repro.pvm.machine.Machine` records ``serve.batch`` spans (when
traced) and receives the ``serve.*`` metrics.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..obs.metrics import MetricsView
from ..pvm.machine import Machine
from .cache import ResultCache
from .index import BatchResponse, ServingIndex

__all__ = ["Batcher", "ServeStats", "Ticket"]

#: Executes one batch: ``(kind, queries, k) -> BatchResponse``.  The
#: default is ``ServingIndex.execute``; :class:`~repro.serve.mp.
#: ServingPool` provides the multiprocess one.
Executor = Callable[[str, np.ndarray, Optional[int]], BatchResponse]


class ServeStats(MetricsView):
    """Serving metrics, namespaced ``serve.*`` in the metrics registry.

    Counters: ``requests`` (accepted), ``served`` (fulfilled through an
    executed batch), ``batches``, ``cache_hits``, ``cache_misses``,
    ``swaps`` (hot index swaps absorbed mid-stream), ``dropped``
    (tickets abandoned by a no-flush shutdown).
    Gauges: ``queue_depth`` (pending requests right now), ``qps``
    (served+cached requests over the wall-clock since the first submit),
    ``last_batch_ms``, ``index_version`` (the version currently served).
    Series: ``queue_depth_flush`` — the queue depth sampled at each
    batch-flush trigger (what the adaptive batching controller and the
    sinks see as the *served* depth distribution, as opposed to the
    instantaneous gauge).
    Histograms: ``batch_ms`` (execute wall per batch), ``queue_wait_ms``
    (submit-to-execute-start per ticket), ``request_ms``
    (submit-to-fulfill per ticket, cache hits included at ~0) — the
    server-side latency distributions p50/p95/p99 are computed from.
    """

    _NS = "serve"
    _COUNTER_FIELDS = (
        "requests",
        "served",
        "batches",
        "cache_hits",
        "cache_misses",
        "swaps",
        "dropped",
    )
    _GAUGE_FIELDS = ("queue_depth", "qps", "last_batch_ms", "index_version")
    _SERIES_FIELDS = ("queue_depth_flush",)
    _HISTOGRAM_FIELDS = ("batch_ms", "queue_wait_ms", "request_ms")


class Ticket:
    """One accepted request: filled in when its batch executes.

    ``value`` is the per-request response (``(indices, sq_dists)`` rows
    for knn, a ball-id array for covering); reading it before ``done``
    raises.  ``submitted_at``/``completed_at`` are clock readings for
    latency accounting; ``cached`` marks cache hits (fulfilled on
    submit).  ``batch_id``/``batch_size``/``execute_ms`` identify the
    batch that answered (``None`` until fulfilled, and forever for cache
    hits) so request timelines can attribute queue vs execute time.
    """

    __slots__ = (
        "done", "cached", "submitted_at", "completed_at", "_value",
        "batch_id", "batch_size", "execute_ms",
    )

    def __init__(self, submitted_at: float) -> None:
        self.done = False
        self.cached = False
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None
        self._value: Any = None
        self.batch_id: Optional[int] = None
        self.batch_size: Optional[int] = None
        self.execute_ms: Optional[float] = None

    @property
    def value(self) -> Any:
        if not self.done:
            raise RuntimeError("ticket not fulfilled yet; flush() the batcher")
        return self._value

    def _fulfill(self, value: Any, now: float, cached: bool = False) -> None:
        self._value = value
        self.done = True
        self.cached = cached
        self.completed_at = now

    @property
    def latency_s(self) -> float:
        """Submit-to-fulfill wall seconds (raises before fulfillment)."""
        if self.completed_at is None:
            raise RuntimeError("ticket not fulfilled yet")
        return self.completed_at - self.submitted_at


class Batcher:
    """Collects point requests and serves them in vectorized batches.

    Parameters
    ----------
    index:
        The frozen serving artifact.
    kind:
        Request kind every submit uses, ``"knn"`` or ``"covering"``.
    k:
        Neighbors per knn request (default: the index's ``k``).
    max_batch:
        Execute as soon as this many requests are pending.
    max_wait_ms:
        A ``poll()`` executes the pending batch once its *oldest* request
        has waited this long; ``None`` means only ``max_batch``/``flush``
        trigger execution.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    machine:
        Optional machine whose tracer records ``serve.batch`` spans and
        whose metrics registry receives the ``serve.*`` stats.
    executor:
        Batch executor override; defaults to ``pool.execute`` when a
        ``pool`` is given, else ``index.execute``.
    pool:
        Optional :class:`~repro.serve.mp.ServingPool` the batcher owns:
        batches fan out across its workers and ``close()`` shuts it down.
    clock:
        Monotonic-seconds source, injectable for tests.
    """

    def __init__(
        self,
        index: ServingIndex,
        *,
        kind: str = "knn",
        k: Optional[int] = None,
        max_batch: int = 256,
        max_wait_ms: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        machine: Optional[Machine] = None,
        executor: Optional[Executor] = None,
        pool: Optional[Any] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms is not None and max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.index = index
        self.kind = kind
        self.k = index.resolve_k(k) if kind == "knn" else index.k
        self.max_batch = int(max_batch)
        self.max_wait_ms = max_wait_ms
        self.cache = cache
        self.machine = machine
        self.pool = pool
        if executor is not None:
            self.executor: Executor = executor
        elif pool is not None:
            self.executor = pool.execute
        else:
            self.executor = index.execute
        self.clock = clock
        self.stats = ServeStats(metrics=machine.metrics if machine is not None else None)
        self.stats.index_version = index.version
        self._queue_points: List[np.ndarray] = []
        self._queue_tickets: List[Ticket] = []
        self._first_submit: Optional[float] = None
        self._batch_seq = 0
        self._closed = False
        if kind not in ("knn", "covering"):
            raise ValueError(f"unknown request kind {kind!r}")

    # -- intake ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests queued but not yet executed."""
        return len(self._queue_tickets)

    def submit(self, point: np.ndarray) -> Ticket:
        """Accept one query point; returns its :class:`Ticket`.

        Cache hits fulfill immediately; otherwise the point queues, and
        reaching ``max_batch`` executes the batch before returning.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        p = np.ascontiguousarray(point, dtype=np.float64)
        if p.ndim != 1 or p.shape[0] != self.index.d:
            raise ValueError(f"expected a ({self.index.d},) point, got shape {p.shape}")
        now = self.clock()
        if self._first_submit is None:
            self._first_submit = now
        self.stats.requests += 1
        ticket = Ticket(now)
        if self.cache is not None:
            key = self.cache.make_key(self.kind, self.k, p, self.index.version)
            hit = self.cache.get(key)
            if hit is not None:
                ticket._fulfill(hit, now, cached=True)
                self.stats.cache_hits += 1
                self.stats.request_ms.observe(0.0)
                self._update_qps(now)
                return ticket
            self.stats.cache_misses += 1
        self._queue_points.append(p)
        self._queue_tickets.append(ticket)
        self.stats.queue_depth = self.pending
        if self.pending >= self.max_batch:
            self.flush()
        return ticket

    def submit_many(self, points: np.ndarray) -> List[Ticket]:
        """Submit each row of ``points``; batches execute as they fill."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"expected (m, d) points, got shape {pts.shape}")
        return [self.submit(row) for row in pts]

    # -- execution ---------------------------------------------------------

    def poll(self) -> int:
        """Execute the pending batch if its oldest request has waited
        past ``max_wait_ms``; returns the number of requests served."""
        if (
            self.max_wait_ms is None
            or not self._queue_tickets
            or (self.clock() - self._queue_tickets[0].submitted_at) * 1e3 < self.max_wait_ms
        ):
            return 0
        return self.flush()

    def flush(self) -> int:
        """Execute everything pending (in ``max_batch`` chunks); returns
        the number of requests served.  A no-op on an empty queue."""
        served = 0
        if self._queue_tickets:
            # sample the depth at the flush trigger (before executing):
            # the distribution of served batch sizes, exported as the
            # serve.queue_depth_flush series through both sinks
            self.stats.queue_depth = self.pending
            self.stats.queue_depth_flush.append(self.pending)
        while self._queue_tickets:
            chunk = min(self.max_batch, len(self._queue_tickets))
            points = self._queue_points[:chunk]
            tickets = self._queue_tickets[:chunk]
            del self._queue_points[:chunk]
            del self._queue_tickets[:chunk]
            self._execute(np.stack(points), tickets)
            served += chunk
        self.stats.queue_depth = self.pending
        return served

    def _execute(self, batch: np.ndarray, tickets: Sequence[Ticket]) -> None:
        m = batch.shape[0]
        t0 = self.clock()
        if self.machine is not None and self.machine.tracer is not None:
            with self.machine.span(
                "serve.batch", n=m, kind=self.kind, k=self.k, pending=self.pending
            ):
                response = self.executor(self.kind, batch, self.k)
        else:
            response = self.executor(self.kind, batch, self.k)
        now = self.clock()
        per_request = self.index.split_response(self.kind, response, m)
        self._batch_seq += 1
        execute_ms = (now - t0) * 1e3
        self.stats.batch_ms.observe(execute_ms)
        for point, ticket, value in zip(batch, tickets, per_request):
            ticket._fulfill(value, now)
            ticket.batch_id = self._batch_seq
            ticket.batch_size = m
            ticket.execute_ms = execute_ms
            self.stats.queue_wait_ms.observe(max(0.0, (t0 - ticket.submitted_at) * 1e3))
            self.stats.request_ms.observe(max(0.0, (now - ticket.submitted_at) * 1e3))
            if self.cache is not None:
                self.cache.put(
                    self.cache.make_key(self.kind, self.k, point, self.index.version),
                    value,
                )
        self.stats.batches += 1
        self.stats.served += m
        self.stats.last_batch_ms = execute_ms
        self._update_qps(now)

    # -- hot swap ----------------------------------------------------------

    def swap_index(self, index: ServingIndex) -> int:
        """Atomically switch serving to a new index version, zero downtime.

        The pending queue is flushed against the *old* index first — a
        request accepted under version ``v`` is always answered by
        version ``v``, so no ticket ever sees a torn read.  Requests
        submitted after this call are answered by the new index, and the
        version-keyed cache guarantees no stale entry can match them.

        When the batcher drives a :class:`~repro.serve.mp.ServingPool`
        (and the executor wasn't overridden), the pool's workers are
        re-seeded via :meth:`~repro.serve.mp.ServingPool.swap` before the
        batcher rebinds; with the default in-process executor the rebind
        alone suffices.  A custom ``executor`` is left untouched — the
        caller owns its lifecycle.

        Returns the number of pending requests flushed against the old
        index.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        if index.d != self.index.d:
            raise ValueError(
                f"dimension mismatch: serving {self.index.d}-D, new index is {index.d}-D"
            )
        if self.kind == "covering" and index.system is None:
            raise ValueError("covering batcher needs an index with a k-neighborhood system")
        flushed = self.flush()
        old = self.index
        if self.pool is not None:
            self.pool.swap(index)
        if self.executor == old.execute:  # default executor follows the index
            self.executor = index.execute
        self.index = index
        self.stats.swaps += 1
        self.stats.index_version = index.version
        if self.cache is not None:
            # stale entries could never *match* again (keys carry the
            # version), but they would occupy LRU slots until they age
            # out — evict them eagerly so repeated swaps stay bounded
            # by live entries, not by capacity times version count
            self.cache.evict_stale(index.version)
        return flushed

    def _update_qps(self, now: float) -> None:
        answered = self.stats.served + self.stats.cache_hits
        if self._first_submit is None or answered == 0:
            return
        elapsed = now - self._first_submit
        self.stats.qps = answered / elapsed if elapsed > 0 else float("inf")

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, flush: bool = True) -> None:
        """Stop accepting requests; by default serve what's pending first.

        With ``flush=False`` pending tickets stay unfulfilled (the
        mid-stream shutdown path) — the queue is dropped, never half-run.
        The dropped count lands in the ``serve.dropped`` counter, and the
        ``queue_depth`` gauge is deliberately *left alone*: zeroing it
        here made a mid-drain ``/metrics`` scrape report an empty queue
        while tickets were still being abandoned.  The drain protocol
        clears the gauge once the whole shutdown has completed
        (:func:`repro.net.drain.drain`).
        """
        if self._closed:
            return
        if flush:
            self.flush()
        else:
            self.stats.dropped += self.pending
            self._queue_points.clear()
            self._queue_tickets.clear()
        self._closed = True
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "Batcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close(flush=exc == (None, None, None))
