"""Versioned snapshot registry: the publication side of online updates.

A :class:`~repro.core.online.MutableIndex` produces a new immutable
:class:`~repro.serve.index.ServingIndex` snapshot per commit, each
stamped with a monotonically increasing version.  The
:class:`SnapshotRegistry` is the hand-off point between that update loop
and the serving plane:

- the updater ``publish()``-es each commit's snapshot;
- serving components read ``latest`` (or pin an explicit ``get(version)``)
  and hot-swap via :meth:`~repro.serve.batcher.Batcher.swap_index` /
  :meth:`~repro.serve.mp.ServingPool.swap`;
- a bounded history (``capacity``) keeps recent versions alive so
  in-flight readers pinned to an older snapshot stay valid — snapshots
  are copy-on-write and immutable, so retention is just references, not
  copies.

The registry is deliberately passive: it never swaps anything itself.
Publication and adoption are separate steps, which is what makes the
swap atomic per consumer — each Batcher/pool moves from one complete
version to another, never through a half-state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, List, Optional

from .index import ServingIndex

__all__ = ["SnapshotRegistry"]


class SnapshotRegistry:
    """Bounded, thread-safe map from index version to published snapshot.

    Parameters
    ----------
    capacity:
        Most recent versions retained (>= 1).  Publishing past capacity
        drops the oldest retained version; the latest is never dropped.

    Examples
    --------
    >>> from repro.core.online import MutableIndex
    >>> import numpy as np
    >>> idx = MutableIndex(np.random.default_rng(0).random((64, 2)), k=1)
    >>> reg = SnapshotRegistry()
    >>> reg.publish(idx.snapshot())
    0
    >>> idx.insert(np.random.default_rng(1).random((2, 2)))
    2
    >>> _ = idx.commit()
    >>> reg.publish(idx.snapshot())
    1
    >>> reg.latest.version
    1
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._snapshots: "OrderedDict[int, ServingIndex]" = OrderedDict()
        self._subscribers: List[Callable[[ServingIndex], None]] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def publish(self, snapshot: ServingIndex) -> int:
        """Register a snapshot under its own version; returns the version.

        Versions must arrive strictly increasing — commits are ordered,
        and a stale republication would silently roll the serving plane
        back.  Subscribers registered via :meth:`subscribe` are notified
        (outside the lock) after the snapshot is visible.
        """
        version = snapshot.version
        with self._lock:
            if self._snapshots:
                newest = next(reversed(self._snapshots))
                if version <= newest:
                    raise ValueError(
                        f"version {version} already published (latest is {newest}); "
                        "publish each commit's snapshot exactly once, in order"
                    )
            self._snapshots[version] = snapshot
            while len(self._snapshots) > self.capacity:
                self._snapshots.popitem(last=False)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(snapshot)
        return version

    @property
    def latest(self) -> ServingIndex:
        """The most recently published snapshot (raises when empty)."""
        with self._lock:
            if not self._snapshots:
                raise LookupError("no snapshot published yet")
            return next(reversed(self._snapshots.values()))

    @property
    def latest_version(self) -> Optional[int]:
        """The newest published version, or ``None`` when empty."""
        with self._lock:
            return next(reversed(self._snapshots)) if self._snapshots else None

    def get(self, version: Optional[int] = None) -> ServingIndex:
        """The snapshot for ``version`` (default: latest).

        Raises :class:`LookupError` when the version was never published
        or has aged past ``capacity``.
        """
        if version is None:
            return self.latest
        with self._lock:
            try:
                return self._snapshots[version]
            except KeyError:
                raise LookupError(
                    f"version {version} not retained "
                    f"(have {sorted(self._snapshots)})"
                ) from None

    def versions(self) -> List[int]:
        """Retained versions, oldest first."""
        with self._lock:
            return list(self._snapshots)

    def subscribe(self, fn: Callable[[ServingIndex], None]) -> Callable[[], None]:
        """Call ``fn(snapshot)`` on every future publish; returns an
        unsubscribe callable.

        The typical subscriber adopts the new version into a serving
        stack: ``reg.subscribe(batcher.swap_index)``.  Callbacks run on
        the publishing thread, after the registry state is updated.
        """
        with self._lock:
            self._subscribers.append(fn)

        def unsubscribe() -> None:
            with self._lock:
                if fn in self._subscribers:
                    self._subscribers.remove(fn)

        return unsubscribe

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotRegistry(versions={self.versions()}, capacity={self.capacity})"
