"""LRU result cache for the serving layer.

Serving workloads repeat themselves: the same hot query points arrive
again and again, and the answers — exact k-NN lists or covering-ball
sets over a *frozen* index version — never change.  :class:`ResultCache`
stores per-point responses keyed on the query point's bytes (plus the
request kind, ``k``, and the serving index's commit version), evicting
least-recently-used entries past ``capacity``.  The version component
makes hot swaps safe: after :meth:`~repro.serve.batcher.Batcher.
swap_index` the old version's entries can no longer match and simply
age out.

Keys are exact by default: two points share an entry only when their
float64 representations are bit-equal, so a cache hit returns the exact
arrays a fresh execution would — serving stays bit-identical whatever
the cache state.  ``decimals`` optionally *quantizes* keys (rounding
coordinates to that many decimals before hashing) so near-duplicate
probes coalesce; that trades exactness for hit rate and is off unless a
deployment opts in.

Hit/miss counts live on the cache; the :class:`~repro.serve.batcher.
Batcher` mirrors them into its ``serve.cache_hits`` / ``serve.cache_misses``
metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

import numpy as np

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU map from (kind, k, query point) to a stored response.

    Parameters
    ----------
    capacity:
        Maximum number of entries; ``0`` disables storage (every lookup
        misses, which keeps the calling code uniform).
    decimals:
        ``None`` (default) keys on the exact float64 bytes of the point;
        an integer rounds coordinates to that many decimals first, so
        near-identical probes share an entry (approximate — see module
        docstring).
    """

    def __init__(self, capacity: int = 1024, decimals: Optional[int] = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.decimals = decimals
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[bytes, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def make_key(
        self, kind: str, k: Optional[int], point: np.ndarray, version: int = 0
    ) -> bytes:
        """The cache key for one request: kind + k + index version +
        (quantized) point bytes.

        ``version`` is the serving index's
        :attr:`~repro.serve.index.ServingIndex.version`.  Baking it into
        the key means entries computed against one committed index
        version can never answer a query after a hot swap — stale
        answers age out of the LRU instead of being served.
        """
        p = np.ascontiguousarray(point, dtype=np.float64)
        if self.decimals is not None:
            p = np.round(p, self.decimals) + 0.0  # +0.0 folds -0.0 into +0.0
        return f"{kind}:{k}:v{version}:".encode() + p.tobytes()

    def get(self, key: bytes) -> Any:
        """The stored response for ``key`` (marking it recently used), or
        ``None`` on a miss.  Counts the lookup either way."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, value: Any) -> None:
        """Store ``value`` (treated as immutable) under ``key``, evicting
        the least-recently-used entry when past capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def evict_stale(self, version: int) -> int:
        """Drop entries keyed to any index version other than ``version``;
        returns how many were evicted.

        Called by :meth:`~repro.serve.batcher.Batcher.swap_index` after a
        hot swap: version-keyed entries for older versions can never
        match again, so evicting them immediately keeps the cache's
        footprint bounded by *live* entries across arbitrarily many
        swaps instead of letting dead keys squat in the LRU.
        """
        tag = f"v{int(version)}".encode()
        stale = [key for key in self._entries if key.split(b":", 3)[2] != tag]
        for key in stale:
            del self._entries[key]
        return len(stale)

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups so far (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
