"""Query serving: the online side of build-once/query-many.

PRs 1–4 built the offline pipeline — construction engines, the
multiprocess backend, tracing, regression gates.  This subpackage serves
queries *after* construction, the Section-3 promise (O(k + log n) per
query) turned into a throughput story:

- :class:`~repro.serve.index.ServingIndex` — the frozen artifact:
  partition tree + k-neighborhood system + (lazily) the Section-3
  neighborhood query structure, answering ``knn`` and ``covering``
  batches bit-identically to the per-point paths; picklable
  (``save``/``load``) and shm-snapshotable for worker pools;
- :class:`~repro.serve.cache.ResultCache` — LRU result cache keyed on
  (optionally quantized) query-point bytes, with hit/miss counters;
- :class:`~repro.serve.batcher.Batcher` — the micro-batching request
  queue: collect up to ``max_batch`` (or ``max_wait_ms``), execute via
  the vectorized batch descent, fulfill per-request
  :class:`~repro.serve.batcher.Ticket` objects;
- :class:`~repro.serve.mp.ServingPool` — multiprocess serving over the
  :mod:`repro.parallel` pool + shared-memory arena;
- :class:`~repro.serve.registry.SnapshotRegistry` — versioned snapshot
  publication for online updates: :class:`~repro.core.online.MutableIndex`
  commits publish here, serving stacks hot-swap to ``latest`` with zero
  downtime (``Batcher.swap_index`` / ``ServingPool.swap``).

Entry points: :func:`repro.api.serve` builds the whole stack in one
call, and the ``repro serve`` CLI subcommand drives it over workload
files with latency/QPS reporting.  See ``docs/serving.md`` and
``docs/online_index.md``.
"""

from .batcher import Batcher, ServeStats, Ticket
from .cache import ResultCache
from .index import KINDS, ServingIndex
from .mp import ServingPool
from .registry import SnapshotRegistry

__all__ = [
    "Batcher",
    "KINDS",
    "ResultCache",
    "ServeStats",
    "ServingIndex",
    "ServingPool",
    "SnapshotRegistry",
    "Ticket",
]
