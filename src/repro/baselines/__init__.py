"""Comparator algorithms: brute force (ground truth), kd-tree (the good
sequential algorithm), and uniform-grid shell search (the expected-linear
Vaidya stand-in)."""

from .brute_force import brute_force_knn
from .grid import grid_knn
from .kdtree import KDTree, kdtree_knn

__all__ = ["brute_force_knn", "grid_knn", "KDTree", "kdtree_knn"]
