"""Brute-force all-k-nearest-neighbors — the ground truth oracle.

O(n^2 d) work, fully vectorized and chunked so the working set stays in
cache (per the optimization guides: one GEMM per chunk, squared distances
throughout, no Python loop over points).  Every other algorithm in the
repository is validated against this one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.points import (
    as_points,
    chunked_pairs,
    kth_smallest_per_row,
    pairwise_sq_dists,
    refine_selected_sq_dists,
)
from ..pvm.cost import Cost
from ..pvm.machine import Machine
from ..core.neighborhood import KNeighborhoodSystem

__all__ = ["brute_force_knn"]


def brute_force_knn(
    points: np.ndarray,
    k: int = 1,
    *,
    chunk: int = 1024,
    machine: Optional[Machine] = None,
) -> KNeighborhoodSystem:
    """Exact k-nearest lists by checking all pairs.

    Parameters
    ----------
    points:
        (n, d) inputs.
    k:
        Neighbors per point; ``k < n`` required for complete lists (larger
        k pads with -1/inf like the rest of the package).
    chunk:
        Row-block size for the distance GEMM.
    machine:
        Optional ledger; charged depth n (each processor scans all points
        serially — the trivial n-processor schedule), work n^2.
    """
    pts = as_points(points, min_points=1)
    n = pts.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if machine is not None:
        machine.charge(Cost(float(n), float(n) * float(n)))
    kk = min(k, max(0, n - 1))
    nbr_idx = np.full((n, k), -1, dtype=np.int64)
    nbr_sq = np.full((n, k), np.inf)
    if kk == 0:
        return KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
    for lo, hi in chunked_pairs(n, chunk):
        sq = pairwise_sq_dists(pts[lo:hi], pts)
        rows = np.arange(lo, hi)
        sq[rows - lo, rows] = np.inf  # exclude self
        idx, vals = kth_smallest_per_row(sq, kk)
        nbr_idx[lo:hi, :kk] = idx
        nbr_sq[lo:hi, :kk] = vals
    # replace GEMM-form distances (cancellation-prone for near-coincident
    # points far from the origin) with exact diff-based values
    nbr_idx, nbr_sq = refine_selected_sq_dists(pts, pts, nbr_idx, nbr_sq)
    return KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
