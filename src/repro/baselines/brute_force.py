"""Brute-force all-k-nearest-neighbors — the ground truth oracle.

O(n^2 d) work, fully vectorized and chunked so the working set stays in
cache (per the optimization guides: one GEMM per chunk, squared distances
throughout, no Python loop over points).  Every other algorithm in the
repository is validated against this one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import kernels
from ..geometry.points import as_points
from ..pvm.cost import Cost
from ..pvm.machine import Machine
from ..core.neighborhood import KNeighborhoodSystem

__all__ = ["brute_force_knn"]


def brute_force_knn(
    points: np.ndarray,
    k: int = 1,
    *,
    chunk: int = 1024,
    machine: Optional[Machine] = None,
) -> KNeighborhoodSystem:
    """Exact k-nearest lists by checking all pairs.

    Parameters
    ----------
    points:
        (n, d) inputs.
    k:
        Neighbors per point; ``k < n`` required for complete lists (larger
        k pads with -1/inf like the rest of the package).
    chunk:
        Row-block size for the distance GEMM.
    machine:
        Optional ledger; charged depth n (each processor scans all points
        serially — the trivial n-processor schedule), work n^2.
    """
    pts = as_points(points, min_points=1, dtype=None)
    n = pts.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if machine is not None:
        machine.charge(Cost(float(n), float(n) * float(n)))
    # the single shared oracle kernel: chunked GEMM selection + diff-based
    # refinement (see repro.kernels.reference.brute_topk)
    nbr_idx, nbr_sq = kernels.brute_topk(pts, k, chunk)
    return KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
