"""Uniform-grid all-k-nearest-neighbors — the expected-linear comparator.

For points of bounded density (the regime of the paper's k-neighborhood
systems), bucketing into a uniform grid with ~1 point per cell and probing
growing shells of neighboring cells finds exact k-NN in expected O(nk)
time.  This plays the role of Vaidya's work-optimal sequential algorithm
in the work-comparison experiments (E9): near-linear on uniform data,
degrading on clustered data — which is precisely the gap separator-based
methods close.
"""

from __future__ import annotations

import numpy as np

from ..geometry.points import as_points
from ..core.neighborhood import KNeighborhoodSystem

__all__ = ["grid_knn"]


def grid_knn(points: np.ndarray, k: int = 1, *, cells_per_point: float = 1.0) -> KNeighborhoodSystem:
    """Exact all-kNN via uniform-grid shell probing.

    Parameters
    ----------
    points:
        (n, d) inputs.
    k:
        Neighbors per point.
    cells_per_point:
        Target grid occupancy (cells ~= n * cells_per_point).

    Notes
    -----
    Exactness: a point's shell search stops only when the k-th candidate
    distance is at most the distance to the nearest *unexplored* shell, so
    no closer point can be missed.  Worst case degenerates to O(n^2) when
    all points share one cell (matching the theory it illustrates).
    """
    pts = as_points(points, min_points=1)
    n, d = pts.shape
    if k < 1:
        raise ValueError("k must be >= 1")
    kk = min(k, n - 1)
    nbr_idx = np.full((n, k), -1, dtype=np.int64)
    nbr_sq = np.full((n, k), np.inf)
    if kk == 0:
        return KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    extent = np.maximum(hi - lo, 1e-12)
    cells_per_axis = max(1, int(round((n * cells_per_point) ** (1.0 / d))))
    cell_size = extent / cells_per_axis
    coords = np.minimum(((pts - lo) / cell_size).astype(np.int64), cells_per_axis - 1)
    # linearise cell coordinates and bucket points by cell
    strides = cells_per_axis ** np.arange(d - 1, -1, -1, dtype=np.int64)
    cell_ids = coords @ strides
    order = np.argsort(cell_ids, kind="stable")
    sorted_cells = cell_ids[order]
    starts = np.searchsorted(sorted_cells, np.arange(cells_per_axis**d))
    ends = np.searchsorted(sorted_cells, np.arange(cells_per_axis**d), side="right")

    def cell_points(cell_coord: np.ndarray) -> np.ndarray:
        cid = int(cell_coord @ strides)
        return order[starts[cid] : ends[cid]]

    max_shell = cells_per_axis  # enough to cover the whole grid
    for i in range(n):
        c = coords[i]
        cand: list[np.ndarray] = []
        found_sq = np.inf
        for shell in range(max_shell + 1):
            lo_c = np.maximum(c - shell, 0)
            hi_c = np.minimum(c + shell, cells_per_axis - 1)
            # collect the cells on the boundary of the shell box
            ranges = [np.arange(lo_c[a], hi_c[a] + 1) for a in range(d)]
            mesh = np.stack(np.meshgrid(*ranges, indexing="ij"), axis=-1).reshape(-1, d)
            if shell > 0:
                on_boundary = (np.abs(mesh - c) == shell).any(axis=1)
                mesh = mesh[on_boundary]
            for cc in mesh:
                ids = cell_points(cc)
                if ids.shape[0]:
                    cand.append(ids)
            total = sum(a.shape[0] for a in cand)
            if total > kk:  # self included
                ids_all = np.concatenate(cand)
                diff = pts[ids_all] - pts[i]
                sq = np.einsum("md,md->m", diff, diff)
                sq[ids_all == i] = np.inf
                top = np.argpartition(sq, kk - 1)[:kk]
                found_sq = np.partition(sq, kk - 1)[kk - 1]
                # stop when the k-th best is closer than the nearest
                # unexplored shell
                next_shell_dist = shell * np.min(cell_size)
                if found_sq <= next_shell_dist**2 or shell == max_shell:
                    sel_sq = sq[top]
                    sel_idx = ids_all[top]
                    o = np.lexsort((sel_idx, sel_sq))
                    nbr_idx[i, :kk] = sel_idx[o]
                    nbr_sq[i, :kk] = sel_sq[o]
                    break
        else:  # pragma: no cover - max_shell always covers the grid
            raise AssertionError("shell search failed to terminate")
    return KNeighborhoodSystem(pts, k, nbr_idx, nbr_sq)
