"""kd-tree all-k-nearest-neighbors — the sequential comparator.

A median-split kd-tree (Bentley 1975 / Friedman–Bentley–Finkel 1977) with
the standard branch-and-bound k-NN search.  This is the "good sequential
algorithm" role Vaidya's O(kn log n) method plays in the paper's work
comparison: expected O(n log n) for fixed d and k on non-degenerate
inputs.

The implementation is array-based (nodes in flat numpy arrays, points
reordered once) and processes *batches* of queries per leaf/visit so the
inner loops are vectorized; a pure point-at-a-time Python tree would be
two orders of magnitude slower, which would distort the work-comparison
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..geometry.points import as_points, pairwise_sq_dists_direct
from ..core.neighborhood import KNeighborhoodSystem

__all__ = ["KDTree", "kdtree_knn"]


@dataclass
class _Node:
    lo: int
    hi: int
    axis: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.axis < 0


class KDTree:
    """Median-split kd-tree over an (n, d) point array.

    Parameters
    ----------
    points:
        Input points (kept; an internal permutation orders them by leaf).
    leaf_size:
        Max points per leaf; leaves are solved by vectorized brute force.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 32) -> None:
        pts = as_points(points, min_points=1)
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = pts
        self.leaf_size = leaf_size
        n = pts.shape[0]
        self.perm = np.arange(n, dtype=np.int64)
        self.nodes: List[_Node] = []
        self._build(0, n)
        self.ordered = pts[self.perm]

    def _build(self, lo: int, hi: int) -> int:
        node_id = len(self.nodes)
        self.nodes.append(_Node(lo, hi))
        if hi - lo <= self.leaf_size:
            return node_id
        seg = self.points[self.perm[lo:hi]]
        spread = seg.max(axis=0) - seg.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] <= 0:
            return node_id  # all points identical: stay a leaf
        mid = (hi - lo) // 2
        order = np.argpartition(seg[:, axis], mid)
        self.perm[lo:hi] = self.perm[lo:hi][order]
        threshold = float(self.points[self.perm[lo + mid], axis])
        node = self.nodes[node_id]
        node.axis = axis
        node.threshold = threshold
        node.left = self._build(lo, lo + mid)
        node.right = self._build(lo + mid, hi)
        return node_id

    @property
    def height(self) -> int:
        def h(i: int) -> int:
            node = self.nodes[i]
            if node.is_leaf:
                return 0
            return 1 + max(h(node.left), h(node.right))

        return h(0)

    def knn(self, queries: np.ndarray, k: int, *, exclude_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """k nearest tree points for each query row.

        Returns (indices, squared distances), each (q, k), sorted
        ascending, padded with (-1, inf).  ``exclude_self`` drops
        zero-distance matches of identical coordinates *only when the
        query row index equals the matched point index* — callers doing
        all-kNN pass the tree's own points in order.
        """
        q = as_points(queries)
        nq = q.shape[0]
        n = self.points.shape[0]
        kk = min(k, n - 1 if exclude_self else n)
        best_sq = np.full((nq, k), np.inf)
        best_idx = np.full((nq, k), -1, dtype=np.int64)
        if kk <= 0:
            return best_idx, best_sq
        self._search(0, q, np.arange(nq, dtype=np.int64), best_sq, best_idx, exclude_self)
        return best_idx, best_sq

    def _search(
        self,
        node_id: int,
        q: np.ndarray,
        rows: np.ndarray,
        best_sq: np.ndarray,
        best_idx: np.ndarray,
        exclude_self: bool,
    ) -> None:
        node = self.nodes[node_id]
        if rows.shape[0] == 0:
            return
        if node.is_leaf:
            ids = self.perm[node.lo : node.hi]
            # diff-based kernel: leaves are small and must not suffer the
            # GEMM cancellation for near-coincident far-from-origin points
            sq = pairwise_sq_dists_direct(q[rows], self.points[ids])
            if exclude_self:
                hit = ids[None, :] == rows[:, None]
                sq[hit] = np.inf
            k = best_sq.shape[1]
            merged_sq = np.concatenate([best_sq[rows], sq], axis=1)
            merged_idx = np.concatenate(
                [best_idx[rows], np.broadcast_to(ids, sq.shape)], axis=1
            )
            pick = np.argpartition(merged_sq, k - 1, axis=1)[:, :k]
            r = np.arange(rows.shape[0])[:, None]
            sel_sq = merged_sq[r, pick]
            sel_idx = merged_idx[r, pick]
            order = np.lexsort((sel_idx, sel_sq), axis=1)
            best_sq[rows] = sel_sq[r, order]
            best_idx[rows] = sel_idx[r, order]
            return
        diff = q[rows, node.axis] - node.threshold
        near_left = diff <= 0
        # near side first, then the far side only for queries whose current
        # k-th best still reaches across the splitting plane
        left_rows = rows[near_left]
        right_rows = rows[~near_left]
        self._search(node.left, q, left_rows, best_sq, best_idx, exclude_self)
        self._search(node.right, q, right_rows, best_sq, best_idx, exclude_self)
        # far side only for queries whose k-th best still reaches across
        if left_rows.shape[0]:
            reach = best_sq[left_rows, -1] > np.square(q[left_rows, node.axis] - node.threshold)
            self._search(node.right, q, left_rows[reach], best_sq, best_idx, exclude_self)
        if right_rows.shape[0]:
            reach = best_sq[right_rows, -1] >= np.square(q[right_rows, node.axis] - node.threshold)
            self._search(node.left, q, right_rows[reach], best_sq, best_idx, exclude_self)


def kdtree_knn(points: np.ndarray, k: int = 1, *, leaf_size: int = 32) -> KNeighborhoodSystem:
    """Exact all-kNN via a kd-tree; same result type as every other path."""
    pts = as_points(points, min_points=1)
    tree = KDTree(pts, leaf_size=leaf_size)
    idx, sq = tree.knn(pts, k, exclude_self=True)
    return KNeighborhoodSystem(pts, k, idx, sq)
