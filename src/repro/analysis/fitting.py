"""Scaling-law fits for the experiments.

The experiments check *shape*: depth ~ log n vs log^2 n, work ~ n,
intersection numbers ~ n^{(d-1)/d}.  These helpers fit the corresponding
models by least squares and report the exponents/slopes with R^2, so
benches can print "measured exponent 0.51 (theory 0.50)" rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerFit", "power_law_fit", "loglinear_fit", "polylog_degree_estimate"]


@dataclass(frozen=True, slots=True)
class PowerFit:
    """Result of a least-squares fit; interpretation depends on the model.

    For :func:`power_law_fit` (model ``y = coeff * x^exponent``) the
    ``exponent`` is the power; for :func:`loglinear_fit` (model
    ``y = coeff + exponent * log2 x``) it is the slope per doubling.
    """

    exponent: float
    coeff: float
    r2: float


def _r2(y: np.ndarray, yhat: np.ndarray) -> float:
    ss_res = float(np.sum((y - yhat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def power_law_fit(x: Sequence[float], y: Sequence[float]) -> PowerFit:
    """Fit ``y ~ coeff * x^exponent`` on log-log axes.

    Requires positive x and y; at least two points.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape or xa.ndim != 1 or xa.size < 2:
        raise ValueError("x and y must be equal-length 1-D with >= 2 points")
    if (xa <= 0).any() or (ya <= 0).any():
        raise ValueError("power-law fit needs positive data")
    lx, ly = np.log(xa), np.log(ya)
    slope, intercept = np.polyfit(lx, ly, 1)
    yhat = slope * lx + intercept
    return PowerFit(exponent=float(slope), coeff=float(np.exp(intercept)), r2=_r2(ly, yhat))


def loglinear_fit(x: Sequence[float], y: Sequence[float]) -> PowerFit:
    """Fit ``y ~ coeff + exponent * log2 x`` (semi-log axes).

    ``exponent`` is then the per-doubling increment — for an O(log n)
    depth curve it converges to a constant; for O(log^2 n) it grows.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape or xa.ndim != 1 or xa.size < 2:
        raise ValueError("x and y must be equal-length 1-D with >= 2 points")
    if (xa <= 0).any():
        raise ValueError("log fit needs positive x")
    lx = np.log2(xa)
    slope, intercept = np.polyfit(lx, ya, 1)
    yhat = slope * lx + intercept
    return PowerFit(exponent=float(slope), coeff=float(intercept), r2=_r2(ya, yhat))


def polylog_degree_estimate(x: Sequence[float], y: Sequence[float]) -> float:
    """Estimate p in ``y ~ (log n)^p`` by log-log fit against log2 n.

    Distinguishes the O(log n) algorithm (p ~ 1) from the O(log^2 n) one
    (p ~ 2) — the headline comparison of experiments E4/E5.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if (xa <= 1).any() or (ya <= 0).any():
        raise ValueError("need x > 1 and y > 0")
    lx = np.log(np.log2(xa))
    ly = np.log(ya)
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)
