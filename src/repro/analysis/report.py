"""Terminal-friendly reporting: ASCII scatter/line charts for experiments.

The benchmark tables record numbers; these helpers render the *shape* —
depth-vs-n curves, tail plots — as fixed-width ASCII so results files and
CLI output can show the scaling story without a plotting stack.

Charts are deliberately small-dependency: a character grid, log or linear
axes, multiple labelled series (distinct markers), and axis legends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Series", "ascii_chart"]

_MARKERS = "*o+x#@%&"


@dataclass(frozen=True)
class Series:
    """One labelled curve: parallel x/y sequences."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")
        if len(self.x) == 0:
            raise ValueError(f"series {self.label!r} is empty")


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log axis requires positive values")
        return math.log10(value)
    return value


def ascii_chart(
    series: List[Series],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render labelled series on a character grid.

    Returns a multi-line string: title, plot box with y-range labels, an
    x-range line, and a marker legend.  Values are clipped to the data's
    bounding box; log axes reject non-positive values.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")
    xs = [_transform(v, log_x) for s in series for v in s.x]
    ys = [_transform(v, log_y) for s in series for v in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = _MARKERS[si % len(_MARKERS)]
        for xv, yv in zip(s.x, s.y):
            cx = int(round((_transform(xv, log_x) - x_lo) / x_span * (width - 1)))
            cy = int(round((_transform(yv, log_y) - y_lo) / y_span * (height - 1)))
            row = height - 1 - cy
            grid[row][cx] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    y_bot = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    label_w = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        prefix = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{prefix:>{label_w}} |{''.join(row)}|")
    x_left = f"{(10 ** x_lo if log_x else x_lo):.3g}"
    x_right = f"{(10 ** x_hi if log_x else x_hi):.3g}"
    axis = " " * label_w + " +" + "-" * width + "+"
    lines.append(axis)
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 2) + x_left + " " * max(1, gap) + x_right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}" for i, s in enumerate(series)
    )
    scales = f"[x: {'log' if log_x else 'lin'}, y: {'log' if log_y else 'lin'}]"
    lines.append(f"{legend}   {scales}")
    return "\n".join(lines)
