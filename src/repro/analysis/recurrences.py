"""Numeric solutions of the paper's recurrences (Section 3.2, Lemma 3.1).

The query-structure height and leaf-count recurrences::

    h(m) <= 1                                   m <= m0
    h(m) <= 1 + h(delta*m + m^mu)               m >  m0

    s(m) <= 1                                   m <= m0
    s(m) <= s(delta1*m + m^mu) + s((1-delta1)*m)  m >  m0

Lemma 3.1: for m0 large enough (``m0^mu <= (1-delta)/2 * m0``),
``h(n) = O(log n)`` and ``s(n) = O(n / m0)``.  Solving them numerically
gives the exact constants our measured trees should sit below
(experiment E3).
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = ["height_recurrence", "leaf_recurrence", "min_valid_m0", "height_constant"]


def min_valid_m0(delta: float, mu: float) -> int:
    """Smallest integer m0 with ``m0^mu <= (1-delta)/2 * m0``.

    This is the paper's condition on the leaf threshold; above it the
    shrinkage ``delta*m + m^mu <= (1+delta)/2 * m`` holds for all m > m0.
    """
    if not 0 < delta < 1 or not 0 < mu < 1:
        raise ValueError("need 0 < delta < 1 and 0 < mu < 1")
    target = (1.0 - delta) / 2.0
    m0 = 2
    while m0 ** (mu - 1.0) > target:
        m0 *= 2
        if m0 > 2**60:  # pragma: no cover - parameters sane in practice
            raise ValueError("no valid m0 for these parameters")
    # binary search down for the tight value
    lo, hi = m0 // 2, m0
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if mid ** (mu - 1.0) <= target:
            hi = mid
        else:
            lo = mid
    return hi


def height_recurrence(n: int, delta: float, mu: float, m0: int) -> int:
    """Exact iteration count of ``m -> delta*m + m^mu`` down to m0."""
    if n <= 0:
        raise ValueError("n must be positive")
    m = float(n)
    h = 1
    guard = 0
    while m > m0:
        m = delta * m + m**mu
        h += 1
        guard += 1
        if guard > 10_000:
            raise ValueError("height recurrence does not contract; check delta, mu, m0")
    return h


def height_constant(delta: float, mu: float, m0: int, *, n: int = 1 << 20) -> float:
    """Empirical constant c with ``h(n) ~ c * log2 n`` for the recurrence."""
    h = height_recurrence(n, delta, mu, m0)
    return h / math.log2(n)


def leaf_recurrence(n: int, delta1: float, mu: float, m0: int) -> int:
    """Worst-case leaf count of the space recurrence s(m).

    Memoised on the integer ceiling of m (the recurrence is monotone, so
    rounding up is conservative).
    """
    if not 0 < delta1 < 1:
        raise ValueError("delta1 must be in (0, 1)")

    @lru_cache(maxsize=None)
    def s(m: int) -> int:
        if m <= m0:
            return 1
        big = math.ceil(delta1 * m + m**mu)
        small = math.ceil((1 - delta1) * m)
        if big >= m or small >= m:
            raise ValueError("leaf recurrence does not contract; check parameters")
        return s(big) + s(small)

    return s(int(n))
