"""Closed-form probability bounds from the paper.

- :func:`punting_tail_bound` — Lemma 4.1: for the probabilistic
  (0, log m)-tree, ``Pr[RD(n) > 2c log n] <= n * A * e^{-c log n}`` with
  ``rho = sqrt(e)/2`` and ``A = e^{rho/(1-rho)}``.
- :func:`punting_tail_bound_corollary` — Corollary 4.1, the (C, log m)
  version: ``Pr[RD(n) > 2(c + C) log n] <= n * A * e^{-c log n}``.
- :func:`mgf_path_bound` — the moment-generating-function estimate inside
  the Lemma 4.1 proof, exposed so tests can check the simulated path-sum
  MGF sits below it.
- :func:`duplication_g` — Lemma 6.5's ``g(W) = W + 2^{(1-alpha)K}(1+eps) K
  W^alpha`` envelope for the duplication process.
- :func:`bernoulli_heads_bound` — the ``Pr[L > 3m] <= 2^{-2m}`` Chernoff
  step used in Theorem 3.1 / Lemma 5.1 for separator-retry sequences.
"""

from __future__ import annotations

import math

__all__ = [
    "RHO",
    "A_CONST",
    "punting_tail_bound",
    "punting_tail_bound_corollary",
    "mgf_path_bound",
    "duplication_g",
    "bernoulli_heads_bound",
]

RHO = math.sqrt(math.e) / 2.0
A_CONST = math.exp(RHO / (1.0 - RHO))


def punting_tail_bound(n: int, c: float) -> float:
    """Lemma 4.1 right-hand side ``n * A * e^{-c log n}`` (natural log).

    Clamped to 1 (it is a probability bound; small n / small c make the
    raw expression exceed 1, where it is vacuous).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if c <= 0:
        return 1.0
    return min(1.0, n * A_CONST * math.exp(-c * math.log(n)))


def punting_tail_bound_corollary(n: int, c: float, C: float) -> tuple[float, float]:
    """Corollary 4.1: returns ``(threshold, bound)`` —
    ``Pr[RD(n) > threshold] <= bound`` with threshold ``2(c + C) log2 n``."""
    if C < 0:
        raise ValueError("C must be >= 0")
    return 2.0 * (c + C) * math.log2(n), punting_tail_bound(n, c)


def mgf_path_bound(m: int, lam: float = 0.5) -> float:
    """Upper bound on ``E[e^{lam * (X_1 + ... + X_m)}]`` along one root path.

    ``X_i`` is 0 w.p. ``1 - 2^{-i}`` and ``i`` w.p. ``2^{-i}`` (node at
    distance i from the leaf has subtree size 2^i, weight log2(2^i) = i).
    Each factor is ``1 - 2^{-i} + 2^{-i} e^{lam i} <= 1 + rho^i`` with
    ``rho = e^lam / 2`` (for lam <= 1/2, since ``e^{lam i}/2^i =
    (e^lam/2)^i``), so the product is at most ``e^{rho/(1-rho)}``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    rho = math.exp(lam) / 2.0
    if rho >= 1:
        raise ValueError("lam too large: e^lam / 2 must be < 1")
    total = 1.0
    for i in range(1, m + 1):
        total *= 1.0 + rho**i
    return total


def duplication_g(W: float, K: int, alpha: float, eps: float = 0.1) -> float:
    """Lemma 6.5's envelope ``g(W) = W + 2^{(1-alpha)K} (1+eps) K W^alpha``."""
    if W <= 0 or K < 0:
        raise ValueError("need W > 0 and K >= 0")
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    return W + 2.0 ** ((1.0 - alpha) * K) * (1.0 + eps) * K * W**alpha


def bernoulli_heads_bound(m: int, factor: float = 3.0) -> float:
    """``Pr[more than factor*m trials needed for m heads] <= 2^{-2m}``.

    The Chernoff step of Theorem 3.1: with success probability >= 1/2 per
    trial, seeing fewer than m heads in 3m trials has probability at most
    ``2^{-2m}`` (the paper's constant; valid for factor >= 3).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if factor < 3.0:
        raise ValueError("the paper's bound is stated for factor >= 3")
    return 2.0 ** (-2.0 * m)
