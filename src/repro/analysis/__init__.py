"""Theory-side companions: the paper's recurrences, probability bounds,
and the scaling-law fits used to compare measured curves against claims."""

from .bounds import (
    A_CONST,
    RHO,
    bernoulli_heads_bound,
    duplication_g,
    mgf_path_bound,
    punting_tail_bound,
    punting_tail_bound_corollary,
)
from .fitting import PowerFit, loglinear_fit, polylog_degree_estimate, power_law_fit
from .report import Series, ascii_chart
from .recurrences import height_constant, height_recurrence, leaf_recurrence, min_valid_m0

__all__ = [
    "A_CONST",
    "RHO",
    "bernoulli_heads_bound",
    "duplication_g",
    "mgf_path_bound",
    "punting_tail_bound",
    "punting_tail_bound_corollary",
    "PowerFit",
    "loglinear_fit",
    "polylog_degree_estimate",
    "power_law_fit",
    "height_constant",
    "height_recurrence",
    "leaf_recurrence",
    "min_valid_m0",
    "Series",
    "ascii_chart",
]
