"""Configuration for the network front-end, `CommonConfig`-style.

One frozen-by-convention dataclass carries every knob of the serving
front-end — socket, batching window, admission control, deadlines,
drain — so :func:`repro.api.net_serve`, the ``repro net`` CLI and the
tests all construct servers the same way.  Validation happens eagerly in
``__post_init__`` (mirroring :class:`repro.core.config.CommonConfig`),
so a bad knob fails at construction, not mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["NetConfig", "UVLOOP_MODES"]

#: Event-loop selection modes: ``auto`` uses uvloop when importable,
#: ``uvloop`` requires it (warning once and falling back when missing,
#: mirroring the ``kernels="numba"`` pattern), ``asyncio`` never tries.
UVLOOP_MODES = ("auto", "uvloop", "asyncio")


@dataclass
class NetConfig:
    """Every knob of the asyncio serving front-end.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port (the bound
        port is reported by :meth:`~repro.net.server.NetServer.start`),
        which is what the tests and the loopback benchmark use.
    max_batch:
        Batch-size bound of each tenant's
        :class:`~repro.serve.batcher.Batcher` — a full queue executes
        immediately regardless of the window.
    max_wait_ms:
        The batching-window *ceiling*: no admitted request waits longer
        than this for its batch to fill.  With ``adaptive=True`` the
        effective window moves between 0 and this ceiling with load;
        with ``adaptive=False`` it is pinned at the ceiling.
    adaptive:
        SLO-aware window adaptation (see :mod:`repro.net.adaptive`):
        shrink toward 0 when the queue is shallow and arrivals are slow,
        grow toward the ceiling under load.
    slo_p95_ms:
        Latency target the adaptive controller steers under: when the
        observed p95 request latency exceeds it, the window shrinks even
        under load.  ``None`` disables the latency term (pure
        load-proportional control).
    rate, burst:
        Token-bucket admission: sustained requests/second and bucket
        capacity.  ``rate=None`` disables rate limiting (the in-flight
        bound still applies).
    max_inflight:
        Bound on admitted-but-unanswered requests; past it the server
        sheds load with HTTP 429 + ``Retry-After`` instead of queueing
        without bound.
    deadline_ms:
        Default per-request latency budget; a request not answered
        within it gets HTTP 504 and a ``net.deadline_exceeded`` count
        (requests may override per call, capped at this default when
        set).  ``None`` means no default deadline.
    cache_size, cache_decimals:
        Per-tenant :class:`~repro.serve.cache.ResultCache` knobs
        (``cache_size=0`` disables caching), exactly as in
        :func:`repro.api.serve`.
    serve_workers:
        Fan batches across a per-tenant
        :class:`~repro.serve.mp.ServingPool` of this many worker
        processes (``None`` = serve in-process).
    drain_timeout_s:
        Upper bound on the graceful-drain wait for in-flight requests;
        past it the drain proceeds anyway (never leaking the pool).
    max_body_bytes:
        Largest accepted request body (HTTP 413 past it).
    uvloop:
        Event-loop policy mode, one of :data:`UVLOOP_MODES`.
    trace_requests:
        Record a :class:`~repro.obs.rt.RequestTimeline` per request into
        the flight recorder (and feed the SLO tracker).  Off, the
        ``/debug/*`` endpoints answer with an empty recorder; responses
        are byte-identical either way (``X-Request-Id`` is always
        echoed/assigned — tracing only decides whether a timeline is
        *retained*).
    recorder_capacity, recorder_slow_k:
        Flight-recorder retention: ring size for the last-N timelines
        and K for the slowest-request heap.
    slo_objective, slo_error_objective:
        SLO targets per tenant: the fraction of requests that must meet
        ``slo_p95_ms`` (latency objective) and the availability
        objective the error burn rate is computed against.  Trackers are
        created only when ``slo_p95_ms`` is set.
    window_latency_source:
        Where the adaptive window's p95 estimate comes from: ``"ring"``
        (the controller's private latency ring, the pre-ISSUE-9
        behavior) or ``"slo"`` (the SLO tracker's rolling histogram p95;
        requires ``slo_p95_ms``).
    """

    host: str = "127.0.0.1"
    port: int = 8377
    max_batch: int = 256
    max_wait_ms: float = 20.0
    adaptive: bool = True
    slo_p95_ms: Optional[float] = None
    rate: Optional[float] = None
    burst: int = 256
    max_inflight: int = 1024
    deadline_ms: Optional[float] = None
    cache_size: int = 1024
    cache_decimals: Optional[int] = None
    serve_workers: Optional[int] = None
    drain_timeout_s: float = 10.0
    max_body_bytes: int = 8 << 20
    uvloop: str = "auto"
    trace_requests: bool = True
    recorder_capacity: int = 256
    recorder_slow_k: int = 16
    slo_objective: float = 0.95
    slo_error_objective: float = 0.999
    window_latency_source: str = "ring"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.slo_p95_ms is not None and self.slo_p95_ms <= 0:
            raise ValueError(f"slo_p95_ms must be > 0, got {self.slo_p95_ms}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.uvloop not in UVLOOP_MODES:
            raise ValueError(
                f"unknown uvloop mode {self.uvloop!r}; choose from {UVLOOP_MODES}"
            )
        if self.recorder_capacity < 1:
            raise ValueError(
                f"recorder_capacity must be >= 1, got {self.recorder_capacity}"
            )
        if self.recorder_slow_k < 0:
            raise ValueError(
                f"recorder_slow_k must be >= 0, got {self.recorder_slow_k}"
            )
        if not 0.0 < self.slo_objective < 1.0:
            raise ValueError(
                f"slo_objective must be in (0, 1), got {self.slo_objective}"
            )
        if not 0.0 < self.slo_error_objective < 1.0:
            raise ValueError(
                f"slo_error_objective must be in (0, 1), got {self.slo_error_objective}"
            )
        if self.window_latency_source not in ("ring", "slo"):
            raise ValueError(
                "window_latency_source must be 'ring' or 'slo', "
                f"got {self.window_latency_source!r}"
            )
        if self.window_latency_source == "slo" and self.slo_p95_ms is None:
            raise ValueError("window_latency_source='slo' requires slo_p95_ms")
