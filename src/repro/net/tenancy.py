"""Multi-index tenancy: named serving stacks behind one front-end.

One server process can serve many indexes — a staging index next to a
production one, per-dataset indexes, A/B versions.  A :class:`Tenant`
bundles everything one named index needs to serve and mutate:

- the :class:`~repro.core.online.MutableIndex` (the write side),
- a :class:`~repro.serve.registry.SnapshotRegistry` holding its
  published versions (bounded history, so readers pinned to a recent
  version stay valid),
- a per-tenant :class:`~repro.serve.cache.ResultCache` and
  :class:`~repro.serve.batcher.Batcher` (the read side), optionally
  fanning batches across a :class:`~repro.serve.mp.ServingPool`,
- a per-tenant :class:`~repro.pvm.machine.Machine` whose metrics
  registry carries the ``serve.*`` stats (per-tenant registries keep the
  fixed ``serve.`` namespace collision-free across tenants).

Mutations and swaps are *serialized per tenant* by construction: the
server runs them on its event loop, and :meth:`Tenant.mutate` flushes
the batcher against the old version before rebinding — a request
admitted under version ``v`` is answered by version ``v``, never a torn
read (the same contract as :meth:`~repro.serve.batcher.Batcher.
swap_index`, which this calls).

The module is deliberately HTTP-free — errors are ``KeyError`` /
``ValueError`` and the server layer maps them to statuses — so tenants
are usable directly from tests and the load generator's self-serve mode.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.online import CommitInfo, MutableIndex
from ..obs.metrics import Metrics
from ..pvm.machine import Machine
from ..serve.batcher import Batcher
from ..serve.cache import ResultCache
from ..serve.mp import ServingPool
from ..serve.registry import SnapshotRegistry
from .config import NetConfig

__all__ = ["Tenant", "TenantManager", "DEFAULT_TENANT"]

#: The tenant served when a request names none.
DEFAULT_TENANT = "default"


class Tenant:
    """One named index with its full serving stack.

    Parameters
    ----------
    name:
        The tenant's name (the ``index`` field of request payloads).
    index:
        The mutable index this tenant serves and mutates.
    config:
        The front-end config supplying batching/cache/pool knobs.
    machine:
        The tenant's machine; a fresh one by default.  Its metrics
        registry receives the tenant's ``serve.*`` stats.
    registry_capacity:
        Versions retained in the tenant's snapshot registry.
    """

    def __init__(
        self,
        name: str,
        index: MutableIndex,
        *,
        config: Optional[NetConfig] = None,
        machine: Optional[Machine] = None,
        registry_capacity: int = 4,
    ) -> None:
        cfg = config if config is not None else NetConfig()
        self.name = name
        self.index = index
        self.machine = machine if machine is not None else Machine()
        self.registry = SnapshotRegistry(capacity=registry_capacity)
        snapshot = index.snapshot()
        self.registry.publish(snapshot)
        self.cache = (
            ResultCache(cfg.cache_size, cfg.cache_decimals)
            if cfg.cache_size > 0
            else None
        )
        pool = (
            ServingPool(snapshot, cfg.serve_workers, machine=self.machine)
            if cfg.serve_workers is not None
            else None
        )
        # max_wait_ms stays None: the server's flusher owns the window
        # (fixed or adaptive) and calls flush() itself
        self.batcher = Batcher(
            snapshot,
            kind="knn",
            k=index.k,
            max_batch=cfg.max_batch,
            max_wait_ms=None,
            cache=self.cache,
            machine=self.machine,
            pool=pool,
        )
        self._closed = False

    # -- read path ---------------------------------------------------------

    @property
    def version(self) -> int:
        """The index version currently being served."""
        return self.batcher.index.version

    @property
    def d(self) -> int:
        return self.batcher.index.d

    @property
    def k(self) -> int:
        return self.batcher.k

    def execute_direct(
        self, kind: str, queries: np.ndarray, k: Optional[int]
    ) -> List[Any]:
        """Answer a batch outside the micro-batcher, as per-request values.

        The bypass path for requests the shared batcher cannot carry —
        a ``k`` override or a ``covering`` kind — still served by the
        tenant's executor (the pool when one exists), against the same
        snapshot the batcher is bound to.  Per-row answers are
        batch-independent, so this is bit-identical to what a dedicated
        batcher with these parameters would return.
        """
        index = self.batcher.index
        kk = index.resolve_k(k) if kind == "knn" else index.k
        response = self.batcher.executor(kind, queries, kk)
        return index.split_response(kind, response, queries.shape[0])

    # -- write path --------------------------------------------------------

    def mutate(
        self,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[Sequence[int]] = None,
        *,
        commit: bool = False,
    ) -> Tuple[Optional[CommitInfo], int]:
        """Buffer mutations and optionally commit + hot-swap serving.

        Returns ``(commit_info, flushed)`` where ``commit_info`` is
        ``None`` without ``commit=True`` and ``flushed`` counts the
        pending requests answered by the *old* version before the swap.
        On commit the new snapshot is published to the tenant's registry
        and the batcher swaps to it — zero downtime, and the
        version-keyed cache makes stale hits impossible.
        """
        if self._closed:
            raise RuntimeError(f"tenant {self.name!r} is closed")
        if inserts is not None and len(inserts):
            self.index.insert(inserts)
        if deletes is not None and len(deletes):
            self.index.delete(deletes)
        if not commit:
            return None, 0
        info = self.index.commit()
        if info.noop:
            return info, 0
        snapshot = self.index.snapshot()
        self.registry.publish(snapshot)
        flushed = self.batcher.swap_index(snapshot)
        return info, flushed

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, flush: bool = True) -> None:
        """Shut the tenant's serving stack down (pool included)."""
        if self._closed:
            return
        self._closed = True
        self.batcher.close(flush=flush)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready tenant summary (the ``/healthz`` payload rows)."""
        ins, dels = self.index.pending
        return {
            "name": self.name,
            "n": int(self.index.n),
            "d": int(self.d),
            "k": int(self.k),
            "version": int(self.version),
            "pending_mutations": int(ins + dels),
            "queue_depth": int(self.batcher.pending),
            "versions_retained": self.registry.versions(),
        }


class TenantManager:
    """The named-tenant map the server routes requests through."""

    def __init__(self, *, config: Optional[NetConfig] = None) -> None:
        self.config = config if config is not None else NetConfig()
        self._tenants: "Dict[str, Tenant]" = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def add(
        self,
        name: str,
        index: MutableIndex,
        *,
        machine: Optional[Machine] = None,
    ) -> Tenant:
        """Create and register a tenant serving ``index`` under ``name``."""
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already exists")
        if not name or "/" in name:
            raise ValueError(f"invalid tenant name {name!r}")
        tenant = Tenant(name, index, config=self.config, machine=machine)
        self._tenants[name] = tenant
        return tenant

    def get(self, name: Optional[str] = None) -> Tenant:
        """The tenant for ``name`` (default tenant when ``None``).

        Raises ``KeyError`` for unknown names — the server maps it to
        HTTP 404.
        """
        key = name if name is not None else DEFAULT_TENANT
        try:
            return self._tenants[key]
        except KeyError:
            raise KeyError(
                f"unknown index {key!r} (have {self.names()})"
            ) from None

    def tenants(self) -> Iterable[Tenant]:
        return self._tenants.values()

    def collect_metrics(self, server_metrics: Optional[Metrics] = None) -> Metrics:
        """One merged registry for ``/metrics``.

        The server's ``net.*`` entries merge in as-is; the default
        tenant's ``serve.*`` entries stay unprefixed (the single-tenant
        exposition matches ``repro.api.serve``'s exactly) and every other
        tenant's keys gain a ``tenant.<name>.`` prefix, keeping the fixed
        ``serve.`` namespace collision-free across tenants.
        """
        merged = Metrics()
        if server_metrics is not None:
            merged.merge(server_metrics)
        for name in self.names():
            tenant = self._tenants[name]
            src = tenant.machine.metrics
            prefix = "" if name == DEFAULT_TENANT else f"tenant.{name}."
            for key, value in src.counters.items():
                merged.inc(prefix + key, value)
            for key, value in src.gauges.items():
                merged.set_gauge(prefix + key, value)
            for key, values in src.series.items():
                merged.samples(prefix + key).extend(values)
            for key, hist in src.histograms.items():
                merged.histogram(prefix + key, hist.bounds).merge(hist)
        return merged

    def close_all(self, *, flush: bool = True) -> None:
        """Close every tenant (flushing by default); idempotent."""
        for tenant in self._tenants.values():
            tenant.close(flush=flush)
