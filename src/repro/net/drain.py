"""Graceful drain: stop admitting, finish everything, leak nothing.

Shutdown order matters.  Killing a serving process mid-batch drops
admitted requests on the floor and — when a
:class:`~repro.serve.mp.ServingPool` is attached — can leak shared-memory
arenas and worker processes.  :func:`drain` sequences the shutdown so
neither happens:

1. **stop admitting**: the draining flag flips (``/healthz`` turns 503
   for load balancers, new ``/v1/*`` requests get 503 with a
   ``net.rejected_draining`` count) and the listening socket closes —
   established connections keep running.
2. **finish in-flight**: every tenant's batcher queue is flushed (their
   waiting requests resolve immediately) and the loop waits — bounded by
   ``config.drain_timeout_s`` — for the admitted-request count to reach
   zero.  No admitted request is dropped unless the timeout forces it.
3. **tear down**: flusher tasks are cancelled, tenants close (flushing
   batchers and shutting pools down through the leak-checked
   :meth:`~repro.serve.mp.ServingPool.close` path), the listener
   finishes closing.

:func:`install_signal_handlers` wires SIGTERM/SIGINT to this sequence,
which is how ``repro net serve`` exits cleanly under process managers.
The drain is idempotent — repeated calls return the first run's summary.
"""

from __future__ import annotations

import asyncio
import signal as _signal
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import NetServer

__all__ = ["drain", "install_signal_handlers"]

#: How often the drain loop re-flushes and re-checks in-flight, seconds.
_POLL_S = 0.005


async def drain(server: "NetServer", *, timeout_s: float | None = None) -> Dict[str, Any]:
    """Drain ``server`` gracefully; returns a summary dict.

    Summary fields: ``inflight_at_start``, ``inflight_remaining`` (0
    unless the timeout forced the drain), ``flushed`` (batched requests
    executed during the drain), ``timed_out``, ``clean`` (every admitted
    request answered), ``request_ms`` (server-side percentiles from the
    ``net.request_ms`` histogram, when any request was served) and
    ``slo`` (per-tenant :meth:`~repro.obs.rt.SLOTracker.summary`, when
    SLO tracking is configured).
    """
    existing = getattr(server, "_drain_summary", None)
    if existing is not None:
        return existing
    if timeout_s is None:
        timeout_s = server.config.drain_timeout_s

    server._draining = True
    server.stats.draining = 1
    if server._server is not None:
        server._server.close()

    inflight_at_start = server.admission.inflight
    flushed = 0
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while True:
        # resolve everything batch-waiting right now, then let their
        # handlers run and write responses
        for state in server._loops.values():
            flushed += state.tenant.batcher.flush()
            server._settle(state)
        if server.admission.inflight == 0:
            break
        if loop.time() >= deadline:
            break
        await asyncio.sleep(_POLL_S)

    remaining = server.admission.inflight
    for state in server._loops.values():
        if state.task is not None:
            state.task.cancel()
    tasks = [s.task for s in server._loops.values() if s.task is not None]
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    server.tenants.close_all(flush=True)
    # the drain is complete: every tenant's queue is either served or
    # deliberately dropped, so *now* the live queue-depth gauges read 0
    # (the batcher itself no longer zeroes them mid-shutdown — see
    # Batcher.close — so a /metrics scrape during the drain stays honest)
    for tenant in server.tenants.tenants():
        tenant.batcher.stats.queue_depth = 0
    if server._server is not None:
        try:
            await server._server.wait_closed()
        except asyncio.CancelledError:  # pragma: no cover - teardown race
            pass

    summary = {
        "inflight_at_start": inflight_at_start,
        "inflight_remaining": remaining,
        "flushed": flushed,
        "timed_out": remaining > 0,
        "clean": remaining == 0,
    }
    hist = server.metrics.histograms.get("net.request_ms")
    if hist is not None and hist.count:
        summary["request_ms"] = hist.summary()
    slo_summaries = {
        name: state.slo.summary()
        for name, state in sorted(server._loops.items())
        if state.slo is not None
    }
    if slo_summaries:
        server._export_slo()
        summary["slo"] = slo_summaries
    server._drain_summary = summary
    return summary


def install_signal_handlers(
    server: "NetServer",
    *,
    loop: asyncio.AbstractEventLoop | None = None,
    signals: Iterable[int] = (_signal.SIGTERM, _signal.SIGINT),
) -> Callable[[], None]:
    """SIGTERM/SIGINT → graceful drain; returns an uninstall callable.

    The handler schedules :meth:`NetServer.stop` on the loop exactly
    once — a second signal during the drain is ignored rather than
    tearing down mid-sequence.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    fired = False

    def _on_signal() -> None:
        nonlocal fired
        if fired:
            return
        fired = True
        loop.create_task(server.stop())

    installed = []
    for sig in signals:
        loop.add_signal_handler(sig, _on_signal)
        installed.append(sig)

    def uninstall() -> None:
        for sig in installed:
            loop.remove_signal_handler(sig)

    return uninstall
