"""``repro.net``: the asyncio network front-end over the serving stack.

The last layer between the batched serving core and actual clients on a
socket: admission control → micro-batching (load-adaptive window) →
vectorized execution → JSON response, with graceful SIGTERM drain and
multi-index tenancy.  See ``docs/networking.md`` for the endpoint
reference and operational semantics; the high-level entry points are
:func:`repro.api.net_serve` and the ``repro net`` CLI.

The event loop is the stdlib's by default.  ``uvloop`` — the optional
``repro[net]`` extra — is adopted when available: mode ``"auto"`` probes
quietly, mode ``"uvloop"`` warns once and falls back when the import
fails (mirroring the ``repro[perf]`` numba pattern: an absent
accelerator is never an error, because it can never change a result —
only wall-clock).
"""

from __future__ import annotations

import warnings
from typing import Optional

from .adaptive import AdaptiveWindow
from .admission import AdmissionController, NetStats, TokenBucket
from .config import NetConfig, UVLOOP_MODES
from .drain import drain, install_signal_handlers
from .http import HttpError, Request, json_response, read_request, render_response
from .loadgen import LoadResult, format_table, http_fetch, http_request, run_load, sweep
from .server import NetServer, ServerThread
from .tenancy import DEFAULT_TENANT, Tenant, TenantManager

__all__ = [
    "AdaptiveWindow",
    "AdmissionController",
    "DEFAULT_TENANT",
    "HttpError",
    "LoadResult",
    "NetConfig",
    "NetServer",
    "NetStats",
    "Request",
    "ServerThread",
    "Tenant",
    "TenantManager",
    "TokenBucket",
    "UVLOOP_MODES",
    "drain",
    "format_table",
    "http_fetch",
    "http_request",
    "install_event_loop",
    "install_signal_handlers",
    "json_response",
    "read_request",
    "render_response",
    "run_load",
    "sweep",
    "uvloop_available",
]

_UVLOOP_OK: Optional[bool] = None
_WARNED_FALLBACK = False


def uvloop_available() -> bool:
    """True when the optional uvloop dependency is importable."""
    global _UVLOOP_OK
    if _UVLOOP_OK is None:
        try:
            import uvloop  # noqa: F401

            _UVLOOP_OK = True
        except ImportError:
            _UVLOOP_OK = False
    return _UVLOOP_OK


def install_event_loop(mode: str = "auto") -> str:
    """Install the event-loop policy for ``mode``; returns the loop used.

    ``"auto"`` installs uvloop when importable (silently using the
    stdlib loop otherwise); ``"uvloop"`` warns once and falls back when
    uvloop is missing (install the ``repro[net]`` extra to enable it);
    ``"asyncio"`` never probes.  Call before creating the event loop.
    """
    global _WARNED_FALLBACK
    if mode not in UVLOOP_MODES:
        raise ValueError(f"unknown uvloop mode {mode!r}; choose from {UVLOOP_MODES}")
    if mode == "asyncio":
        return "asyncio"
    if not uvloop_available():
        if mode == "uvloop" and not _WARNED_FALLBACK:
            warnings.warn(
                "event loop 'uvloop' requested but uvloop is not importable; "
                "falling back to the stdlib asyncio loop (install the "
                "repro[net] extra to enable it)",
                RuntimeWarning,
                stacklevel=2,
            )
            _WARNED_FALLBACK = True
        return "asyncio"
    import asyncio

    import uvloop

    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"
