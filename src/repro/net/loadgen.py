"""Async open-loop load generator for the network front-end.

Closed-loop clients (send, wait, send again) hide overload: when the
server slows down, the client slows down with it, and measured latency
stays flattering.  The generator here is **open-loop** — arrival times
are drawn up front from a seeded RNG (fixed-interval or Poisson) and
every request fires at its scheduled instant whether or not earlier ones
have returned, exactly how independent clients hit a real service.
Under overload the in-flight count grows and the server's admission
layer must shed; the results record that honestly (``rejected`` counts
429s, ``deadline_exceeded`` 504s).

Each request runs on its own connection (``Connection: close``), so a
run is a stream of short independent sessions — no head-of-line blocking
between requests, at loopback connection cost.  Latency is measured from
each request's scheduled arrival, so client-side queueing delay (the
loop falling behind) counts against the server, as it would for a user.

Determinism: arrivals and query-point choices derive from ``seed``; the
wall-clock results of course vary, but the request *stream* is
reproducible run to run.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "LoadResult",
    "format_table",
    "http_fetch",
    "http_request",
    "run_load",
    "sweep",
    "ARRIVALS",
]

#: Supported arrival processes.
ARRIVALS = ("fixed", "poisson")


async def http_fetch(
    host: str,
    port: int,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    *,
    method: str = "POST",
    headers: Optional[Dict[str, str]] = None,
    timeout_s: float = 30.0,
) -> Tuple[int, Dict[str, Any], str, Dict[str, str]]:
    """One HTTP request over its own connection, headers included.

    Returns ``(status, parsed_json_body, raw_body_text, response_headers)``
    with header names lowercased — the full-fidelity client; the common
    case that only needs the body goes through :func:`http_request`.
    ``headers`` adds request headers (``X-Request-Id`` propagation).
    """
    body = b"" if payload is None else json.dumps(payload).encode()
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"

    async def _talk() -> Tuple[int, Dict[str, Any], str, Dict[str, str]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(head.encode() + body)
            await writer.drain()
            raw = await reader.read(-1)  # Connection: close → read to EOF
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header_blob, _, payload_blob = raw.partition(b"\r\n\r\n")
        header_lines = header_blob.split(b"\r\n")
        status_line = header_lines[0].decode("latin-1")
        status = int(status_line.split()[1])
        resp_headers: Dict[str, str] = {}
        for line in header_lines[1:]:
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                resp_headers[name.strip().lower()] = value.strip()
        text = payload_blob.decode("utf-8", errors="replace")
        try:
            parsed = json.loads(text) if text else {}
        except ValueError:
            parsed = {}
        if not isinstance(parsed, dict):
            parsed = {"value": parsed}
        return status, parsed, text, resp_headers

    return await asyncio.wait_for(_talk(), timeout_s)


async def http_request(
    host: str,
    port: int,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    *,
    method: str = "POST",
    headers: Optional[Dict[str, str]] = None,
    timeout_s: float = 30.0,
) -> Tuple[int, Dict[str, Any], str]:
    """One HTTP request over its own connection.

    Returns ``(status, parsed_json_body, raw_body_text)`` — the minimal
    JSON client the load generator, the CLI and the tests share.  The
    body parses as ``{}`` when it is not JSON (``/metrics``).  Use
    :func:`http_fetch` when response headers matter.
    """
    status, parsed, text, _ = await http_fetch(
        host, port, path, payload, method=method, headers=headers,
        timeout_s=timeout_s,
    )
    return status, parsed, text


@dataclass
class LoadResult:
    """Outcome of one fixed-QPS run against one server."""

    qps_target: float
    duration_s: float
    arrivals: str
    sent: int = 0
    ok: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    id_mismatches: int = 0
    elapsed_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the OK-response latencies (ms);
        NaN when nothing succeeded."""
        if not self.latencies_ms:
            return float("nan")
        ordered = sorted(self.latencies_ms)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def p50_ms(self) -> float:
        return self.percentile(50)

    @property
    def p95_ms(self) -> float:
        return self.percentile(95)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99)

    @property
    def achieved_qps(self) -> float:
        """OK responses per second of wall time (sustained throughput)."""
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qps_target": self.qps_target,
            "duration_s": self.duration_s,
            "arrivals": self.arrivals,
            "sent": self.sent,
            "ok": self.ok,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "id_mismatches": self.id_mismatches,
            "achieved_qps": self.achieved_qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
        }


def _arrival_offsets(
    qps: float, duration_s: float, arrivals: str, rng: np.random.Generator
) -> np.ndarray:
    """Scheduled send offsets (seconds from start), drawn up front."""
    count = max(1, int(round(qps * duration_s)))
    if arrivals == "fixed":
        return np.arange(count) / qps
    # Poisson process: exponential interarrivals at rate qps
    gaps = rng.exponential(scale=1.0 / qps, size=count)
    return np.cumsum(gaps) - gaps[0]


async def run_load(
    host: str,
    port: int,
    *,
    qps: float,
    duration_s: float,
    points: np.ndarray,
    k: Optional[int] = None,
    kind: str = "knn",
    index: Optional[str] = None,
    deadline_ms: Optional[float] = None,
    arrivals: str = "fixed",
    seed: int = 0,
    timeout_s: float = 30.0,
) -> LoadResult:
    """One open-loop run: ``qps`` single-point queries for ``duration_s``.

    ``points`` is the pool query points are drawn from (uniformly, from
    ``seed``); each request carries one point, the natural online-serving
    shape.  Every request sends a deterministic seeded ``X-Request-Id``
    (``lg-<seed>-<i>``) and asserts it round-trips on the response —
    ``id_mismatches`` counts responses whose echoed id was lost or wrong,
    a canary for header loss in the hand-rolled HTTP path.  Returns the
    aggregated :class:`LoadResult`.
    """
    if qps <= 0:
        raise ValueError(f"qps must be > 0, got {qps}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if arrivals not in ARRIVALS:
        raise ValueError(f"unknown arrivals {arrivals!r}; choose from {ARRIVALS}")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] < 1:
        raise ValueError(f"points must be (m, d), got shape {pts.shape}")
    rng = np.random.default_rng(seed)
    offsets = _arrival_offsets(qps, duration_s, arrivals, rng)
    choices = rng.integers(0, pts.shape[0], size=offsets.shape[0])
    result = LoadResult(qps_target=qps, duration_s=duration_s, arrivals=arrivals)

    async def _one(offset: float, row: int, seq: int) -> None:
        payload: Dict[str, Any] = {"point": pts[row].tolist()}
        if k is not None:
            payload["k"] = k
        if kind != "knn":
            payload["kind"] = kind
        if index is not None:
            payload["index"] = index
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        rid = f"lg-{seed:08x}-{seq:08d}"
        # latency from the *scheduled* arrival: loop lag counts, as it
        # would for a real client
        scheduled = t0 + offset
        try:
            status, _, _, resp_headers = await http_fetch(
                host, port, "/v1/query", payload,
                headers={"X-Request-Id": rid}, timeout_s=timeout_s,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            result.errors += 1
            return
        latency_ms = (time.perf_counter() - scheduled) * 1e3
        if resp_headers.get("x-request-id") != rid:
            result.id_mismatches += 1
        if status == 200:
            result.ok += 1
            result.latencies_ms.append(latency_ms)
        elif status == 429:
            result.rejected += 1
        elif status == 504:
            result.deadline_exceeded += 1
        else:
            result.errors += 1

    tasks: List["asyncio.Task[None]"] = []
    t0 = time.perf_counter()
    for seq, (offset, row) in enumerate(zip(offsets.tolist(), choices.tolist())):
        delay = t0 + offset - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        result.sent += 1
        tasks.append(asyncio.ensure_future(_one(offset, int(row), seq)))
    if tasks:
        await asyncio.gather(*tasks)
    result.elapsed_s = time.perf_counter() - t0
    return result


async def sweep(
    host: str,
    port: int,
    *,
    qps_list: Sequence[float],
    duration_s: float,
    points: np.ndarray,
    settle_s: float = 0.1,
    **kwargs: Any,
) -> List[LoadResult]:
    """One :func:`run_load` per QPS level, with a settle gap between."""
    results = []
    for qps in qps_list:
        results.append(
            await run_load(
                host, port, qps=qps, duration_s=duration_s, points=points, **kwargs
            )
        )
        if settle_s > 0:
            await asyncio.sleep(settle_s)
    return results


def format_table(rows: Sequence[LoadResult], *, title: str = "") -> str:
    """Fixed-width p50/p95/p99-vs-QPS table, one row per run."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'qps':>8} {'sent':>7} {'ok':>7} {'429':>6} {'504':>6} "
        f"{'err':>5} {'ach qps':>9} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}"
    )
    for r in rows:
        lines.append(
            f"{r.qps_target:>8.0f} {r.sent:>7} {r.ok:>7} {r.rejected:>6} "
            f"{r.deadline_exceeded:>6} {r.errors:>5} {r.achieved_qps:>9.1f} "
            f"{r.p50_ms:>8.2f} {r.p95_ms:>8.2f} {r.p99_ms:>8.2f}"
        )
    return "\n".join(lines)
