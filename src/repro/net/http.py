"""Hand-rolled minimal HTTP/1.1 over asyncio streams.

The front-end speaks just enough HTTP for a JSON service — request line,
headers, ``Content-Length`` bodies, keep-alive — with zero dependencies
beyond the stdlib.  Chunked transfer encoding, trailers, multipart and
HTTP/2 are deliberately out of scope: every client this repository ships
(the load generator, the CLI, the tests) speaks the same subset, and a
real deployment would sit this behind a terminating proxy anyway.

Parsing is strict where it matters for safety (bounded line/body sizes,
rejected transfer encodings) and tolerant where it doesn't (header case,
extra whitespace).  :class:`HttpError` carries an HTTP status so the
server can turn any parse failure into a well-formed error response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_response",
]

#: Reason phrases for the statuses the front-end actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_BYTES = 32768
_ALLOWED_METHODS = ("GET", "POST")


class HttpError(Exception):
    """A request that cannot be served; rendered as its HTTP status.

    ``retry_after`` (seconds) adds a ``Retry-After`` header — the
    admission layer uses it on 429 responses so clients know how long to
    back off.
    """

    def __init__(
        self, status: int, message: str, *, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after


@dataclass
class Request:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    _json: Any = field(default=None, repr=False)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body parsed as JSON (raises :class:`HttpError` 400 on
        malformed or non-object payloads; an empty body parses as ``{}``)."""
        if self._json is None:
            if not self.body:
                self._json = {}
            else:
                try:
                    self._json = json.loads(self.body)
                except ValueError as exc:
                    raise HttpError(400, f"malformed JSON body: {exc}") from None
            if not isinstance(self._json, dict):
                raise HttpError(400, "JSON body must be an object")
        return self._json


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int = 8 << 20
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed input (the caller responds
    with the carried status and closes) and
    :class:`asyncio.IncompleteReadError` when the peer disconnects
    mid-request.
    """
    try:
        raw_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(raw_line) > _MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = raw_line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {raw_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")
    if method not in _ALLOWED_METHODS:
        raise HttpError(405, f"method {method} not allowed")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        text = line.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked transfer encoding not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length}")
        if length > max_body_bytes:
            raise HttpError(413, f"body of {length} bytes exceeds {max_body_bytes}")
        body = await reader.readexactly(length)

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method, path=split.path or "/", query=query,
                   headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """One full HTTP/1.1 response as bytes, ready for ``writer.write``."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A JSON body rendered as a full response.

    ``json.dumps`` serializes floats with ``repr`` — the shortest
    round-tripping form — so float64 results survive the wire exactly:
    parsing the response reproduces the served arrays bit for bit (the
    loopback-equivalence tests rely on this).
    """
    body = json.dumps(payload, separators=(",", ":")).encode()
    return render_response(status, body, keep_alive=keep_alive,
                           extra_headers=extra_headers)


def error_payload(exc: HttpError) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    """(status, JSON payload, extra headers) for an :class:`HttpError`."""
    headers: Dict[str, str] = {}
    if exc.retry_after is not None:
        # ceil to whole seconds: Retry-After is integer-valued in HTTP
        headers["Retry-After"] = str(max(1, int(-(-exc.retry_after // 1))))
    return exc.status, {"error": exc.message, "status": exc.status}, headers
