"""Admission control: token-bucket rate limiting + bounded in-flight.

Load a server accepts but cannot serve in time is worse than load it
refuses immediately: refused requests cost one packet, queued ones hold
memory, stretch every later request's latency, and eventually blow the
SLO for *all* traffic.  The admission layer therefore sheds early:

- a :class:`TokenBucket` bounds the *sustained* request rate (burst
  capacity on top), answering 429 with an honest ``Retry-After`` when
  drained;
- an in-flight bound caps admitted-but-unanswered requests — the
  server's queueing is bounded by construction, so backpressure reaches
  clients instead of accumulating invisibly;
- per-request deadline budgets turn a stale answer into a fast 504
  (``net.deadline_exceeded``) instead of burning batch capacity on a
  response nobody is waiting for.

Everything takes an injectable monotonic clock, so the tests drive time
deterministically; nothing here touches asyncio.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from ..obs.metrics import MetricsView

__all__ = ["AdmissionController", "NetStats", "TokenBucket"]


class NetStats(MetricsView):
    """Front-end metrics, namespaced ``net.*`` in the metrics registry.

    Counters: ``requests`` (every request hitting an admission-gated
    endpoint), ``accepted``, ``rejected_rate`` (429 from the token
    bucket), ``rejected_inflight`` (429 from the in-flight bound),
    ``rejected_draining`` (503 while draining), ``deadline_exceeded``
    (504), ``queries`` / ``query_points`` / ``mutations`` / ``commits``
    (endpoint traffic), ``http_errors``.
    Gauges: ``inflight`` (admitted and unanswered right now),
    ``window_ms`` (the adaptive controller's latest batching-window
    decision), ``draining`` (0/1), ``tenants``.
    Series: ``window_ticks`` (every window decision, auditable via the
    metrics sinks).
    Histograms: ``request_ms`` — per-request wall latency, bucketed
    (mergeable, Prometheus ``histogram`` exposition, p50/p95/p99
    computable server-side; was a raw sample series before ISSUE 9).
    """

    _NS = "net"
    _COUNTER_FIELDS = (
        "requests",
        "accepted",
        "rejected_rate",
        "rejected_inflight",
        "rejected_draining",
        "deadline_exceeded",
        "queries",
        "query_points",
        "mutations",
        "commits",
        "http_errors",
    )
    _GAUGE_FIELDS = ("inflight", "window_ms", "draining", "tenants")
    _SERIES_FIELDS = ("window_ticks",)
    _HISTOGRAM_FIELDS = ("request_ms",)


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``try_acquire`` either takes one token or reports how long until one
    will be available (the ``Retry-After`` the server sends).  A
    ``rate`` of ``None`` disables limiting — every acquire succeeds.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: int = 1,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = int(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._last = clock()

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        self._refill(self.clock())
        return self._tokens

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def try_acquire(self) -> Tuple[bool, float]:
        """Take one token if available.

        Returns ``(True, 0.0)`` on success, else ``(False, wait_s)``
        where ``wait_s`` is the time until the bucket next holds a full
        token.
        """
        if self.rate is None:
            return True, 0.0
        now = self.clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class AdmissionController:
    """The gate every ``/v1/*`` request passes before touching an index.

    Combines the token bucket with the in-flight bound and keeps the
    ``net.*`` admission counters.  ``admit()`` raises nothing — it
    returns ``(ok, retry_after_s, reason)`` and lets the server render
    the 429 — so it stays usable outside the HTTP layer (the load
    generator's self-serve mode, unit tests).
    """

    def __init__(
        self,
        *,
        rate: Optional[float] = None,
        burst: int = 256,
        max_inflight: int = 1024,
        stats: Optional[NetStats] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.bucket = TokenBucket(rate, burst, clock=clock)
        self.max_inflight = int(max_inflight)
        self.stats = stats if stats is not None else NetStats()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Admitted requests not yet released."""
        return self._inflight

    def admit(self) -> Tuple[bool, float, str]:
        """Try to admit one request.

        Returns ``(True, 0.0, "")`` on success — the caller MUST pair it
        with exactly one :meth:`release` — or ``(False, retry_after_s,
        reason)`` with ``reason`` in ``{"rate", "inflight"}``.
        """
        self.stats.requests += 1
        if self._inflight >= self.max_inflight:
            self.stats.rejected_inflight += 1
            # in-flight drains at the serving rate; one batch window is
            # an honest lower bound for "try again"
            return False, 0.05, "inflight"
        ok, wait_s = self.bucket.try_acquire()
        if not ok:
            self.stats.rejected_rate += 1
            return False, wait_s, "rate"
        self._inflight += 1
        self.stats.accepted += 1
        self.stats.inflight = self._inflight
        return True, 0.0, ""

    def release(self) -> None:
        """Mark one admitted request answered (or abandoned)."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1
        self.stats.inflight = self._inflight
