"""SLO-aware adaptive batching window.

The micro-batcher's ``max_wait_ms`` is a latency/throughput dial: at 0
every request executes alone (lowest possible latency, worst per-row
cost), at its ceiling batches fill (best amortization, every request
pays the window in latency).  No fixed setting is right across load
levels — an idle service should answer instantly, an overloaded one
should batch hard — so :class:`AdaptiveWindow` moves the dial
continuously:

- an EWMA of the **arrival rate** estimates how many requests one full
  window would collect; the window opens in proportion to that fill
  (``rate * ceiling >= max_batch`` ⇒ full ceiling, an idle stream ⇒ 0),
  so waiting is only ever spent where it buys amortization;
- an observed **p95 latency** (ring buffer over recent requests) caps
  the result: while p95 exceeds the SLO the window shrinks
  proportionally, trading throughput back for latency until the SLO
  holds.

Every decision is exported as the ``net.window_ms`` gauge plus a
``net.window_ticks`` series sample, so the controller's behavior under
any load trace is auditable from the metrics sinks alone.  The
controller is pure arithmetic over an injectable clock — no asyncio, no
threads — and deterministic given the same call sequence.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Optional

from ..obs.metrics import Metrics

__all__ = ["AdaptiveWindow"]


class AdaptiveWindow:
    """Load- and SLO-proportional ``max_wait_ms`` controller.

    Parameters
    ----------
    ceiling_ms:
        The largest window ever issued (the fixed ``max_wait_ms`` a
        non-adaptive server would use).
    max_batch:
        The batcher's batch-size bound; with arrivals at rate ``r`` the
        controller targets the window that would collect ``max_batch``
        requests: ``ceiling * min(1, r * ceiling / max_batch)``.
    slo_p95_ms:
        Shrink the window whenever observed p95 latency exceeds this
        (``None`` disables the latency term).
    alpha:
        EWMA smoothing factor for the arrival rate, in (0, 1]; higher
        reacts faster.
    floor_ms:
        The smallest non-zero window issued while any load is present
        (0.0 keeps the classic flush-immediately behavior when idle).
    latency_window:
        Ring-buffer length for the p95 estimate.
    latency_source:
        Optional callable returning the current p95 estimate in
        milliseconds (or ``None`` while unknown).  When set it replaces
        the private ring buffer as the controller's latency eye — the
        server wires an :class:`~repro.obs.rt.SLOTracker`'s rolling
        histogram p95 here (``NetConfig.window_latency_source="slo"``),
        so the window controller and the SLO report read the same
        number.
    metrics:
        Registry receiving the ``net.window_ms`` gauge and
        ``net.window_ticks`` series (``None`` records nothing).
    clock:
        Monotonic-seconds source, injectable for tests.
    """

    def __init__(
        self,
        *,
        ceiling_ms: float,
        max_batch: int,
        slo_p95_ms: Optional[float] = None,
        alpha: float = 0.2,
        floor_ms: float = 0.0,
        latency_window: int = 256,
        latency_source: Optional[Callable[[], Optional[float]]] = None,
        metrics: Optional[Metrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ceiling_ms < 0:
            raise ValueError(f"ceiling_ms must be >= 0, got {ceiling_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= floor_ms <= ceiling_ms and ceiling_ms > 0:
            raise ValueError(
                f"floor_ms must be in [0, ceiling_ms], got {floor_ms}"
            )
        self.ceiling_ms = float(ceiling_ms)
        self.max_batch = int(max_batch)
        self.slo_p95_ms = slo_p95_ms
        self.alpha = float(alpha)
        self.floor_ms = float(floor_ms)
        self.latency_source = latency_source
        self.metrics = metrics
        self.clock = clock
        self._rate = 0.0  # EWMA arrivals/second
        self._last_arrival: Optional[float] = None
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))

    # -- observations ------------------------------------------------------

    @property
    def rate(self) -> float:
        """The current EWMA arrival-rate estimate (requests/second)."""
        return self._rate

    def on_arrival(self, count: int = 1, now: Optional[float] = None) -> None:
        """Fold ``count`` request arrivals at ``now`` into the rate EWMA."""
        if count < 1:
            return
        if now is None:
            now = self.clock()
        if self._last_arrival is None:
            self._last_arrival = now
            return
        dt = now - self._last_arrival
        self._last_arrival = now
        if dt <= 0:
            # same-instant burst: treat as rate over one microsecond so a
            # tight burst registers as high load rather than dividing by 0
            dt = 1e-6
        inst = count / dt
        self._rate = self.alpha * inst + (1.0 - self.alpha) * self._rate

    def decay_idle(self, now: Optional[float] = None) -> None:
        """Decay the rate estimate across an arrival-free gap.

        The EWMA only updates on arrivals, so a stream that stops would
        leave the rate frozen high; the flusher calls this on idle ticks
        to fold the silence in (as a zero-arrival observation over the
        gap).
        """
        if self._last_arrival is None:
            return
        if now is None:
            now = self.clock()
        gap = now - self._last_arrival
        if gap <= 0:
            return
        # silence of `gap` seconds caps the plausible rate at 1/gap
        self._rate = min(self._rate, (1.0 - self.alpha) / gap + self.alpha * 0.0)

    def on_latency(self, latency_ms: float) -> None:
        """Record one fulfilled request's wall latency (milliseconds)."""
        self._latencies.append(float(latency_ms))

    def observed_p95_ms(self) -> Optional[float]:
        """The p95 estimate the window decision uses: the external
        ``latency_source`` when one is wired, else the private ring
        buffer (``None`` while no latency has been observed)."""
        if self.latency_source is not None:
            return self.latency_source()
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        # nearest-rank p95 over the ring buffer
        rank = max(0, int(-(-0.95 * len(ordered) // 1)) - 1)
        return ordered[rank]

    # -- the decision ------------------------------------------------------

    def window_ms(self, queue_depth: int = 0) -> float:
        """The batching window to use right now, in milliseconds.

        Load-proportional base, SLO cap, clamped to
        ``[floor_ms or 0, ceiling_ms]``; every call emits one gauge tick.
        """
        expected = self._rate * (self.ceiling_ms / 1e3)  # arrivals/ceiling
        fill = min(1.0, expected / self.max_batch)
        window = self.ceiling_ms * fill
        if queue_depth >= self.max_batch:
            window = 0.0  # a full batch must never wait
        if self.slo_p95_ms is not None and window > 0:
            p95 = self.observed_p95_ms()
            if p95 is not None and p95 > self.slo_p95_ms:
                window *= self.slo_p95_ms / p95
        if window > 0:
            window = max(self.floor_ms, window)
        window = min(self.ceiling_ms, window)
        if self.metrics is not None:
            self.metrics.set_gauge("net.window_ms", window)
            self.metrics.observe("net.window_ticks", window)
        return window
