"""The asyncio HTTP front-end: admission → micro-batch → execute → respond.

:class:`NetServer` is the network face of the serving stack — the same
shape as a model-inference front-end.  A request's life:

1. **admission** (:mod:`repro.net.admission`): token bucket + in-flight
   bound; shed load answers 429 with ``Retry-After`` before touching an
   index.
2. **batching**: default-``k`` knn queries join the tenant's
   :class:`~repro.serve.batcher.Batcher` queue; a per-tenant flusher
   task executes the queue when the batching window — fixed, or steered
   by :class:`~repro.net.adaptive.AdaptiveWindow` — elapses (a full
   batch executes immediately on submit, as always).  Requests that the
   shared batcher cannot carry (``k`` override, ``kind="covering"``)
   execute directly against the same snapshot — per-row answers are
   batch-independent, so both paths are bit-identical to
   ``Batcher.submit`` on the same index version.
3. **deadline**: a request not answered within its budget gets 504 and
   a ``net.deadline_exceeded`` count; its batch slot still executes
   (the answer is simply not delivered).
4. **respond**: JSON over keep-alive HTTP/1.1; ``json.dumps`` uses
   ``repr`` floats, so float64 answers survive the wire bit-exactly.

Mutations (``POST /v1/mutate``) run on the same event loop, serialized
with queries by construction: a commit publishes the new snapshot to the
tenant's registry and hot-swaps the batcher, which flushes the pending
queue against the *old* version first — no torn reads mid-traffic.

The server is single-loop and single-threaded; batch execution blocks
the loop for one batch's wall time.  That is a deliberate trade — it is
what serializes queries and swaps without locks, and the batch *is* the
unit of throughput — mirroring the synchronous design of the batcher
itself.  :class:`ServerThread` runs the whole loop on a background
thread for tests, benchmarks and the in-process load generator.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import Metrics
from ..obs.rt import FlightRecorder, RequestTimeline, SLOTracker
from ..serve.batcher import Ticket
from .adaptive import AdaptiveWindow
from .admission import AdmissionController, NetStats
from .config import NetConfig
from .http import (
    HttpError,
    Request,
    error_payload,
    json_response,
    read_request,
    render_response,
)
from .tenancy import DEFAULT_TENANT, Tenant, TenantManager

__all__ = ["NetServer", "ServerThread"]


class _TenantLoop:
    """Per-tenant flusher state: the waiter list, window controller and
    SLO tracker."""

    __slots__ = ("tenant", "window", "slo", "waiters", "event", "task")

    def __init__(
        self,
        tenant: Tenant,
        window: Optional[AdaptiveWindow],
        slo: Optional[SLOTracker] = None,
    ) -> None:
        self.tenant = tenant
        self.window = window
        self.slo = slo
        self.waiters: List[Tuple[Ticket, "asyncio.Future[None]"]] = []
        self.event = asyncio.Event()
        self.task: Optional["asyncio.Task[None]"] = None


class NetServer:
    """HTTP/1.1 JSON front-end over a :class:`TenantManager`.

    Endpoints
    ---------
    ``POST /v1/query``
        ``{"point": [..]}`` or ``{"points": [[..], ..]}``, optional
        ``"k"``, ``"kind"`` (``"knn"``/``"covering"``), ``"index"``
        (tenant name), ``"deadline_ms"``.  Responds with per-point
        ``results`` and the index ``version`` that answered.
    ``POST /v1/mutate``
        ``{"insert": [[..], ..], "delete": [ids], "commit": bool,
        "index": name}`` — buffers mutations on the tenant's mutable
        index; ``"commit": true`` commits, publishes the snapshot and
        hot-swaps serving mid-traffic.
    ``GET /healthz``
        200 with per-tenant state; 503 while draining.
    ``GET /metrics``
        Prometheus text exposition of the merged ``net.*`` + per-tenant
        ``serve.*`` registries (histogram families included; SLO gauges
        refreshed at scrape time).
    ``GET /debug/requests`` / ``GET /debug/slow`` / ``GET /debug/vars``
        The flight recorder (last-N timelines / slowest-K, optional
        ``?limit=``) and a one-stop variables dump (uptime, in-flight,
        tenants, SLO summaries, counters, gauges).

    Every request is assigned an ``X-Request-Id`` — client-supplied, or
    generated from a deterministic per-server counter — and the id is
    echoed on the response (success and error alike, whenever the
    request parsed far enough to have one).  With
    ``config.trace_requests`` the request's full timeline lands in the
    flight recorder; either way the response bytes are identical —
    tracing only decides what is *retained*.

    Parameters
    ----------
    tenants:
        The tenant map to serve (built via :class:`TenantManager.add`).
    config:
        Every front-end knob; see :class:`~repro.net.config.NetConfig`.
    metrics:
        Registry for the server's ``net.*`` stats (fresh by default).
    clock:
        Monotonic-seconds source for latency accounting, injectable for
        tests.
    """

    def __init__(
        self,
        tenants: TenantManager,
        *,
        config: Optional[NetConfig] = None,
        metrics: Optional[Metrics] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else tenants.config
        self.tenants = tenants
        self.metrics = metrics if metrics is not None else Metrics()
        self.stats = NetStats(metrics=self.metrics)
        self.clock = clock
        self.admission = AdmissionController(
            rate=self.config.rate,
            burst=self.config.burst,
            max_inflight=self.config.max_inflight,
            stats=self.stats,
            clock=clock,
        )
        self.recorder = FlightRecorder(
            capacity=self.config.recorder_capacity,
            slow_k=self.config.recorder_slow_k,
        )
        self._rid_seq = 0
        self._started_at = time.time()
        self._loops: Dict[str, _TenantLoop] = {}
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns ``(host, port)``.

        With ``config.port=0`` the bound ephemeral port is reported here
        (and on :attr:`port`).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.stats.tenants = len(self.tenants)
        self.stats.draining = 0
        for tenant in self.tenants.tenants():
            self._loop_state(tenant)
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start()`` first)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> Dict[str, Any]:
        """Gracefully drain and shut everything down; see
        :func:`repro.net.drain.drain`."""
        from .drain import drain

        return await drain(self)

    def _loop_state(self, tenant: Tenant) -> _TenantLoop:
        state = self._loops.get(tenant.name)
        if state is None:
            window = None
            if self.config.adaptive:
                window = AdaptiveWindow(
                    ceiling_ms=self.config.max_wait_ms,
                    max_batch=self.config.max_batch,
                    slo_p95_ms=self.config.slo_p95_ms,
                    metrics=self.metrics,
                    clock=self.clock,
                )
            slo = None
            if self.config.slo_p95_ms is not None:
                prefix = (
                    "net.slo"
                    if tenant.name == DEFAULT_TENANT
                    else f"net.slo.{tenant.name}"
                )
                slo = SLOTracker(
                    self.config.slo_p95_ms,
                    objective=self.config.slo_objective,
                    error_objective=self.config.slo_error_objective,
                    metrics=self.metrics,
                    prefix=prefix,
                    clock=self.clock,
                )
                if window is not None and self.config.window_latency_source == "slo":
                    # one latency eye for both: the window controller
                    # steers by the same rolling p95 the SLO reports
                    window.latency_source = slo.p95_ms
            state = _TenantLoop(tenant, window, slo)
            state.task = asyncio.get_running_loop().create_task(
                self._flusher(state), name=f"repro-net-flusher-{tenant.name}"
            )
            self._loops[tenant.name] = state
        return state

    # -- connection handling -----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except HttpError as exc:
                    self.stats.http_errors += 1
                    status, payload, headers = error_payload(exc)
                    writer.write(
                        json_response(
                            status, payload, keep_alive=False, extra_headers=headers
                        )
                    )
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                rid = self._request_id(request)
                try:
                    response = await self._route(request, rid)
                except HttpError as exc:
                    self.stats.http_errors += 1
                    status, payload, headers = error_payload(exc)
                    headers["X-Request-Id"] = rid
                    response = json_response(
                        status,
                        payload,
                        keep_alive=request.keep_alive,
                        extra_headers=headers,
                    )
                except Exception as exc:  # a handler bug must not kill the conn
                    self.stats.http_errors += 1
                    response = json_response(
                        500,
                        {"error": f"{type(exc).__name__}: {exc}", "status": 500},
                        keep_alive=request.keep_alive,
                        extra_headers={"X-Request-Id": rid},
                    )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _request_id(self, request: Request) -> str:
        """The request's trace id: client-supplied, or generated.

        Generated ids come from a deterministic per-server counter, so
        two servers fed the same request stream assign the same ids —
        part of the byte-stability contract the overhead harness checks.
        """
        rid = request.headers.get("x-request-id", "").strip()
        if rid:
            return rid[:128]
        self._rid_seq += 1
        return f"r{self._rid_seq:012x}"

    async def _route(self, request: Request, rid: str) -> bytes:
        if request.path == "/healthz" and request.method == "GET":
            return self._handle_healthz(request, rid)
        if request.path == "/metrics" and request.method == "GET":
            return self._handle_metrics(request, rid)
        if request.path == "/v1/query" and request.method == "POST":
            return await self._handle_query(request, rid)
        if request.path == "/v1/mutate" and request.method == "POST":
            return await self._handle_mutate(request, rid)
        if request.path == "/debug/requests" and request.method == "GET":
            return self._handle_debug_requests(request, rid)
        if request.path == "/debug/slow" and request.method == "GET":
            return self._handle_debug_slow(request, rid)
        if request.path == "/debug/vars" and request.method == "GET":
            return self._handle_debug_vars(request, rid)
        raise HttpError(404, f"no route for {request.method} {request.path}")

    # -- plain endpoints ---------------------------------------------------

    def _handle_healthz(self, request: Request, rid: str) -> bytes:
        payload = {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "inflight": self.admission.inflight,
            "tenants": [t.describe() for t in self.tenants.tenants()],
        }
        status = 503 if self._draining else 200
        return json_response(
            status, payload, keep_alive=request.keep_alive,
            extra_headers={"X-Request-Id": rid},
        )

    def _export_slo(self) -> None:
        """Refresh every tenant's ``net.slo.*`` gauges (scrape-time, so
        the per-request path never pays the window fold)."""
        for state in self._loops.values():
            if state.slo is not None:
                state.slo.export()

    def _handle_metrics(self, request: Request, rid: str) -> bytes:
        self._export_slo()
        merged = self.tenants.collect_metrics(self.metrics)
        text = merged.to_prometheus()
        return render_response(
            200,
            text.encode(),
            content_type="text/plain; version=0.0.4",
            keep_alive=request.keep_alive,
            extra_headers={"X-Request-Id": rid},
        )

    # -- debug endpoints ---------------------------------------------------

    @staticmethod
    def _debug_limit(request: Request) -> Optional[int]:
        raw = request.query.get("limit")
        if raw is None:
            return None
        try:
            limit = int(raw)
        except ValueError:
            raise HttpError(400, f"bad limit {raw!r}") from None
        if limit < 0:
            raise HttpError(400, f"limit must be >= 0, got {limit}")
        return limit

    def _handle_debug_requests(self, request: Request, rid: str) -> bytes:
        payload = {
            "tracing": self.config.trace_requests,
            "recorded": self.recorder.recorded,
            "requests": [
                t.to_dict() for t in self.recorder.recent(self._debug_limit(request))
            ],
        }
        return json_response(
            200, payload, keep_alive=request.keep_alive,
            extra_headers={"X-Request-Id": rid},
        )

    def _handle_debug_slow(self, request: Request, rid: str) -> bytes:
        payload = {
            "tracing": self.config.trace_requests,
            "recorded": self.recorder.recorded,
            "slowest": [
                t.to_dict() for t in self.recorder.slowest(self._debug_limit(request))
            ],
        }
        return json_response(
            200, payload, keep_alive=request.keep_alive,
            extra_headers={"X-Request-Id": rid},
        )

    def _handle_debug_vars(self, request: Request, rid: str) -> bytes:
        self._export_slo()
        merged = self.tenants.collect_metrics(self.metrics)
        payload = {
            "uptime_s": time.time() - self._started_at,
            "draining": self._draining,
            "inflight": self.admission.inflight,
            "tracing": self.config.trace_requests,
            "tenants": [t.describe() for t in self.tenants.tenants()],
            "recorder": {
                "recorded": self.recorder.recorded,
                "retained": len(self.recorder),
                "capacity": self.recorder.capacity,
                "slow_k": self.recorder.slow_k,
            },
            "slo": {
                name: state.slo.summary()
                for name, state in sorted(self._loops.items())
                if state.slo is not None
            },
            "counters": dict(sorted(merged.counters.items())),
            "gauges": dict(sorted(merged.gauges.items())),
        }
        return json_response(
            200, payload, keep_alive=request.keep_alive,
            extra_headers={"X-Request-Id": rid},
        )

    # -- admission-gated endpoints -----------------------------------------

    def _admit(self) -> None:
        if self._draining:
            self.stats.requests += 1
            self.stats.rejected_draining += 1
            raise HttpError(503, "server is draining; not admitting requests")
        ok, retry_after, reason = self.admission.admit()
        if not ok:
            raise HttpError(
                429,
                f"over capacity ({reason}); retry after {retry_after:.3f}s",
                retry_after=retry_after,
            )

    def _record_rejection(self, rid: str, kind: str, exc: HttpError) -> None:
        """File a timeline for a request refused at the door."""
        if not self.config.trace_requests:
            return
        self.recorder.record(
            RequestTimeline(
                request_id=rid,
                kind=kind,
                status=exc.status,
                admitted_at=time.time(),
                error=exc.message,
            )
        )

    async def _handle_query(self, request: Request, rid: str) -> bytes:
        try:
            self._admit()
        except HttpError as exc:
            self._record_rejection(rid, "query", exc)
            raise
        t0 = self.clock()
        tl = RequestTimeline(request_id=rid, kind="query", admitted_at=time.time())
        state: Optional[_TenantLoop] = None
        try:
            try:
                payload = request.json()
                tenant = self._resolve_tenant(payload)
                points = self._parse_points(payload, tenant.d)
                kind = payload.get("kind", "knn")
                if kind not in ("knn", "covering"):
                    raise HttpError(400, f"unknown kind {kind!r}")
                tl.kind = kind
                tl.tenant = tenant.name
                k = payload.get("k")
                if k is not None:
                    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                        raise HttpError(400, f"k must be a positive integer, got {k!r}")
                deadline_ms = self._resolve_deadline(payload)
                state = self._loop_state(tenant)
                m = points.shape[0]
                tl.points = m
                self.stats.queries += 1
                self.stats.query_points += m
                if state.window is not None:
                    state.window.on_arrival(count=m)
                version = tenant.version
                tl.index_version = version
                if kind == "knn" and (k is None or k == tenant.k):
                    tickets = await self._submit_batched(
                        tenant, state, points, deadline_ms
                    )
                    values = [t.value for t in tickets]
                    tl.cache_hit = all(t.cached for t in tickets)
                    executed = [t for t in tickets if not t.cached]
                    if executed:
                        # multi-point requests may span batches: report the
                        # first batch's identity, the worst queue wait and
                        # the worst execute (what the request's tail paid)
                        tl.batch_id = executed[0].batch_id
                        tl.batch_size = executed[0].batch_size
                        tl.execute_ms = max(t.execute_ms or 0.0 for t in executed)
                        tl.queued_ms = max(
                            max(
                                0.0,
                                (t.completed_at - t.submitted_at) * 1e3
                                - (t.execute_ms or 0.0),
                            )
                            for t in executed
                        )
                    else:
                        tl.queued_ms = 0.0
                        tl.execute_ms = 0.0
                else:
                    # k override / covering: direct execution against the
                    # same snapshot — batch-independent, so still bit-identical
                    te0 = self.clock()
                    values = tenant.execute_direct(kind, points, k)
                    tl.execute_ms = (self.clock() - te0) * 1e3
                    tl.queued_ms = 0.0
                    tl.cache_hit = False
                results = _serialize_results(kind, values)
                latency_ms = (self.clock() - t0) * 1e3
                self.stats.request_ms.observe(latency_ms)
                if state.window is not None:
                    state.window.on_latency(latency_ms)
                tl.status = 200
                body = {
                    "index": tenant.name,
                    "version": version,
                    "kind": kind,
                    "k": tenant.k if (kind == "knn" and k is None) else k,
                    "results": results,
                }
                return json_response(
                    200, body, keep_alive=request.keep_alive,
                    extra_headers={"X-Request-Id": rid},
                )
            except HttpError as exc:
                tl.status = exc.status
                tl.error = exc.message
                raise
            except Exception as exc:
                tl.status = 500
                tl.error = f"{type(exc).__name__}: {exc}"
                raise
        finally:
            tl.total_ms = (self.clock() - t0) * 1e3
            if self.config.trace_requests:
                self.recorder.record(tl)
            if state is not None and state.slo is not None:
                state.slo.record(tl.total_ms, ok=tl.ok)
            self.admission.release()

    async def _handle_mutate(self, request: Request, rid: str) -> bytes:
        try:
            self._admit()
        except HttpError as exc:
            self._record_rejection(rid, "mutate", exc)
            raise
        t0 = self.clock()
        tl = RequestTimeline(request_id=rid, kind="mutate", admitted_at=time.time())
        try:
            payload = request.json()
            tenant = self._resolve_tenant(payload)
            tl.tenant = tenant.name
            inserts = None
            if "insert" in payload:
                inserts = self._parse_points(
                    {"points": payload["insert"]}, tenant.index.d
                )
            deletes = payload.get("delete")
            if deletes is not None:
                if not isinstance(deletes, list) or not all(
                    isinstance(i, int) and not isinstance(i, bool) for i in deletes
                ):
                    raise HttpError(400, '"delete" must be a list of integer ids')
            commit = payload.get("commit", False)
            if not isinstance(commit, bool):
                raise HttpError(400, '"commit" must be a boolean')
            n_ops = (0 if inserts is None else inserts.shape[0]) + (
                0 if deletes is None else len(deletes)
            )
            try:
                info, flushed = tenant.mutate(inserts, deletes, commit=commit)
            except ValueError as exc:
                raise HttpError(400, str(exc)) from None
            # the swap flushed queued tickets against the old version;
            # resolve their waiting requests now
            state = self._loops.get(tenant.name)
            if state is not None:
                self._settle(state)
            self.stats.mutations += n_ops
            tl.points = n_ops
            committed = info is not None and not info.noop
            if committed:
                self.stats.commits += 1
            ins_pending, del_pending = tenant.index.pending
            tl.index_version = tenant.version
            tl.status = 200
            body: Dict[str, Any] = {
                "index": tenant.name,
                "version": tenant.version,
                "committed": committed,
                "flushed": flushed,
                "pending": {"inserts": ins_pending, "deletes": del_pending},
            }
            if info is not None:
                body["commit"] = {
                    "version": info.version,
                    "n": info.n,
                    "inserted": info.inserted,
                    "deleted": info.deleted,
                    "churn": info.churn,
                    "punted": info.punted,
                    "noop": info.noop,
                }
            return json_response(
                200, body, keep_alive=request.keep_alive,
                extra_headers={"X-Request-Id": rid},
            )
        except HttpError as exc:
            tl.status = exc.status
            tl.error = exc.message
            raise
        except Exception as exc:
            tl.status = 500
            tl.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            tl.total_ms = tl.execute_ms = (self.clock() - t0) * 1e3
            if self.config.trace_requests:
                self.recorder.record(tl)
            self.admission.release()

    # -- request plumbing --------------------------------------------------

    def _resolve_tenant(self, payload: Dict[str, Any]) -> Tenant:
        name = payload.get("index")
        if name is not None and not isinstance(name, str):
            raise HttpError(400, f'"index" must be a string, got {name!r}')
        try:
            return self.tenants.get(name)
        except KeyError as exc:
            raise HttpError(404, str(exc)) from None

    def _resolve_deadline(self, payload: Dict[str, Any]) -> Optional[float]:
        deadline = payload.get("deadline_ms", None)
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
                raise HttpError(400, f"deadline_ms must be a number, got {deadline!r}")
            if deadline <= 0:
                raise HttpError(400, f"deadline_ms must be > 0, got {deadline}")
        configured = self.config.deadline_ms
        if deadline is None:
            return configured
        if configured is not None:
            return min(float(deadline), configured)
        return float(deadline)

    @staticmethod
    def _parse_points(payload: Dict[str, Any], d: int) -> np.ndarray:
        if ("point" in payload) == ("points" in payload):
            raise HttpError(400, 'provide exactly one of "point" or "points"')
        raw = payload.get("point", payload.get("points"))
        try:
            pts = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"malformed points: {exc}") from None
        if "point" in payload:
            if pts.ndim != 1:
                raise HttpError(400, f'"point" must be a flat list, got shape {pts.shape}')
            pts = pts[None, :]
        if pts.ndim != 2 or pts.shape[0] < 1:
            raise HttpError(400, f"expected (m, {d}) points, got shape {pts.shape}")
        if pts.shape[1] != d:
            raise HttpError(
                400, f"dimension mismatch: index is {d}-D, points are {pts.shape[1]}-D"
            )
        if not np.all(np.isfinite(pts)):
            raise HttpError(400, "points must be finite")
        return pts

    # -- the batched read path ---------------------------------------------

    def _window_ms(self, state: _TenantLoop) -> float:
        if state.window is None:
            return self.config.max_wait_ms
        return state.window.window_ms(queue_depth=state.tenant.batcher.pending)

    def _settle(self, state: _TenantLoop) -> None:
        """Resolve waiter futures whose tickets a flush fulfilled."""
        remaining: List[Tuple[Ticket, "asyncio.Future[None]"]] = []
        for ticket, fut in state.waiters:
            if ticket.done:
                if not fut.done():
                    fut.set_result(None)
            else:
                remaining.append((ticket, fut))
        state.waiters[:] = remaining

    async def _submit_batched(
        self,
        tenant: Tenant,
        state: _TenantLoop,
        points: np.ndarray,
        deadline_ms: Optional[float],
    ) -> List[Ticket]:
        # submit() may auto-flush at max_batch, fulfilling earlier
        # waiters' tickets along the way — settle them before waiting
        tickets = [tenant.batcher.submit(row) for row in points]
        self._settle(state)
        pending = [t for t in tickets if not t.done]
        if pending:
            if self._window_ms(state) <= 0.0:
                tenant.batcher.flush()
                self._settle(state)
            else:
                loop = asyncio.get_running_loop()
                futures = []
                for ticket in pending:
                    fut: "asyncio.Future[None]" = loop.create_future()
                    state.waiters.append((ticket, fut))
                    futures.append(fut)
                state.event.set()
                timeout = deadline_ms / 1e3 if deadline_ms is not None else None
                try:
                    await asyncio.wait_for(asyncio.gather(*futures), timeout)
                except asyncio.TimeoutError:
                    self.stats.deadline_exceeded += 1
                    raise HttpError(
                        504, f"deadline of {deadline_ms:g}ms exceeded"
                    ) from None
        return tickets

    async def _flusher(self, state: _TenantLoop) -> None:
        """Per-tenant batch trigger: flush when the window elapses.

        Sleeps while the queue is empty (woken by the first waiter);
        otherwise compares the oldest waiter's age against the current
        window — fixed, or the adaptive controller's latest decision —
        and flushes when due.  Uses the batcher's own clock so ticket
        timestamps compare exactly.
        """
        tenant = state.tenant
        try:
            while True:
                if not state.waiters:
                    state.event.clear()
                    if state.window is not None:
                        state.window.decay_idle(tenant.batcher.clock())
                    await state.event.wait()
                    continue
                window_ms = self._window_ms(state)
                oldest = state.waiters[0][0].submitted_at
                elapsed_ms = (tenant.batcher.clock() - oldest) * 1e3
                if elapsed_ms >= window_ms:
                    tenant.batcher.flush()
                    self._settle(state)
                else:
                    # re-check at the earlier of window expiry and a 5ms
                    # tick (the adaptive window may shrink mid-wait)
                    await asyncio.sleep(min(window_ms - elapsed_ms, 5.0) / 1e3)
        except asyncio.CancelledError:
            pass


def _serialize_results(kind: str, values: List[Any]) -> List[Dict[str, Any]]:
    results = []
    if kind == "knn":
        for idx, sq in values:
            results.append({"ids": idx.tolist(), "sq_dists": sq.tolist()})
    else:
        for ids in values:
            results.append({"ids": ids.tolist()})
    return results


class ServerThread:
    """A :class:`NetServer` running its own event loop on a thread.

    The harness the tests, benchmarks and ``repro net load --self-serve``
    use: start, read :attr:`port`, talk HTTP over loopback, then
    :meth:`stop` (a full graceful drain).  The loop is created on the
    thread via :func:`repro.net.install_event_loop`, honoring the
    config's ``uvloop`` mode.
    """

    def __init__(self, server: NetServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.drain_summary: Optional[Dict[str, Any]] = None

    @property
    def port(self) -> int:
        port = self.server.port
        if port is None:
            raise RuntimeError("server thread not started")
        return port

    def start(self, timeout_s: float = 10.0) -> "ServerThread":
        from . import install_event_loop

        def _run() -> None:
            install_event_loop(self.server.config.uvloop)
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                try:
                    loop.run_until_complete(self.server.start())
                except BaseException as exc:  # surface bind errors to start()
                    self._startup_error = exc
                    return
                finally:
                    self._started.set()
                loop.run_forever()
                # stop() stopped the loop; the drain already ran on it
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, name="repro-net-server", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout_s)
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Drain gracefully, stop the loop, join the thread."""
        if self._thread is None or self._loop is None:
            raise RuntimeError("server thread not started")
        if self.drain_summary is None:
            future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
            self.drain_summary = future.result(timeout_s)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout_s)
        return self.drain_summary

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
