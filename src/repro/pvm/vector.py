"""PVector: a data-parallel array bound to a machine ledger.

The primitives in :mod:`repro.pvm.primitives` are free functions taking an
explicit machine; that is the right interface for algorithm internals, but
exploratory code reads better with an array type whose *operators* charge
the ledger automatically — the programming style of Blelloch's NESL /
scan-vector lisp that the paper's model comes from::

    v = PVector.iota(m, 8)
    w = (v * 2 + 1).scan()        # elementwise ops + prefix sum, all charged
    evens = v[v % 2 == 0]         # comparison + pack

Every operation charges exactly what the corresponding primitive would:
elementwise ops cost (1, n); reductions and scans cost one SCAN; boolean
selection costs a scan plus a permute.  Mixed PVector/scalar arithmetic is
supported; mixing vectors bound to *different* machines is an error (two
ledgers cannot share one instruction).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from . import primitives as P
from .machine import Machine

__all__ = ["PVector"]

Scalar = Union[int, float, bool, np.integer, np.floating, np.bool_]


class PVector:
    """A 1-D vector living on a simulated scan-vector machine.

    Wraps a numpy array plus the :class:`Machine` whose ledger pays for
    operations on it.  Instances are immutable by convention: operations
    return new vectors.
    """

    __slots__ = ("machine", "data")

    def __init__(self, machine: Machine, data: np.ndarray) -> None:
        arr = np.asarray(data)
        if arr.ndim != 1:
            raise ValueError(f"PVector is 1-D; got shape {arr.shape}")
        self.machine = machine
        self.data = arr

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_array(cls, machine: Machine, data: np.ndarray) -> "PVector":
        """Wrap an existing host array (free: no machine charge)."""
        return cls(machine, np.asarray(data))

    @classmethod
    def iota(cls, machine: Machine, n: int) -> "PVector":
        """The index vector [0, 1, ..., n-1] (one elementwise step)."""
        machine.charge(machine.ewise_cost(n))
        return cls(machine, np.arange(n))

    @classmethod
    def full(cls, machine: Machine, n: int, value: Scalar) -> "PVector":
        """A constant vector (the distribute primitive)."""
        return cls(machine, P.distribute(machine, value, n))

    # -- basics -----------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def to_numpy(self) -> np.ndarray:
        """The host array (free; reading results costs nothing)."""
        return self.data

    def _coerce(self, other: object) -> np.ndarray | Scalar:
        if isinstance(other, PVector):
            if other.machine is not self.machine:
                raise ValueError("cannot mix vectors bound to different machines")
            if len(other) != len(self):
                raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")
            return other.data
        if isinstance(other, (int, float, bool, np.integer, np.floating, np.bool_)):
            return other
        raise TypeError(f"unsupported operand type {type(other).__name__}")

    def _ewise(self, fn: Callable[[np.ndarray], np.ndarray], steps: float = 1.0) -> "PVector":
        out = fn(self.data)
        self.machine.charge(self.machine.ewise_cost(len(self), steps))
        return PVector(self.machine, out)

    def _binop(self, other: object, fn) -> "PVector":
        rhs = self._coerce(other)
        out = fn(self.data, rhs)
        self.machine.charge(self.machine.ewise_cost(len(self)))
        return PVector(self.machine, out)

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other):
        return self._binop(other, np.add)

    def __radd__(self, other):
        return self._binop(other, lambda a, b: np.add(b, a))

    def __sub__(self, other):
        return self._binop(other, np.subtract)

    def __rsub__(self, other):
        return self._binop(other, lambda a, b: np.subtract(b, a))

    def __mul__(self, other):
        return self._binop(other, np.multiply)

    def __rmul__(self, other):
        return self._binop(other, lambda a, b: np.multiply(b, a))

    def __truediv__(self, other):
        return self._binop(other, np.divide)

    def __mod__(self, other):
        return self._binop(other, np.mod)

    def __neg__(self):
        return self._ewise(np.negative)

    def __abs__(self):
        return self._ewise(np.abs)

    # -- comparisons (produce boolean PVectors) ------------------------------------

    def __lt__(self, other):
        return self._binop(other, np.less)

    def __le__(self, other):
        return self._binop(other, np.less_equal)

    def __gt__(self, other):
        return self._binop(other, np.greater)

    def __ge__(self, other):
        return self._binop(other, np.greater_equal)

    def __eq__(self, other):  # type: ignore[override]
        return self._binop(other, np.equal)

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(other, np.not_equal)

    __hash__ = None  # type: ignore[assignment]

    # -- collective operations -------------------------------------------------------

    def scan(self, op: str = "add", inclusive: bool = False) -> "PVector":
        """Prefix scan (the model's namesake primitive)."""
        return PVector(self.machine, P.scan(self.machine, self.data, op=op, inclusive=inclusive))

    def reduce(self, op: str = "add"):
        """Reduce to a scalar (one SCAN charge)."""
        return P.reduce(self.machine, self.data, op=op)

    def pack(self, mask: "PVector") -> "PVector":
        """Select elements where ``mask`` is true (scan + permute)."""
        m = self._coerce(mask)
        return PVector(self.machine, P.pack(self.machine, self.data, np.asarray(m, dtype=bool)))

    def __getitem__(self, key):
        if isinstance(key, PVector):
            if key.data.dtype == np.bool_:
                return self.pack(key)
            return self.gather(key)
        raise TypeError("PVector indexing takes a boolean or integer PVector")

    def gather(self, index: "PVector") -> "PVector":
        """Backpermute: ``out[i] = self[index[i]]``."""
        idx = self._coerce_index(index)
        return PVector(self.machine, P.gather(self.machine, self.data, idx))

    def permute(self, index: "PVector") -> "PVector":
        """Forward permute: ``out[index[i]] = self[i]``."""
        idx = self._coerce_index(index)
        if idx.shape[0] != len(self):
            raise ValueError("permutation must have the vector's length")
        return PVector(self.machine, P.permute(self.machine, self.data, idx))

    def _coerce_index(self, index: "PVector") -> np.ndarray:
        if not isinstance(index, PVector):
            raise TypeError("index must be a PVector")
        if index.machine is not self.machine:
            raise ValueError("cannot mix vectors bound to different machines")
        if not np.issubdtype(index.data.dtype, np.integer):
            raise TypeError("index vector must be integer-typed")
        return index.data

    def split(self, flags: "PVector") -> tuple["PVector", "PVector"]:
        """Stable two-way partition by a boolean flag vector."""
        f = np.asarray(self._coerce(flags), dtype=bool)
        lo, hi = P.split(self.machine, self.data, f)
        return PVector(self.machine, lo), PVector(self.machine, hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PVector(n={len(self)}, dtype={self.data.dtype})"
