"""Parallel vector model substrate (Blelloch scan-vector machine, simulated).

The paper states its bounds in a data-parallel machine model with a SCAN
primitive.  This subpackage simulates that machine: numpy executes the data
movement while a structural (depth, work) ledger records what the idealised
machine would pay, including ``max``-depth composition of parallel recursive
calls and a configurable SCAN cost policy (unit / log / loglog).
"""

from .cost import Cost, ZERO, par, seq
from .machine import Machine, SCAN_POLICIES
from .scheduler import SchedulePoint, brent_time, efficiency, schedule_curve, speedup
from . import primitives, sorting
from .sorting import (
    argsort_radix,
    floyd_rivest_select,
    parallel_k_smallest,
    random_permutation,
    randomized_select,
    split_radix_sort,
)
from .vector import PVector

__all__ = [
    "Cost",
    "ZERO",
    "par",
    "seq",
    "Machine",
    "SCAN_POLICIES",
    "brent_time",
    "speedup",
    "efficiency",
    "schedule_curve",
    "SchedulePoint",
    "primitives",
    "sorting",
    "argsort_radix",
    "floyd_rivest_select",
    "parallel_k_smallest",
    "random_permutation",
    "randomized_select",
    "split_radix_sort",
    "PVector",
]
