"""Brent scheduling: from (depth, work) to time on p processors.

The parallel vector model charges unbounded-processor costs.  Brent's
principle maps them onto any fixed processor count::

    W / p  <=  T_p  <=  W / p + D

where ``W`` is work, ``D`` is depth.  We report the upper bound (a greedy
scheduler achieves it), which is what "n processors, O(log n) time" means
operationally in the paper: with ``p = n`` and ``W = O(n)``, ``D = O(log n)``
the bound is ``O(log n)``.

This module also produces speedup/efficiency tables used by experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .cost import Cost

__all__ = ["brent_time", "speedup", "efficiency", "SchedulePoint", "schedule_curve"]


def brent_time(cost: Cost, processors: int) -> float:
    """Greedy-schedule upper bound ``W/p + D`` for ``cost`` on ``processors``."""
    if processors < 1:
        raise ValueError("processor count must be >= 1")
    return cost.work / processors + cost.depth


def speedup(cost: Cost, processors: int) -> float:
    """T_1 / T_p with T_1 = work (a single processor just executes the work)."""
    t1 = cost.work if cost.work > 0 else cost.depth
    tp = brent_time(cost, processors)
    return t1 / tp if tp > 0 else float("inf")


def efficiency(cost: Cost, processors: int) -> float:
    """Speedup per processor, in (0, 1]."""
    return speedup(cost, processors) / processors


@dataclass(frozen=True, slots=True)
class SchedulePoint:
    """One row of a scaling table: processors vs simulated time."""

    processors: int
    time: float
    speedup: float
    efficiency: float


def schedule_curve(cost: Cost, processor_counts: Sequence[int]) -> List[SchedulePoint]:
    """Brent-scheduled scaling curve over a list of processor counts."""
    points = []
    for p in processor_counts:
        points.append(
            SchedulePoint(
                processors=p,
                time=brent_time(cost, p),
                speedup=speedup(cost, p),
                efficiency=efficiency(cost, p),
            )
        )
    return points
