"""Sorting, permutation and selection as scan-vector programs.

Section 1 of the paper: "If we use more complicated constructions
including random permuting, integer sorting, and selection, then all the
algorithms presented in the paper can be implemented on a CRCW PRAM with
only an extra O(log log) factor".  This module provides those three
constructions in the simulated model, with their textbook scan-vector
costs:

- :func:`split_radix_sort` — Blelloch's classic radix sort: one stable
  ``split`` (two scans + permute) per key bit; depth O(bits) scans, work
  O(bits · n).
- :func:`random_permutation` — draw random keys and radix-sort them (the
  paper's "random permuting").
- :func:`randomized_select` — quickselect with scans: each round is O(1)
  scans and shrinks the candidate set geometrically in expectation, so
  expected depth O(log n) scan-steps; and
- :func:`floyd_rivest_select` — the two-pass sampling selection whose
  expected round count is O(1) (the engine behind the paper's
  O(log log k) k-smallest remark in §6.2).

All functions execute with numpy and charge the machine ledger exactly
what the scan-vector program would pay.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .cost import Cost
from .machine import Machine

__all__ = [
    "split_radix_sort",
    "argsort_radix",
    "random_permutation",
    "randomized_select",
    "floyd_rivest_select",
    "parallel_k_smallest",
]


def _bits_needed(keys: np.ndarray) -> int:
    if keys.size == 0:
        return 1
    top = int(keys.max())
    return max(1, top.bit_length())


def split_radix_sort(
    machine: Machine, keys: np.ndarray, bits: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable LSD radix sort of non-negative integer keys.

    Returns ``(sorted_keys, order)`` with ``sorted_keys = keys[order]``.
    One bit per pass, each pass a stable split (scan + scan + permute):
    depth = ``bits * (2 scans + 1 permute)``, work O(bits * n) — the
    canonical scan-vector sort.
    """
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise ValueError("keys must be a 1-D vector")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("radix sort takes integer keys")
    if arr.size and int(arr.min()) < 0:
        raise ValueError("radix sort takes non-negative keys")
    n = arr.shape[0]
    nbits = bits if bits is not None else _bits_needed(arr)
    order = np.arange(n, dtype=np.int64)
    current = arr.copy()
    for b in range(nbits):
        machine.charge(machine.ewise_cost(n))  # extract the bit
        machine.charge(machine.scan_cost(n).scaled(2.0))  # offsets of 0s and 1s
        machine.charge(machine.permute_cost(n))
        bit = (current >> b) & 1
        idx = np.argsort(bit, kind="stable")
        current = current[idx]
        order = order[idx]
    return current, order


def argsort_radix(machine: Machine, keys: np.ndarray, bits: Optional[int] = None) -> np.ndarray:
    """The permutation that stably sorts integer ``keys``."""
    _, order = split_radix_sort(machine, keys, bits=bits)
    return order


def random_permutation(machine: Machine, rng: np.random.Generator, n: int) -> np.ndarray:
    """A uniformly random permutation of range(n), by sorting random keys.

    The paper's "random permuting": draw ~2 log n-bit keys (collisions are
    broken stably and do not bias noticeably at these widths) and radix
    sort.  Depth O(log n) scan-steps, work O(n log n).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    bits = max(1, 2 * int(math.ceil(math.log2(max(n, 2)))))
    machine.charge(machine.ewise_cost(n))  # draw the keys
    keys = rng.integers(0, 1 << bits, size=n)
    return argsort_radix(machine, keys, bits=bits)


def randomized_select(machine: Machine, values: np.ndarray, k: int):
    """The k-th smallest element (k is 1-based), by quickselect with scans.

    Each round: pick a random pivot, three-way count with one elementwise
    pass and scans, recurse into the surviving class.  Expected O(log n)
    rounds of O(1) scans; work O(n) expected (geometric series).
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n}")
    rng = np.random.default_rng(int(abs(float(arr.sum()) * 1e6)) % (2**32))
    current = arr
    kk = k
    while True:
        m = current.shape[0]
        if m <= 8:
            machine.charge(machine.serial_cost(m * 3))
            return float(np.sort(current)[kk - 1])
        machine.charge(machine.ewise_cost(m, 2.0))
        machine.charge(machine.scan_cost(m).scaled(2.0))
        machine.charge(machine.permute_cost(m))
        pivot = current[rng.integers(m)]
        less = current[current < pivot]
        equal_count = int((current == pivot).sum())
        if kk <= less.shape[0]:
            current = less
        elif kk <= less.shape[0] + equal_count:
            return float(pivot)
        else:
            kk -= less.shape[0] + equal_count
            current = current[current > pivot]


def floyd_rivest_select(machine: Machine, values: np.ndarray, k: int, *, _depth: int = 0):
    """The k-th smallest element by two-pass sampling (Floyd–Rivest).

    Samples ~n^{2/3} elements, selects two pivots bracketing the target
    rank with high probability, keeps only the elements between them
    (expected O(n^{2/3} log n) survivors), and finishes recursively.  The
    expected number of passes is O(1) — this is the doubly-logarithmic
    selection engine behind the paper's O(log log k) k-closest remark.
    Charged: O(1) elementwise + scan steps per pass.
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n}")
    if n <= 64 or _depth >= 4:
        # constant-size residue: sort it with a scan-based network on n
        # processors — depth O(log n), work O(n log n) — and read off rank k
        logn = float(max(1, math.ceil(math.log2(max(n, 2)))))
        machine.charge(Cost(logn + 1.0, float(n) * (logn + 1.0)))
        return float(np.partition(arr, k - 1)[k - 1])
    rng = np.random.default_rng((n * 2654435761 + k) % (2**32))
    sample_size = max(16, int(round(n ** (2.0 / 3.0))))
    machine.charge(machine.ewise_cost(n))  # mark the sample
    sample = rng.choice(arr, size=sample_size, replace=False)
    # bracket the target rank within the sample
    ratio = k / n
    spread = math.sqrt(sample_size) * 1.5
    lo_rank = max(1, int(ratio * sample_size - spread))
    hi_rank = min(sample_size, int(ratio * sample_size + spread) + 1)
    # the two sample pivots are found by the same doubly-logarithmic
    # recursion on the (much smaller) sample; charge that recursion's
    # depth, O(log log sample), instead of re-simulating it
    loglog = math.ceil(math.log2(max(2.0, math.log2(sample_size)))) + 2.0
    machine.charge(Cost(2.0 * loglog, 2.0 * float(sample_size)))
    lo = float(np.partition(sample, lo_rank - 1)[lo_rank - 1])
    hi = float(np.partition(sample, hi_rank - 1)[hi_rank - 1])
    machine.charge(machine.ewise_cost(n, 2.0))
    machine.charge(machine.scan_cost(n).scaled(2.0))
    machine.charge(machine.permute_cost(n))
    below = int((arr < lo).sum())
    middle = arr[(arr >= lo) & (arr <= hi)]
    if below < k <= below + middle.shape[0]:
        return floyd_rivest_select(machine, middle, k - below, _depth=_depth + 1)
    # the sample misled us (low probability): fall back on the full array
    machine.bump("floyd_rivest_retries")
    return randomized_select(machine, arr, k)


def parallel_k_smallest(machine: Machine, values: np.ndarray, k: int) -> np.ndarray:
    """The k smallest values, sorted ascending — §6.2's k-closest step.

    Select the k-th smallest with Floyd–Rivest (expected O(1) passes),
    keep everything at most that threshold with one pack, then sort the
    survivors (k small: one radix pass over ranks is charged as
    ``log2(k)+1`` scan-steps, the paper's O(log log k)-ish tail is the
    selection, not the sort, for constant k).
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n}")
    threshold = floyd_rivest_select(machine, arr, k)
    machine.charge(machine.ewise_cost(n))
    machine.charge(machine.scan_cost(n).then(machine.permute_cost(n)))
    kept = arr[arr <= threshold]
    # duplicates of the threshold may push us past k; keep exactly k
    machine.charge(Cost(max(1.0, math.log2(k) + 1.0), float(kept.shape[0])))
    out = np.sort(kept)[:k]
    return out
