"""Depth/work cost algebra for the parallel vector model.

The paper's complexity claims are stated in Blelloch's *parallel vector
model* (a PRAM augmented with a SCAN primitive).  An algorithm in this model
has two intrinsic costs:

``depth``
    the length of the critical path — the number of primitive vector steps
    that must happen one after another ("parallel time" with unbounded
    processors), and

``work``
    the total number of scalar operations across all vector steps
    ("element count" summed over every primitive call).

Both compose in exactly two ways: *sequential* composition adds both
components; *parallel* composition adds work but takes the maximum depth.
This module implements that algebra as a small immutable value type so
algorithms can return and combine costs explicitly, and so that tests can
assert algebraic laws (associativity, identity, monotonicity) with
hypothesis.

Brent's scheduling principle converts a ``Cost`` into simulated running time
on ``p`` physical processors: ``T_p <= work / p + depth``.  That conversion
lives in :mod:`repro.pvm.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Cost", "ZERO", "seq", "par"]


@dataclass(frozen=True, slots=True)
class Cost:
    """An immutable (depth, work) pair in the scan-vector cost model.

    Parameters
    ----------
    depth:
        Critical-path length in primitive vector steps.  Must be >= 0.
    work:
        Total scalar operations.  Must be >= 0 and >= 0 whenever depth > 0.

    Notes
    -----
    ``Cost`` forms a commutative monoid under both compositions, with
    ``Cost(0, 0)`` as the shared identity.  ``a | b`` (parallel) never has
    larger depth than ``a + b`` (sequential); tests rely on this.
    """

    depth: float = 0.0
    work: float = 0.0

    def __post_init__(self) -> None:
        if self.depth < 0 or self.work < 0:
            raise ValueError(
                f"cost components must be non-negative, got depth={self.depth} work={self.work}"
            )

    def then(self, other: "Cost") -> "Cost":
        """Sequential composition: run ``self``, then ``other``."""
        return Cost(self.depth + other.depth, self.work + other.work)

    def beside(self, other: "Cost") -> "Cost":
        """Parallel composition: run ``self`` and ``other`` concurrently."""
        return Cost(max(self.depth, other.depth), self.work + other.work)

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return self.then(other)

    def __or__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return self.beside(other)

    def scaled(self, times: float) -> "Cost":
        """Cost of ``times`` sequential repetitions of ``self``."""
        if times < 0:
            raise ValueError("repetition count must be non-negative")
        return Cost(self.depth * times, self.work * times)

    @property
    def parallelism(self) -> float:
        """Average parallelism work/depth (``inf`` when depth is 0 and work > 0)."""
        if self.depth == 0:
            return float("inf") if self.work > 0 else 0.0
        return self.work / self.depth

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cost(depth={self.depth:g}, work={self.work:g})"


ZERO = Cost(0.0, 0.0)


def seq(costs: Iterable[Cost]) -> Cost:
    """Sequential composition of an iterable of costs (identity: ``ZERO``)."""
    total = ZERO
    for c in costs:
        total = total.then(c)
    return total


def par(costs: Iterable[Cost]) -> Cost:
    """Parallel composition of an iterable of costs (identity: ``ZERO``)."""
    total = ZERO
    for c in costs:
        total = total.beside(c)
    return total
