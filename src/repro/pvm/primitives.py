"""Primitive operations of the scan-vector machine.

Each function here is a *vector primitive* in the sense of Blelloch's
parallel vector model: it takes numpy arrays, performs the operation with
vectorized numpy (the simulation), and charges the appropriate (depth, work)
to the supplied :class:`~repro.pvm.machine.Machine`.

The primitive set mirrors the one the paper leans on:

- elementwise arithmetic / comparison (depth 1, work n);
- ``scan`` — prefix sums, the paper's headline primitive (depth per the
  machine's SCAN policy, work n), plus segmented variants;
- ``reduce`` and segmented reduce (same charge as scan);
- ``pack`` — select elements under a mask (one scan + one permute), the
  workhorse of the divide step;
- ``permute``/``gather``/``scatter`` — data movement (depth 1, work n);
- ``split`` — stable two-way partition by a flag vector (Blelloch's split),
  built from scans;
- ``distribute`` — broadcast a scalar to an n-vector.

Keeping the cost charges inside these wrappers means algorithm code reads
like ordinary numpy while the ledger still reflects the idealised machine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .cost import Cost
from .machine import Machine

__all__ = [
    "ewise",
    "scan",
    "segmented_scan",
    "reduce",
    "segmented_reduce",
    "pack",
    "segmented_pack",
    "split",
    "segmented_split",
    "permute",
    "gather",
    "scatter",
    "distribute",
    "enumerate_mask",
    "pairwise_min_index",
]


def _n_of(x: np.ndarray) -> int:
    """Element count of the logical vector (first axis for 2-D point arrays)."""
    return int(x.shape[0]) if x.ndim else 1


def ewise(machine: Machine, out: np.ndarray, steps: float = 1.0) -> np.ndarray:
    """Charge an elementwise operation that already produced ``out``.

    Numpy expressions fuse many scalar ops per element; callers pass
    ``steps`` to reflect how many primitive vector instructions the
    expression corresponds to (default 1).
    """
    machine.charge(machine.ewise_cost(_n_of(np.asarray(out)), steps))
    return out


def scan(machine: Machine, x: np.ndarray, op: str = "add", inclusive: bool = False) -> np.ndarray:
    """Prefix scan of ``x``.  ``op`` is ``add``, ``max``, or ``min``.

    Exclusive by default (Blelloch's convention: position i receives the
    combination of elements 0..i-1, identity at position 0).
    """
    x = np.asarray(x)
    n = _n_of(x)
    machine.charge(machine.scan_cost(n))
    if op == "add":
        run = np.cumsum(x, axis=0)
        identity = np.zeros((), dtype=run.dtype)
    elif op == "max":
        run = np.maximum.accumulate(x, axis=0)
        identity = np.array(np.iinfo(x.dtype).min if np.issubdtype(x.dtype, np.integer) else -np.inf, dtype=x.dtype)
    elif op == "min":
        run = np.minimum.accumulate(x, axis=0)
        identity = np.array(np.iinfo(x.dtype).max if np.issubdtype(x.dtype, np.integer) else np.inf, dtype=x.dtype)
    else:
        raise ValueError(f"unsupported scan op {op!r}")
    if inclusive:
        return run
    out = np.empty_like(run)
    out[0] = identity
    out[1:] = run[:-1]
    return out


def segmented_scan(
    machine: Machine, x: np.ndarray, segment_ids: np.ndarray, inclusive: bool = False
) -> np.ndarray:
    """Additive prefix scan restarted at each segment boundary.

    ``segment_ids`` must be non-decreasing; elements with equal ids form one
    segment.  Costs one scan (segment flags ride along for free in the
    model, as in Blelloch's segmented instructions).
    """
    x = np.asarray(x)
    seg = np.asarray(segment_ids)
    if x.shape[0] != seg.shape[0]:
        raise ValueError("x and segment_ids must have equal length")
    n = _n_of(x)
    machine.charge(machine.scan_cost(n))
    if n == 0:
        return x.copy()
    if np.any(seg[1:] < seg[:-1]):
        raise ValueError("segment_ids must be non-decreasing")
    total = np.cumsum(x, axis=0)
    starts = np.flatnonzero(np.concatenate(([True], seg[1:] != seg[:-1])))
    # subtract the running total just before each segment start
    base = np.zeros_like(total)
    base_vals = np.concatenate((np.zeros((1,) + total.shape[1:], dtype=total.dtype), total[starts[1:] - 1]))
    base[starts] = base_vals
    base = np.maximum.accumulate(base, axis=0) if False else _ffill_at(base, starts)
    run = total - base
    if inclusive:
        return run
    out = np.empty_like(run)
    out[starts] = 0
    inner = np.ones(n, dtype=bool)
    inner[starts] = False
    out[inner] = run[np.flatnonzero(inner) - 1]
    return out


def _ffill_at(base: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Forward-fill segment base values to every element of the segment."""
    n = base.shape[0]
    idx = np.zeros(n, dtype=np.int64)
    idx[starts] = starts
    idx = np.maximum.accumulate(idx)
    return base[idx]


def reduce(machine: Machine, x: np.ndarray, op: str = "add"):
    """Reduce a vector to a scalar (same machine charge as a scan)."""
    x = np.asarray(x)
    machine.charge(machine.scan_cost(_n_of(x)))
    if x.size == 0:
        if op == "add":
            return x.dtype.type(0)
        raise ValueError("cannot min/max-reduce an empty vector")
    if op == "add":
        return x.sum(axis=0)
    if op == "max":
        return x.max(axis=0)
    if op == "min":
        return x.min(axis=0)
    raise ValueError(f"unsupported reduce op {op!r}")


_REDUCEAT_UFUNCS = {"add": np.add, "max": np.maximum, "min": np.minimum}


def segmented_reduce(
    machine: Machine, x: np.ndarray, segment_ids: np.ndarray, op: str = "add"
) -> np.ndarray:
    """Reduce each segment to one output (ids non-decreasing).

    ``op`` is ``add`` (default, the historical behavior), ``max``, or
    ``min`` — matching :func:`reduce`.
    """
    x = np.asarray(x)
    seg = np.asarray(segment_ids)
    if op not in _REDUCEAT_UFUNCS:
        raise ValueError(f"unsupported reduce op {op!r}")
    machine.charge(machine.scan_cost(_n_of(x)))
    if x.shape[0] == 0:
        return x.copy()
    starts = np.flatnonzero(np.concatenate(([True], seg[1:] != seg[:-1])))
    totals = _REDUCEAT_UFUNCS[op].reduceat(x, starts, axis=0)
    return totals


def pack(machine: Machine, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Select the elements of ``x`` where ``mask`` is true, preserving order.

    Costs one scan (to compute target offsets) plus one permute — the
    canonical scan-vector implementation.
    """
    x = np.asarray(x)
    mask = np.asarray(mask, dtype=bool)
    n = _n_of(x)
    machine.charge(machine.scan_cost(n).then(machine.permute_cost(n)))
    return x[mask]


def split(machine: Machine, x: np.ndarray, flags: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Stable two-way partition: elements with flag False, then flag True.

    Returns the two halves separately (the divide step of the paper's
    recursion).  Costs one scan plus one permute, like ``pack``.
    """
    x = np.asarray(x)
    flags = np.asarray(flags, dtype=bool)
    n = _n_of(x)
    machine.charge(machine.scan_cost(n).then(machine.permute_cost(n)))
    return x[~flags], x[flags]


def _segment_layout(seg: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """(starts, lengths) of the segments of a non-decreasing id vector."""
    if np.any(seg[1:] < seg[:-1]):
        raise ValueError("segment_ids must be non-decreasing")
    starts = np.flatnonzero(np.concatenate(([True], seg[1:] != seg[:-1])))
    lengths = np.diff(np.append(starts, n))
    return starts, lengths


def segmented_split(
    machine: Optional[Machine], x: np.ndarray, flags: np.ndarray, segment_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable two-way partition *within* each segment, all segments at once.

    Returns ``(out, false_counts)``: ``out`` has each segment reordered to
    its flag-False elements followed by its flag-True elements (relative
    order preserved — Blelloch's segmented split), and ``false_counts``
    gives the per-segment False count, i.e. the boundary offset of each
    segment's True part.  This is the frontier engine's divide step: one
    call splits every node of a tree level.

    Costs one scan plus one permute on the full vector, like :func:`split`.
    ``machine`` may be ``None`` to run uncharged (the frontier engine
    accounts per node analytically so its ledger matches the recursion's).
    """
    x = np.asarray(x)
    flags = np.asarray(flags, dtype=bool)
    seg = np.asarray(segment_ids)
    n = _n_of(x)
    if flags.shape[0] != n or seg.shape[0] != n:
        raise ValueError("x, flags and segment_ids must have equal length")
    if machine is not None:
        machine.charge(machine.scan_cost(n).then(machine.permute_cost(n)))
    if n == 0:
        return x.copy(), np.zeros(0, dtype=np.int64)
    starts, lengths = _segment_layout(seg, n)
    true_ = flags.astype(np.int64)
    false_ = 1 - true_
    false_counts = np.add.reduceat(false_, starts)
    # exclusive within-segment rank among same-flag elements
    inc_t = np.cumsum(true_)
    inc_f = np.cumsum(false_)
    base_t = np.repeat(inc_t[starts] - true_[starts], lengths)
    base_f = np.repeat(inc_f[starts] - false_[starts], lengths)
    rank_t = inc_t - base_t - true_
    rank_f = inc_f - base_f - false_
    seg_start = np.repeat(starts, lengths)
    seg_false = np.repeat(false_counts, lengths)
    dest = np.where(flags, seg_start + seg_false + rank_t, seg_start + rank_f)
    out = np.empty_like(x)
    out[dest] = x
    return out, false_counts


def segmented_pack(
    machine: Optional[Machine], x: np.ndarray, mask: np.ndarray, segment_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Select masked elements segment-by-segment, all segments at once.

    Returns ``(packed, counts)``: the surviving elements in order (segment
    layout preserved implicitly) and the per-segment survivor count, from
    which the packed vector's new segment offsets follow by a prefix sum.
    Same charge as :func:`pack`; ``machine`` may be ``None`` (see
    :func:`segmented_split`).
    """
    x = np.asarray(x)
    mask = np.asarray(mask, dtype=bool)
    seg = np.asarray(segment_ids)
    n = _n_of(x)
    if mask.shape[0] != n or seg.shape[0] != n:
        raise ValueError("x, mask and segment_ids must have equal length")
    if machine is not None:
        machine.charge(machine.scan_cost(n).then(machine.permute_cost(n)))
    if n == 0:
        return x.copy(), np.zeros(0, dtype=np.int64)
    starts, _ = _segment_layout(seg, n)
    counts = np.add.reduceat(mask.astype(np.int64), starts)
    return x[mask], counts


def permute(machine: Machine, x: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Send ``x[i]`` to output position ``index[i]`` (index is a permutation)."""
    x = np.asarray(x)
    index = np.asarray(index)
    machine.charge(machine.permute_cost(_n_of(x)))
    out = np.empty_like(x)
    out[index] = x
    return out


def gather(machine: Machine, x: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Read ``x[index[i]]`` into output position i (a.k.a. backpermute)."""
    x = np.asarray(x)
    index = np.asarray(index)
    machine.charge(machine.permute_cost(_n_of(index)))
    return x[index]


def scatter(machine: Machine, target: np.ndarray, index: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Write ``values[i]`` to ``target[index[i]]`` in place; returns target."""
    index = np.asarray(index)
    machine.charge(machine.permute_cost(_n_of(index)))
    target[index] = values
    return target


def distribute(machine: Machine, value, n: int, dtype=None) -> np.ndarray:
    """Broadcast a scalar to an n-vector (depth 1, work n)."""
    machine.charge(machine.ewise_cost(n))
    return np.full(n, value, dtype=dtype)


def enumerate_mask(machine: Machine, mask: np.ndarray) -> np.ndarray:
    """Indices of the true positions of ``mask`` (one scan + one permute)."""
    mask = np.asarray(mask, dtype=bool)
    machine.charge(machine.scan_cost(mask.shape[0]).then(machine.permute_cost(mask.shape[0])))
    return np.flatnonzero(mask)


def pairwise_min_index(machine: Machine, values: np.ndarray) -> int:
    """Index of the minimum of a vector (a min-reduce plus one compare pass)."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("empty vector")
    machine.charge(machine.scan_cost(values.shape[0]).then(machine.ewise_cost(values.shape[0])))
    return int(np.argmin(values))
