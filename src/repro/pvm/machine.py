"""The simulated scan-vector machine.

A :class:`Machine` is the execution context for every algorithm in this
repository.  It plays two roles at once:

1. it *executes* primitive vector operations (delegating the data movement
   to numpy, which is the closest single-node analogue of a data-parallel
   vector unit), and
2. it *accounts* for what an idealised parallel vector machine would have
   paid for those operations, as a (depth, work) ledger in the algebra of
   :mod:`repro.pvm.cost`.

The accounting is structural: sequential program order adds costs, while a
``with machine.parallel() as par:`` block composes its branches with
``max``-depth / sum-work, mirroring the paper's "recursively solve the two
subproblems in parallel" steps.  Branches may be arbitrarily nested, so a
recursive divide and conquer maps one-to-one onto nested parallel blocks and
the ledger computes the *exact* critical path of the recursion tree.

SCAN policy
-----------
The paper assumes a **unit-time scan** ("Our algorithm … assumes a unit time
scan or prefix sum operation"), and notes that on a plain CRCW PRAM the
results hold with an extra ``O(log log n)``–``O(log n)`` factor.  The policy
is therefore configurable:

``"unit"``
    scan over an n-vector costs depth 1 (the Connection-Machine-style model
    used for the headline O(log n) result);
``"log"``
    scan costs depth ``ceil(log2 n)`` (a conservative EREW-style charge);
``"loglog"``
    scan costs depth ``ceil(log2 log2 n)`` (the CRCW remark in §1).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence

from ..obs.metrics import Metrics
from ..obs.spans import Span, Tracer
from .cost import Cost, ZERO

__all__ = ["Machine", "ScanPolicy", "SCAN_POLICIES"]

ScanPolicy = str

SCAN_POLICIES: dict[str, Callable[[int], float]] = {
    "unit": lambda n: 1.0,
    "log": lambda n: float(max(1, math.ceil(math.log2(n)))) if n > 1 else 1.0,
    "loglog": lambda n: (
        float(max(1, math.ceil(math.log2(max(2.0, math.log2(n)))))) if n > 1 else 1.0
    ),
}


class _Frame:
    """One accounting frame: accumulates sequential cost of a program region."""

    __slots__ = ("cost",)

    def __init__(self) -> None:
        self.cost: Cost = ZERO

    def charge(self, c: Cost) -> None:
        self.cost = self.cost.then(c)


class _ParallelBlock:
    """Handle yielded by :meth:`Machine.parallel`; collects branch costs."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self._branch_costs: List[Cost] = []
        self._open = True

    @contextmanager
    def branch(self) -> Iterator[None]:
        """Run a region whose cost is one parallel branch of this block."""
        if not self._open:
            raise RuntimeError("parallel block already closed")
        frame = _Frame()
        self._machine._stack.append(frame)
        try:
            yield
        finally:
            popped = self._machine._stack.pop()
            assert popped is frame
            self._branch_costs.append(frame.cost)

    def _combined(self) -> Cost:
        total = ZERO
        for c in self._branch_costs:
            total = total.beside(c)
        return total


class Machine:
    """A simulated parallel vector machine with a (depth, work) ledger.

    Parameters
    ----------
    scan:
        SCAN depth policy, one of ``"unit"`` (paper's model), ``"log"``,
        ``"loglog"``.  See module docstring.

    Examples
    --------
    >>> m = Machine()
    >>> m.charge(Cost(1, 8))          # one vector step over 8 elements
    >>> with m.parallel() as p:
    ...     with p.branch():
    ...         m.charge(Cost(3, 10))
    ...     with p.branch():
    ...         m.charge(Cost(5, 10))
    >>> m.total.depth                  # 1 + max(3, 5)
    6.0
    >>> m.total.work                   # 8 + 10 + 10
    28.0
    """

    def __init__(
        self,
        scan: ScanPolicy = "unit",
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if scan not in SCAN_POLICIES:
            raise ValueError(f"unknown scan policy {scan!r}; choose from {sorted(SCAN_POLICIES)}")
        self.scan_policy = scan
        self._scan_depth = SCAN_POLICIES[scan]
        self._root = _Frame()
        self._stack: List[_Frame] = [self._root]
        self.counters: dict[str, int] = {}
        self.sections: dict[str, Cost] = {}
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else Metrics()
        #: When set to a list, every :meth:`section` exit appends its
        #: ``(name, cost)`` event.  The online index (:mod:`repro.core.online`)
        #: uses this to replay a reused subtree's per-phase attribution with
        #: the exact same sequence of ``then`` compositions as a fresh build,
        #: keeping :attr:`sections` bit-identical.  ``None`` (default) logs
        #: nothing and costs nothing.
        self.section_log: Optional[List[tuple]] = None

    # -- accounting ------------------------------------------------------

    @property
    def total(self) -> Cost:
        """Cost accumulated at the root frame so far."""
        if len(self._stack) != 1:
            raise RuntimeError("total is only meaningful outside parallel blocks")
        return self._root.cost

    def charge(self, cost: Cost) -> None:
        """Charge an explicit cost to the current program point."""
        self._stack[-1].charge(cost)

    def bump(self, counter: str, by: int = 1) -> None:
        """Increment a named event counter (separator retries, punts, ...).

        Counts accumulate both in the legacy :attr:`counters` dict and,
        namespaced as ``machine.<counter>``, in the :attr:`metrics`
        registry so they export uniformly with the rest of the run.
        """
        self.counters[counter] = self.counters.get(counter, 0) + by
        self.metrics.inc(f"machine.{counter}", by)

    def enable_tracing(self) -> Tracer:
        """Attach (and return) a fresh :class:`~repro.obs.spans.Tracer`.

        Subsequent :meth:`span` and :meth:`section` regions record into
        it.  Tracing is passive: the ledger is unchanged by attachment.
        """
        self.tracer = Tracer()
        return self.tracer

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Record a named region in the attached tracer.

        The region's inclusive cost is measured on its own frame (exact
        under nested :meth:`parallel` blocks) and then charged to the
        enclosing frame sequentially — accounting is identical to running
        the region inline, so tracing never changes the ledger.  With no
        tracer attached this is a no-op that yields ``None`` and records
        nothing.

        Keyword arguments become span attributes (recursion level,
        subproblem size, punt flags, ...).
        """
        tracer = self.tracer
        if tracer is None:
            yield None
            return
        frame = _Frame()
        enter = self._stack[-1].cost
        self._stack.append(frame)
        handle = tracer.start(name, attrs, enter)
        try:
            yield handle
        finally:
            popped = self._stack.pop()
            assert popped is frame
            tracer.stop(handle, frame.cost)
            self._stack[-1].charge(frame.cost)

    @contextmanager
    def parallel(self) -> Iterator[_ParallelBlock]:
        """Open a parallel block; each ``branch()`` inside runs concurrently."""
        block = _ParallelBlock(self)
        try:
            yield block
        finally:
            block._open = False
            self._stack[-1].charge(block._combined())

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute the cost of a region to a named phase.

        Phase totals accumulate in :attr:`sections` (sequential-composed
        per phase) without changing the global accounting — the region's
        cost still flows to the enclosing frame exactly as if untagged.
        Sections may repeat (costs add) and nest (each level records its
        own region's full cost).  With a tracer attached, each section
        occurrence additionally records as a span of the same name.
        """
        frame = _Frame()
        enter = self._stack[-1].cost
        self._stack.append(frame)
        handle = self.tracer.start(name, {}, enter) if self.tracer is not None else None
        try:
            yield
        finally:
            popped = self._stack.pop()
            assert popped is frame
            if handle is not None:
                self.tracer.stop(handle, frame.cost)
            self.sections[name] = self.sections.get(name, ZERO).then(frame.cost)
            if self.section_log is not None:
                self.section_log.append((name, frame.cost))
            self._stack[-1].charge(frame.cost)

    @contextmanager
    def measure(self) -> Iterator[Callable[[], Cost]]:
        """Measure the cost of a region without disturbing global accounting.

        Yields a zero-argument callable returning the region's cost; valid
        after the block exits.  The cost is *also* charged to the enclosing
        frame, sequentially, as if the region had run inline.
        """
        frame = _Frame()
        self._stack.append(frame)
        done = {"cost": ZERO}
        try:
            yield lambda: done["cost"]
        finally:
            popped = self._stack.pop()
            assert popped is frame
            done["cost"] = frame.cost
            self._stack[-1].charge(frame.cost)

    def attribute(self, name: str, cost: Cost) -> None:
        """Add ``cost`` to the :attr:`sections` total for ``name`` directly.

        The batched frontier engine computes per-phase costs analytically
        (it executes whole tree levels at once but accounts per node) and
        records them here so phase breakdowns stay comparable across
        engines.  The ledger is untouched — this is observability only.
        """
        self.sections[name] = self.sections.get(name, ZERO).then(cost)

    # -- primitive cost schedules ---------------------------------------

    def scan_cost(self, n: int) -> Cost:
        """Cost of a (segmented) scan / prefix-sum / reduce over n elements."""
        if n <= 0:
            return ZERO
        return Cost(self._scan_depth(n), float(n))

    def ewise_cost(self, n: int, steps: float = 1.0) -> Cost:
        """Cost of ``steps`` elementwise vector operations over n elements."""
        if n <= 0:
            return ZERO
        return Cost(float(steps), float(n) * steps)

    def permute_cost(self, n: int) -> Cost:
        """Cost of a permute / pack / gather data movement over n elements."""
        if n <= 0:
            return ZERO
        return Cost(1.0, float(n))

    def serial_cost(self, steps: float) -> Cost:
        """Cost of ``steps`` inherently sequential scalar operations."""
        if steps <= 0:
            return ZERO
        return Cost(float(steps), float(steps))

    # -- convenience -----------------------------------------------------

    def snapshot(self) -> Cost:
        """Alias for :attr:`total` (reads better at call sites)."""
        return self.total

    def fork_costs(self, costs: Sequence[Cost]) -> None:
        """Charge a pre-computed list of branch costs as one parallel block."""
        total = ZERO
        for c in costs:
            total = total.beside(c)
        self.charge(total)
