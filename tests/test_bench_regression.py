"""Tests for the perf-regression gate and the tracing overhead benchmark.

The gate's committed baseline (``benchmarks/results/regression_gate_obs
.json``) is itself under test here: one cheap gate run is re-executed
and must reproduce its committed ledger exactly, and an injected work
perturbation must make the gate fail (the CI negative test in module
form).
"""

import json
import os
import subprocess
import sys


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "check_bench_regression.py")
BASELINE = os.path.join(
    REPO_ROOT, "benchmarks", "results", "regression_gate_obs.json"
)

sys.path.insert(0, os.path.dirname(SCRIPT))
import check_bench_regression as gate  # noqa: E402


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


class TestCompareRecords:
    def _rec(self, run="r", work=100.0, depth=10.0, wall=1.0, **over):
        rec = {
            "run": run,
            "params": {"n": 10},
            "total": {"depth": depth, "work": work},
            "phases": {"base": {"depth": 5.0, "work": 40.0}},
            "counters": {"fast.nodes": 7},
            "wall_seconds": wall,
        }
        rec.update(over)
        return rec

    def test_identical_records_pass(self):
        assert gate.compare_records(
            [self._rec()], [self._rec()], wall_tol=0.5, exact_ledger=False
        ) == []

    def test_work_drift_fails_exactly(self):
        failures = gate.compare_records(
            [self._rec()], [self._rec(work=100.0000001)],
            wall_tol=0.5, exact_ledger=True,
        )
        assert failures and "exact match required" in failures[0]

    def test_phase_drift_fails(self):
        fresh = self._rec()
        fresh["phases"]["base"]["work"] = 41.0
        failures = gate.compare_records(
            [self._rec()], [fresh], wall_tol=0.5, exact_ledger=True
        )
        assert any("phase 'base'" in f for f in failures)

    def test_counter_drift_fails(self):
        fresh = self._rec()
        fresh["counters"]["fast.nodes"] = 8
        failures = gate.compare_records(
            [self._rec()], [fresh], wall_tol=0.5, exact_ledger=True
        )
        assert any("counters differ" in f for f in failures)

    def test_wall_tolerance(self):
        ok = gate.compare_records(
            [self._rec(wall=1.0)], [self._rec(wall=1.4)],
            wall_tol=0.5, exact_ledger=False,
        )
        assert ok == []
        bad = gate.compare_records(
            [self._rec(wall=1.0)], [self._rec(wall=1.6)],
            wall_tol=0.5, exact_ledger=False,
        )
        assert any("wall" in f for f in bad)
        # exact-ledger mode ignores wall entirely
        assert gate.compare_records(
            [self._rec(wall=1.0)], [self._rec(wall=100.0)],
            wall_tol=0.5, exact_ledger=True,
        ) == []

    def test_missing_run_fails(self):
        failures = gate.compare_records(
            [self._rec(run="a"), self._rec(run="b")], [self._rec(run="a")],
            wall_tol=0.5, exact_ledger=True,
        )
        assert any("missing" in f for f in failures)


class TestGateAgainstCommittedBaseline:
    def test_baseline_file_is_committed_and_complete(self):
        with open(BASELINE) as fh:
            records = json.load(fh)
        assert {r["run"] for r in records} == {s["run"] for s in gate.GATE_RUNS}
        for rec in records:
            assert rec["total"]["work"] > 0
            assert rec["phases"] and rec["counters"]

    def test_cheapest_gate_run_reproduces_baseline(self):
        fresh = gate.run_gates(["fast_recursive"])
        with open(BASELINE) as fh:
            baseline = [r for r in json.load(fh) if r["run"] == "fast_recursive"]
        assert gate.compare_records(
            baseline, fresh, wall_tol=0.5, exact_ledger=True
        ) == []

    def test_perturbation_is_detected(self):
        fresh = gate.run_gates(["fast_recursive"])
        gate._perturb(fresh, 0.01)
        with open(BASELINE) as fh:
            baseline = [r for r in json.load(fh) if r["run"] == "fast_recursive"]
        failures = gate.compare_records(
            baseline, fresh, wall_tol=0.5, exact_ledger=True
        )
        assert failures, "injected work perturbation must fail the gate"


class TestScriptInterface:
    def test_compare_mode_exit_codes(self, tmp_path):
        rec = {
            "run": "x", "params": {}, "total": {"depth": 1.0, "work": 2.0},
            "phases": {}, "counters": {}, "wall_seconds": 0.1,
        }
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps([rec]))
        b.write_text(json.dumps([rec]))
        ok = subprocess.run(
            [sys.executable, SCRIPT, "--compare", str(a), str(b),
             "--exact-ledger"],
            env=_env(), capture_output=True, text=True,
        )
        assert ok.returncode == 0, ok.stderr
        bad = subprocess.run(
            [sys.executable, SCRIPT, "--compare", str(a), str(b),
             "--exact-ledger", "--perturb-work", "0.01"],
            env=_env(), capture_output=True, text=True,
        )
        assert bad.returncode == 1
        assert "REGRESSION" in bad.stderr

    def test_missing_baseline_is_usage_error(self, tmp_path):
        r = subprocess.run(
            [sys.executable, SCRIPT, "--baseline", str(tmp_path / "no.json"),
             "--runs", "fast_recursive", "--exact-ledger"],
            env=_env(), capture_output=True, text=True,
        )
        assert r.returncode == 2
        assert "--update" in r.stderr


class TestOverheadBenchmark:
    def test_ledger_delta_is_zero(self):
        from repro.obs.overhead import measure_overhead

        report = measure_overhead(n=2000, repeats=1)
        assert report.ledger_delta == 0.0
        assert report.span_count > 0
        assert report.wall_traced_s > 0 and report.wall_untraced_s > 0

    def test_committed_overhead_baseline(self):
        """The committed n=100k measurement documents a within-budget,
        zero-ledger-delta overhead."""
        path = os.path.join(
            REPO_ROOT, "benchmarks", "results", "obs_overhead.json"
        )
        with open(path) as fh:
            records = json.load(fh)
        latest = records[-1]
        assert latest["n"] == 100_000
        assert latest["ledger_delta"] == 0.0
        assert latest["overhead_fraction"] <= latest["budget_fraction"]
