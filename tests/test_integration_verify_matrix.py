"""The full algorithm x workload audit matrix.

Every all-kNN implementation, on every workload family, must produce a
system that satisfies the *definition* (via :mod:`repro.core.verify`) and
match brute force.  This is the repository's broadest single safety net.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn, grid_knn, kdtree_knn
from repro.core import parallel_nearest_neighborhood, simple_parallel_dnc
from repro.core.verify import verify_system
from repro.workloads import make_workload

ALGORITHMS = {
    "fast": lambda pts, k: parallel_nearest_neighborhood(pts, k, seed=1).system,
    "simple": lambda pts, k: simple_parallel_dnc(pts, k, seed=1).system,
    "kdtree": kdtree_knn,
    "grid": grid_knn,
}

WORKLOAD_NAMES = ["uniform", "clustered", "annulus", "two_moons", "spiral"]


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_audit_matrix(algo, workload):
    pts = make_workload(workload, 350, 2, seed=hash((algo, workload)) % 1000)
    k = 2
    system = ALGORITHMS[algo](pts, k)
    assert system.same_distances(brute_force_knn(pts, k)), f"{algo} on {workload}: mismatch"
    report = verify_system(system)
    assert report.ok, f"{algo} on {workload}: {report.summary()}"


@pytest.mark.parametrize("workload", ["uniform", "clustered"])
def test_audit_matrix_3d(workload):
    pts = make_workload(workload, 300, 3, seed=7)
    res = parallel_nearest_neighborhood(pts, 3, seed=2)
    assert verify_system(res.system).ok
    assert res.system.same_distances(brute_force_knn(pts, 3))
