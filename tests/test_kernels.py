"""The kernel layer itself: registry semantics, reference-op unit tests,
the FlatTree descent layout, and the micro-bench plumbing.

Cross-backend and cross-engine equivalence lives in
``test_kernels_equivalence.py``; this file pins the pieces the
equivalence matrix is built from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.cli import main
from repro.core.fast_dnc import FastDnCConfig, parallel_nearest_neighborhood
from repro.geometry.points import kth_smallest_per_row, pairwise_sq_dists_direct
from repro.geometry.spheres import Sphere
from repro.kernels import registry
from repro.kernels.bench import bench_backends, format_table, run_kernel_bench
from repro.kernels.layout import FlatTree
from repro.kernels.reference import TABLE
from repro.pvm.machine import Machine
from repro.pvm.primitives import segmented_split
from repro.workloads import uniform_cube


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-global backend as it found it."""
    before = registry._ACTIVE
    yield
    registry._ACTIVE = before


class TestRegistry:
    def test_backends_enumerated(self):
        assert registry.KERNEL_BACKENDS == ("numpy", "numba")
        for name, spec in registry.KERNEL_REGISTRY.items():
            assert spec.name == name and spec.summary

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            registry.resolve_backend("cuda")

    def test_resolve_auto_without_numba_is_numpy(self, monkeypatch):
        monkeypatch.delenv(registry.KERNELS_ENV_VAR, raising=False)
        monkeypatch.setattr(registry, "_NUMBA_OK", False)
        assert registry.resolve_backend(None) == "numpy"
        assert registry.resolve_backend("auto") == "numpy"

    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(registry.KERNELS_ENV_VAR, "numpy")
        assert registry.resolve_backend("auto") == "numpy"

    def test_explicit_numba_without_numba_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(registry, "_NUMBA_OK", False)
        monkeypatch.setattr(registry, "_WARNED_FALLBACK", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert registry.resolve_backend("numba") == "numpy"
        # the warning fires once per process, not once per call
        assert registry.resolve_backend("numba") == "numpy"

    def test_use_backend_restores_previous(self):
        before = registry.active_backend()
        with registry.use_backend("numpy") as installed:
            assert installed == "numpy"
            assert registry.active_backend() == "numpy"
        assert registry.active_backend() == before

    def test_kernel_table_ops_complete(self):
        table = registry.kernel_table("numpy")
        assert set(table) == set(TABLE)

    def test_set_backend_returns_resolved_name(self):
        assert registry.set_backend("numpy") == "numpy"


class TestReferenceOps:
    """Each reference op must equal the code it was transplanted from."""

    def test_sphere_side_matches_sphere_class(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 3))
        sphere = Sphere(center=np.full(3, 0.5), radius=0.3)
        got = TABLE["sphere_side"](pts, sphere.center, sphere.radius)
        np.testing.assert_array_equal(got, sphere.side_of_points(pts))
        assert got.dtype == np.int8

    def test_segmented_split_sides_matches_primitive(self):
        rng = np.random.default_rng(1)
        n = 500
        flat_ids = rng.permutation(n).astype(np.int64)
        seg_ids = np.sort(rng.integers(0, 7, size=n)).astype(np.int64)
        sides = np.where(rng.random(n) < 0.4, -1, 1).astype(np.int8)
        out, counts = TABLE["segmented_split_sides"](flat_ids, sides, seg_ids)
        ref_out, ref_counts = segmented_split(None, flat_ids, sides > 0, seg_ids)
        np.testing.assert_array_equal(out, ref_out)
        np.testing.assert_array_equal(counts, ref_counts)

    def test_block_topk_matches_direct_computation(self):
        rng = np.random.default_rng(2)
        sub = rng.random((40, 2))
        kk = 5
        idx, sq = TABLE["block_topk"](sub, kk)
        dists = pairwise_sq_dists_direct(sub, sub)
        np.fill_diagonal(dists, np.inf)
        ref_idx, ref_sq = kth_smallest_per_row(dists, kk)
        np.testing.assert_array_equal(idx, ref_idx)
        np.testing.assert_array_equal(sq, ref_sq)

    def test_brute_topk_self_excluded_and_sorted(self):
        rng = np.random.default_rng(3)
        pts = rng.random((64, 2))
        idx, sq = TABLE["brute_topk"](pts, 3, 32)
        assert idx.shape == (64, 3)
        for i in range(64):
            assert i not in idx[i]
        assert np.all(np.diff(sq, axis=1) >= 0)

    def test_merge_candidate_stream_dedupes_keep_min(self):
        rows = np.array([0, 0, 0, 1], dtype=np.int64)
        idx = np.array([5, 5, 7, -1], dtype=np.int64)
        sq = np.array([2.0, 1.0, 3.0, 0.0])
        out_idx, out_sq = TABLE["merge_candidate_stream"](rows, idx, sq, 2, 2)
        np.testing.assert_array_equal(out_idx, [[5, 7], [-1, -1]])
        np.testing.assert_array_equal(out_sq, [[1.0, 3.0], [np.inf, np.inf]])

    def test_descend_spheres_single_node(self):
        pts = np.array([[0.1, 0.1], [0.9, 0.9]])
        centers = np.array([[0.5, 0.5]])
        radii = np.array([0.56569])  # inside/outside split at the diagonal
        left = np.array([-1], dtype=np.int64)
        right = np.array([-1], dtype=np.int64)
        leaf_ord = np.array([0], dtype=np.int64)
        out = TABLE["descend_spheres"](pts, centers, radii, left, right, leaf_ord)
        np.testing.assert_array_equal(out, [0, 0])


class TestFlatTree:
    def _build(self, n=800, k=2, seed=11, d=2):
        pts = uniform_cube(n, d, seed=seed)
        res = parallel_nearest_neighborhood(
            pts, k, seed=seed, config=FastDnCConfig()
        )
        return pts, res

    def test_leaf_groups_match_pointer_walk(self):
        pts, res = self._build()
        flat = FlatTree.from_tree(res.tree)
        assert flat is not None
        qs = uniform_cube(300, 2, seed=99)
        walked = [
            (leaf.indices, rows) for leaf, rows in res.tree.leaves_of_points(qs)
        ]
        grouped = list(flat.leaf_groups(qs))
        assert len(walked) == len(grouped)
        for (ids_a, rows_a), (ids_b, rows_b) in zip(walked, grouped):
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(rows_a, rows_b)

    def test_from_tree_covers_all_leaves(self):
        _, res = self._build(n=500)
        flat = FlatTree.from_tree(res.tree)
        got = np.sort(flat.leaf_ids)
        np.testing.assert_array_equal(got, np.arange(500))

    def test_single_leaf_tree(self):
        pts = uniform_cube(20, 2, seed=0)
        res = parallel_nearest_neighborhood(
            pts, 1, seed=0, config=FastDnCConfig(base_case_size=64)
        )
        flat = FlatTree.from_tree(res.tree)
        assert flat is not None
        ids, rows = next(iter(flat.leaf_groups(pts)))
        np.testing.assert_array_equal(np.sort(ids), np.arange(20))
        np.testing.assert_array_equal(rows, np.arange(20))

    def test_non_sphere_tree_returns_none(self):
        from repro.core.simple_dnc import SimpleDnCConfig, simple_parallel_dnc

        pts = uniform_cube(300, 2, seed=3)
        res = simple_parallel_dnc(pts, 1, seed=3, config=SimpleDnCConfig())
        if res.tree.is_leaf:  # pragma: no cover - degenerate workload
            pytest.skip("tree degenerated to one leaf")
        assert FlatTree.from_tree(res.tree) is None


class TestBench:
    def test_bench_rows_cover_all_ops(self):
        rows = bench_backends(n=2000, d=2, k=4, repeats=1, backends=["numpy"])
        ops = {row["op"] for row in rows}
        assert "sphere_side" in ops and "merge_candidate_stream" in ops
        for row in rows:
            assert row["backend"] == "numpy"
            assert row["seconds"] >= 0 and row["ns_per_element"] >= 0

    def test_bench_observes_metrics_and_spans(self):
        machine = Machine()
        machine.enable_tracing()
        run_kernel_bench(
            n=1000, d=2, k=2, repeats=1, backends=["numpy"],
            machine=machine, include_descend=False,
        )
        series = machine.metrics.to_dict()["series"]
        assert "kernels.bench.ns_per_element" in series

    def test_format_table_has_header(self):
        rows = bench_backends(n=1000, d=2, k=2, repeats=1, backends=["numpy"])
        table = format_table(rows)
        assert "ns/elem" in table and "sphere_side" in table


class TestBenchCLI:
    def test_bench_kernels_runs(self, capsys):
        rc = main(["bench", "kernels", "-n", "2000", "--repeats", "1",
                   "--no-descend", "--backends", "numpy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel micro-bench" in out
        assert "sphere_side" in out

    def test_bench_writes_sinks(self, tmp_path, capsys):
        js = tmp_path / "rows.json"
        metrics = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        rc = main(["bench", "kernels", "-n", "1000", "--repeats", "1",
                   "--no-descend", "--backends", "numpy",
                   "--json-out", str(js), "--metrics-out", str(metrics),
                   "--events-out", str(events)])
        assert rc == 0
        import json

        rows = json.loads(js.read_text())
        assert rows and all("ns_per_element" in r for r in rows)
        assert "kernels_bench_ns_per_element" in metrics.read_text().replace(
            ".", "_"
        )
        assert events.read_text().strip()

    def test_kernels_flag_accepted_by_knn(self, capsys):
        rc = main(["knn", "-n", "300", "-k", "1", "--kernels", "numpy",
                   "--check"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_dtype_flag_accepted_by_knn(self, capsys):
        rc = main(["knn", "-n", "300", "-k", "1", "--dtype", "float32",
                   "--check"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out


class TestDispatchers:
    def test_package_dispatcher_routes_to_active_table(self):
        rng = np.random.default_rng(4)
        pts = rng.random((100, 2))
        center = np.full(2, 0.5)
        with kernels.use_backend("numpy"):
            got = kernels.sphere_side(pts, center, 0.25)
        np.testing.assert_array_equal(
            got, TABLE["sphere_side"](pts, center, 0.25)
        )

    def test_lazy_flattree_export(self):
        assert kernels.FlatTree is FlatTree
        with pytest.raises(AttributeError):
            kernels.does_not_exist
